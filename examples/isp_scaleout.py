#!/usr/bin/env python3
"""Compiling onto an ISP-scale topology with sharded monitoring state.

Combines three things the paper discusses beyond the running example:

* a RocketFuel-style ISP topology (AS 1755 stand-in, Table 5),
* per-ingress packet counting ``count[inport]++`` (§2.1 "Monitoring"),
* state sharding by inport (§7.3 / Appendix C), which lets the MILP place
  each shard independently instead of funneling every flow through one
  counter switch.

Run:  python examples/isp_scaleout.py
"""

from repro import Program, SnapController, table5_topology
from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.lang import ast


def build_programs(num_ports):
    subnets = default_subnets(num_ports)
    monitor = ast.StateIncr("count", ast.Field("inport"))
    egress = assign_egress(subnets)
    assumption = port_assumption(subnets)

    unsharded = Program(
        ast.Seq(ast.Parallel(monitor, ast.Id()), egress),
        assumption=assumption,
        state_defaults={"count": 0},
        name="monitor-unsharded",
    )
    ports = list(range(1, num_ports + 1))
    sharded_policy = shard_by_inport(
        ast.Seq(ast.Parallel(monitor, ast.Id()), egress), "count", ports
    )
    sharded = Program(
        sharded_policy,
        assumption=assumption,
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    return unsharded, sharded


def programs():
    """Lint hook: ``python -m repro.analysis.lint isp_scaleout``."""
    return list(build_programs(6))


def main():
    num_ports = 6
    topology = table5_topology("AS1755", num_ports=num_ports, seed=0)
    print(f"topology: {topology}")
    unsharded, sharded = build_programs(num_ports)

    print("\n== Unsharded count[inport] ==")
    result = SnapController(topology, unsharded).submit()
    print(f"placement: {result.placement}")
    print(f"objective (sum link utilization): {result.objective:.3f}")
    print(f"ST solve: {result.timer.durations['P5']:.2f} s")

    print("\n== Sharded count@p per ingress (Appendix C) ==")
    result_sharded = SnapController(topology, sharded).submit()
    shard_switches = sorted(set(result_sharded.placement.values()))
    print(f"shards placed on {len(shard_switches)} distinct switches: "
          f"{shard_switches}")
    print(f"objective: {result_sharded.objective:.3f} "
          f"(unsharded: {result.objective:.3f})")
    better = result_sharded.objective <= result.objective + 1e-6
    print("sharding never hurts the congestion objective:", better)


if __name__ == "__main__":
    main()
