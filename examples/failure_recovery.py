#!/usr/bin/env python3
"""Failure recovery as controller events (§6.2 "Topology/TM Changes").

A long-lived ``SnapController`` session handles a stream of network
events.  After the cold start, a core link fails: instead of re-solving
the joint placement problem, the session patches its *standing* TE model
(failed link pinned to zero, §6.2.2) and re-solves only the routing LP —
the P5-TE + P6 path of Table 4.  Each event yields an immutable,
generation-numbered snapshot; the rerouted paths still respect every
state constraint.

Run:  python examples/failure_recovery.py
"""

from repro import Program, SnapController, campus_topology
from repro.apps import assign_egress, default_subnets, dns_tunnel_detect, port_assumption
from repro.lang import ast
from repro.milp.results import validate_solution


def build_program():
    subnets = default_subnets(6)
    detect = dns_tunnel_detect(threshold=3)
    return Program(
        ast.Seq(detect.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=detect.state_defaults,
        name="dns-tunnel+egress",
    )


def programs():
    """Lint hook: ``python -m repro.analysis.lint failure_recovery``."""
    return [build_program()]


def main():
    program = build_program()
    controller = SnapController(campus_topology(), program)

    cold = controller.submit()
    st_time = cold.timer.durations["P5"]
    print("== Cold start (generation 0) ==")
    print(f"placement: {dict(cold.placement)}")
    print(f"path 1->6: {' -> '.join(cold.routing.path(1, 6))}")
    print(f"ST solve:  {st_time * 1000:.1f} ms")

    print("\n== Event: link C1-C5 fails (standing model patched, §6.2.2) ==")
    recovered = controller.fail_link("C1", "C5")
    te_time = recovered.timer.durations["P5"]
    print(f"snapshot:  generation {recovered.generation}, "
          f"event {recovered.event!r}")
    print(f"TE re-optimization: {te_time * 1000:.1f} ms "
          f"(placement untouched: {recovered.placement == cold.placement})")
    new_path = recovered.routing.path(1, 6)
    print(f"new path 1->6: {' -> '.join(new_path)}")
    assert ("C1", "C5") not in list(zip(new_path, new_path[1:]))
    # The snapshot's topology IS the degraded one the solve ran against.
    validate_solution(recovered.routing, recovered.topology,
                      recovered.mapping, recovered.dependencies)
    print("state-ordering constraints still hold on every installed path.")

    print("\n== Event: link repaired (same standing model, link restored) ==")
    repaired = controller.restore_link("C1", "C5")
    print(f"path 1->6 back to: {' -> '.join(repaired.routing.path(1, 6))} "
          f"in {repaired.timer.durations['P5'] * 1000:.1f} ms "
          f"(generation {repaired.generation})")

    print("\n== Event: traffic shift (hotspot toward port 6) ==")
    demands = dict(controller.demands)
    for u in range(1, 6):
        demands[(u, 6)] = demands.get((u, 6), 0.0) * 5
    shifted = controller.set_demands(demands)
    print(f"TE under shifted matrix: objective {shifted.objective:.3f} "
          f"(was {recovered.objective:.3f})")
    print(f"path 2->6: {' -> '.join(shifted.routing.path(2, 6))}")

    te_builds = controller.backend.calls["te_model_builds"]
    te_solves = controller.backend.calls["te_solves"]
    print(f"\nstanding TE model: built {te_builds} time(s), "
          f"re-solved {te_solves} times across "
          f"{controller.generation} events")
    print("snapshots:", ", ".join(
        f"gen {s.generation}={s.event}" for s in controller.history()
    ))


if __name__ == "__main__":
    main()
