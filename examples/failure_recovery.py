#!/usr/bin/env python3
"""Failure recovery with the TE LP (§6.2 "Topology/TM Changes").

After cold start, a core link fails.  Instead of re-solving the joint
placement problem, the compiler keeps the state placement fixed and
re-runs only the (much faster) TE routing LP — the P5-TE + P6 path of
Table 4.  The example shows the rerouted paths still respect every state
constraint, and compares ST vs TE solve times.

Run:  python examples/failure_recovery.py
"""



from repro import Compiler, Program, campus_topology
from repro.apps import assign_egress, default_subnets, dns_tunnel_detect, port_assumption
from repro.lang import ast
from repro.milp.results import validate_solution


def main():
    subnets = default_subnets(6)
    detect = dns_tunnel_detect(threshold=3)
    program = Program(
        ast.Seq(detect.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=detect.state_defaults,
        name="dns-tunnel+egress",
    )
    topology = campus_topology()
    compiler = Compiler(topology, program)

    cold = compiler.cold_start()
    st_time = cold.timer.durations["P5"]
    print("== Cold start ==")
    print(f"placement: {cold.placement}")
    print(f"path 1->6: {' -> '.join(cold.routing.path(1, 6))}")
    print(f"ST solve:  {st_time * 1000:.1f} ms")

    print("\n== Link C1-C5 fails (incremental model patch, §6.2.2) ==")
    recovered = compiler.topology_change(failed_links=[("C1", "C5")])
    te_time = recovered.timer.durations["P5"]
    print(f"TE re-optimization: {te_time * 1000:.1f} ms "
          f"(placement untouched: {recovered.placement == cold.placement})")
    new_path = recovered.routing.path(1, 6)
    print(f"new path 1->6: {' -> '.join(new_path)}")
    assert ("C1", "C5") not in list(zip(new_path, new_path[1:]))
    validate_solution(recovered.routing, topology.without_link("C1", "C5"),
                      recovered.mapping, recovered.dependencies)
    print("state-ordering constraints still hold on every installed path.")

    print("\n== Link repaired (same standing model, links restored) ==")
    repaired = compiler.topology_change(failed_links=[])
    print(f"path 1->6 back to: {' -> '.join(repaired.routing.path(1, 6))} "
          f"in {repaired.timer.durations['P5'] * 1000:.1f} ms")

    print("\n== Traffic shift (hotspot toward port 6) ==")
    demands = dict(compiler.demands)
    for u in range(1, 6):
        demands[(u, 6)] = demands.get((u, 6), 0.0) * 5
    shifted = compiler.topology_change(new_demands=demands)
    print(f"TE under shifted matrix: objective {shifted.objective:.3f} "
          f"(was {recovered.objective:.3f})")
    print(f"path 2->6: {' -> '.join(shifted.routing.path(2, 6))}")


if __name__ == "__main__":
    main()
