#!/usr/bin/env python3
"""Network transactions: the §2.1 honeypot race, live.

Two state variables record, per ingress port, the source IP and the dst
port of the last packet sent to a honeypot.  When the compiler is free to
place them on different switches and two packets race through the network,
the pair can end up describing *different* packets.  Wrapping the updates
in ``atomic(...)`` makes the dependency analysis tie the variables
together, the MILP co-locates them, and the pair is updated atomically.
The epilogue compiles the atomic policy through a ``SnapController``
session to show the compiler choosing such a co-located placement itself.

Run:  python examples/network_transactions.py
"""

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.dataplane.network import Network
from repro.lang import ast, make_packet
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd

HONEYPOT = IPPrefix("10.0.3.0/25")


def honeypot_policy(atomic: bool) -> ast.Policy:
    body = ast.Seq(
        ast.StateMod("hon-ip", ast.Field("inport"), ast.Field("srcip")),
        ast.StateMod("hon-dstport", ast.Field("inport"), ast.Field("dstport")),
    )
    if atomic:
        body = ast.Atomic(body)
    return ast.Seq(
        ast.If(ast.Test("dstip", HONEYPOT), body, ast.Id()),
        ast.Mod("outport", 2),
    )


def line_network(policy, placement):
    topo = Topology("line")
    for name in ("a", "b", "c"):
        topo.add_switch(name)
    topo.add_link("a", "b", 100.0)
    topo.add_link("b", "c", 100.0)
    topo.attach_port(1, "a")
    topo.attach_port(2, "c")
    deps = analyze_dependencies(policy)
    xfdd = build_xfdd(policy, state_rank=deps.state_rank)
    mapping = packet_state_mapping(xfdd, (1, 2), (1, 2))
    routing = RoutingPaths({(1, 2): ("a", "b", "c"), (2, 1): ("c", "b", "a")},
                           placement)
    return Network(topo, xfdd, placement, routing, mapping,
                   uniform_traffic_matrix((1, 2), 1.0), {})


def race(network):
    """Inject two honeypot probes with an adversarial interleaving."""
    p1 = make_packet(srcip=111, dstip=HONEYPOT.host(1), dstport=1111)
    p2 = make_packet(srcip=222, dstip=HONEYPOT.host(2), dstport=2222)
    picks = iter([0, 0, 1, 0])  # p2 overtakes p1 between the two switches
    network.inject_concurrent([(p1, 1), (p2, 1)],
                              scheduler=lambda pending: next(picks, 0))
    store = network.global_store()
    return store.read("hon-ip", (1,)), store.read("hon-dstport", (1,))


def programs():
    """Lint hook: the racy variant carries the §2.1 transaction hazard
    (SNAP-W103); the ``atomic()`` variant lints clean."""
    from repro.core.program import Program

    return [
        Program(honeypot_policy(atomic=True), name="honeypot-atomic"),
        Program(honeypot_policy(atomic=False), name="honeypot-racy"),
    ]


def main():
    print("== Without atomic(): variables split across switches ==")
    deps = analyze_dependencies(honeypot_policy(atomic=False))
    print(f"tied groups: {sorted(map(sorted, deps.tied)) or 'none'}")
    net = line_network(honeypot_policy(atomic=False),
                       {"hon-ip": "a", "hon-dstport": "b"})
    ip_val, port_val = race(net)
    print(f"hon-ip[1] = {ip_val}, hon-dstport[1] = {port_val}")
    if (ip_val, port_val) in ((111, 1111), (222, 2222)):
        print("=> the pair describes one packet (got lucky this run)")
    else:
        print("=> MIXED: the pair describes two different packets!")

    print("\n== With atomic(): compiler ties and co-locates the pair ==")
    deps = analyze_dependencies(honeypot_policy(atomic=True))
    print(f"tied groups: {sorted(map(sorted, deps.tied))}")
    net = line_network(honeypot_policy(atomic=True),
                       {"hon-ip": "b", "hon-dstport": "b"})
    ip_val, port_val = race(net)
    print(f"hon-ip[1] = {ip_val}, hon-dstport[1] = {port_val}")
    assert (ip_val, port_val) in ((111, 1111), (222, 2222))
    print("=> consistent under the same adversarial schedule.")

    print("\n== Compiled end to end: the controller co-locates the pair ==")
    from repro import Program, SnapController

    topo = Topology("line")
    for name in ("a", "b", "c"):
        topo.add_switch(name)
    topo.add_link("a", "b", 100.0)
    topo.add_link("b", "c", 100.0)
    topo.attach_port(1, "a")
    topo.attach_port(2, "c")
    controller = SnapController(
        topo,
        Program(honeypot_policy(atomic=True), name="honeypot-atomic"),
        demands=uniform_traffic_matrix((1, 2), 1.0),
    )
    snap = controller.submit()
    owners = {snap.placement["hon-ip"], snap.placement["hon-dstport"]}
    print(f"placement: {dict(snap.placement)} (generation {snap.generation})")
    assert len(owners) == 1, "tied variables must share a switch"
    print("=> the placement MILP honoured the atomic() tie on its own.")


if __name__ == "__main__":
    main()
