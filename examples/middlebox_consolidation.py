#!/usr/bin/env python3
"""Middlebox consolidation: many Table 3 functions as one SNAP policy.

§6.1's motivation — functions "typically relegated to middleboxes" become
one composed OBS program.  We compose a stateful firewall, DNS-amplification
mitigation, and a heavy-hitter detector in parallel with the DNS tunnel
detector, compile once, and show where each function's state landed and
how traffic is steered through it.

Run:  python examples/middlebox_consolidation.py
"""

from repro import Program, SnapController, campus_topology, make_packet
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_amplification_mitigation,
    dns_tunnel_detect,
    heavy_hitter_detect,
    port_assumption,
    stateful_firewall,
)
from repro.lang import ast
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix


def ip(text):
    return IPPrefix(text).network


def build_program():
    subnets = default_subnets(6)
    protected = subnets[6]  # the CS department, as in the paper's intro
    tunnel = dns_tunnel_detect(threshold=3)
    firewall = stateful_firewall(subnet="10.0.6.0/24")
    amplification = dns_amplification_mitigation()
    heavy = heavy_hitter_detect(threshold=4)
    functions = [tunnel, firewall, amplification, heavy]

    # Composition matters (§2.1): the *filters* (amplification mitigation,
    # firewall) gate the pipeline sequentially — their drops must stop the
    # packet.  The pure *monitors* (tunnel detector, heavy-hitter counter)
    # run in parallel; they write disjoint state, so the race check is
    # satisfied, and their copies collapse after assign-egress.
    #
    # The monitors are scoped to traffic touching the protected subnet.
    # Scoping is not just narrative: on this campus, leaf ports 1/3 and
    # 2/4 hang off single core switches, so a state variable needed by
    # *every* flow cannot sit on any one switch while keeping forwarding
    # loop-free — the placement MILP would be infeasible.  (Appendix C's
    # sharding is the paper's other way out; see examples/isp_scaleout.py.)
    touches_subnet = ast.Or(
        ast.Test("srcip", protected), ast.Test("dstip", protected)
    )
    guarded_amp = ast.If(touches_subnet, amplification.policy, ast.Id())
    guarded_heavy = ast.If(ast.Test("dstip", protected), heavy.policy, ast.Id())
    monitors = ast.par_all([tunnel.policy, guarded_heavy, ast.Id()])
    policy = ast.seq_all(
        [guarded_amp, firewall.policy, monitors, assign_egress(subnets)]
    )
    defaults = {}
    for f in functions:
        defaults.update(f.state_defaults)
    program = Program(
        policy,
        assumption=port_assumption(subnets),
        state_defaults=defaults,
        name="consolidated-middleboxes",
    )
    return program, functions


def programs():
    """Lint hook: ``python -m repro.analysis.lint middlebox_consolidation``."""
    return [build_program()[0]]


def main():
    program, functions = build_program()
    controller = SnapController(campus_topology(), program)
    result = controller.submit()

    from repro.xfdd.diagram import iter_paths

    print("== Composed policy ==")
    print("functions:", ", ".join(f.name for f in functions))
    print(f"xFDD paths: {sum(1 for _ in iter_paths(result.xfdd))}")
    print("\n== State placement ==")
    by_switch: dict = {}
    for var, switch in sorted(result.placement.items()):
        by_switch.setdefault(switch, []).append(var)
    for switch, vars_ in sorted(by_switch.items()):
        print(f"  {switch}: {', '.join(vars_)}")

    network = controller.network()
    print("\n== Traffic checks ==")
    # Outside host cannot initiate into the protected subnet.
    blocked = network.inject(
        make_packet(srcip=ip("10.0.1.1"), dstip=ip("10.0.6.1"), srcport=700,
                    dstport=80, **{"tcp.flags": Symbol("SYN")}),
        1,
    )
    print(f"outside->inside initiation: "
          f"{'delivered' if any(r.egress for r in blocked) else 'blocked'}")
    # Inside host opens a connection; the reverse direction now passes.
    network.inject(
        make_packet(srcip=ip("10.0.6.1"), dstip=ip("10.0.1.1"), srcport=80,
                    dstport=700, **{"tcp.flags": Symbol("SYN")}),
        6,
    )
    allowed = network.inject(
        make_packet(srcip=ip("10.0.1.1"), dstip=ip("10.0.6.1"), srcport=700,
                    dstport=80, **{"tcp.flags": Symbol("ACK")}),
        1,
    )
    print(f"return traffic after inside opened: "
          f"{'delivered' if any(r.egress for r in allowed) else 'blocked'}")
    # Heavy-hitter counting applies to admitted traffic into the subnet.
    for _ in range(2):
        network.inject(
            make_packet(srcip=ip("10.0.1.1"), dstip=ip("10.0.6.1"), srcport=700,
                        dstport=80, **{"tcp.flags": Symbol("SYN")}),
            1,
        )
    store = network.global_store()
    print(f"hh-counter[10.0.1.1] = {store.read('hh-counter', (ip('10.0.1.1'),))}")
    print(f"established[inside->outside] recorded: "
          f"{store.read('established', (ip('10.0.6.1'), ip('10.0.1.1')))}")


if __name__ == "__main__":
    main()
