#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Compiles ``DNS-tunnel-detect; assign-egress`` (Figures 1-3) onto the
Figure 2 campus network, prints what the compiler decided, and pushes a
few packets through the simulated distributed data plane.

Run:  python examples/quickstart.py
"""

from repro import Program, SnapController, campus_topology, make_packet
from repro.apps import assign_egress, default_subnets, dns_tunnel_detect, port_assumption
from repro.lang import ast
from repro.util.ipaddr import IPPrefix


def ip(text):
    return IPPrefix(text).network


def build_program():
    """The OBS program: detection (Figure 1) + routing + the operator's
    assumption about which subnet enters which port (§4.3)."""
    subnets = default_subnets(6)
    detect = dns_tunnel_detect(subnet="10.0.6.0/24", threshold=3)
    return Program(
        ast.Seq(detect.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=detect.state_defaults,
        name="dns-tunnel-detect;assign-egress",
    )


def programs():
    """Lint hook: ``python -m repro.analysis.lint quickstart``."""
    return [build_program()]


def main():
    # 1. Write the OBS program.
    program = build_program()

    # 2. Start a controller session and submit the program (cold start).
    topology = campus_topology()
    controller = SnapController(topology, program)
    result = controller.submit()

    print("== Compilation ==")
    print(f"program:     {program.name}")
    print(f"topology:    {topology}")
    print(f"state order: {result.dependencies.order}")
    print(f"placement:   {result.placement}   (the paper: all on D4)")
    print(f"path 1->6:   {' -> '.join(result.routing.path(1, 6))}")
    print(f"path 2->6:   {' -> '.join(result.routing.path(2, 6))}")
    for phase, seconds in sorted(result.timer.durations.items()):
        print(f"  {phase}: {seconds * 1000:7.1f} ms")

    # 3. Bring up the session's live data plane and run the attack.
    network = controller.network()
    print("\n== Simulating a DNS tunnel (3 unused responses) ==")
    client = ip("10.0.6.10")
    for k in range(3):
        packet = make_packet(
            srcip=ip("10.0.1.1"), dstip=client, srcport=53, dstport=9999,
            **{"dns.rdata": ip(f"10.0.1.{50 + k}")},
        )
        records = network.inject(packet, 1)
        print(f"  DNS response {k + 1}: delivered at port {records[0].egress}, "
              f"{records[0].hops} hops")
    store = network.global_store()
    print(f"suspicion counter: {store.read('susp-client', (client,))}")
    print(f"blacklisted:       {store.read('blacklist', (client,))}")

    # 4. A different, benign client that uses what it resolves is left alone.
    print("\n== Benign lookup-then-connect (client 10.0.6.20) ==")
    benign = ip("10.0.6.20")
    server = ip("10.0.2.2")
    network.inject(
        make_packet(srcip=ip("10.0.2.2"), dstip=benign, srcport=53, dstport=5,
                    **{"dns.rdata": server}),
        2,
    )
    network.inject(
        make_packet(srcip=benign, dstip=server, srcport=400, dstport=80), 6
    )
    store = network.global_store()
    print(f"suspicion counter: {store.read('susp-client', (benign,))} (back to 0)")
    print(f"blacklisted:       {store.read('blacklist', (benign,))}")


if __name__ == "__main__":
    main()
