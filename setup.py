"""Setup shim: lets ``pip install -e .`` work without the ``wheel`` package
(this offline environment has setuptools 65 but no PEP 660 backend deps).

NumPy is deliberately *not* a core requirement: only the columnar vector
tier (``engine="vector"`` / ``"vector-jit"``) needs it, and the engine
registry degrades to the scalar lanes when it is absent.  Install the
``vector`` extra to opt in, or the ``test`` extra to run the suite
(which skips the vector tests when numpy is missing but exercises them
everywhere CI runs).
"""

from setuptools import find_packages, setup

setup(
    name="snap-repro",
    version="0.6.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "scipy",
    ],
    extras_require={
        "vector": ["numpy"],
        "test": [
            "numpy",
            "hypothesis",
            "pytest",
            "pytest-benchmark",
        ],
    },
)
