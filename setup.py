"""Setup shim: lets ``pip install -e .`` work without the ``wheel`` package
(this offline environment has setuptools 65 but no PEP 660 backend deps)."""

from setuptools import setup

setup()
