"""Integration tests for the compiler pipeline and its scenarios (Table 4).

These exercise the deprecated ``Compiler`` shim on purpose, so the
repo-wide ``error:Compiler is deprecated`` filter (pytest.ini) is relaxed
back to the default for this module only.
"""

import pytest

pytestmark = pytest.mark.filterwarnings("default:Compiler is deprecated")

from repro.apps.chimera import dns_tunnel_detect
from repro.apps.fast import stateful_firewall
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.core.pipeline import SCENARIO_PHASES, Compiler
from repro.core.program import Program
from repro.lang import ast
from repro.lang.packet import make_packet
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix


def campus_program(app_program=None, num_ports=6):
    subnets = default_subnets(num_ports)
    app = app_program or dns_tunnel_detect()
    policy = ast.Seq(app.policy, assign_egress(subnets))
    return Program(
        policy,
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        name=f"{app.name}+egress",
    )


@pytest.fixture(scope="module")
def cold_result():
    compiler = Compiler(campus_topology(), campus_program())
    return compiler, compiler.cold_start()


class TestColdStart:
    def test_all_phases_timed(self, cold_result):
        _, result = cold_result
        assert set(result.timer.durations) == {"P1", "P2", "P3", "P4", "P5", "P6"}

    def test_placement_on_d4(self, cold_result):
        _, result = cold_result
        assert set(result.placement.values()) == {"D4"}

    def test_paper_paths(self, cold_result):
        """§2.2: I1/D1 traffic reaches D4 via C1 and C5; I2/D2 via C2, C6."""
        _, result = cold_result
        assert result.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        assert result.routing.path(2, 6) == ("I2", "C2", "C6", "D4")
        assert result.routing.path(3, 6)[0] == "D1"

    def test_model_stats_recorded(self, cold_result):
        _, result = cold_result
        assert result.model_stats["integer_variables"] > 0

    def test_scenario_time_sums_table4_phases(self, cold_result):
        _, result = cold_result
        assert result.scenario_time("cold_start") == pytest.approx(
            sum(result.timer.durations.values())
        )
        assert result.scenario_time("topology_change") == pytest.approx(
            result.timer.durations["P5"] + result.timer.durations["P6"]
        )


class TestScenarios:
    def test_policy_change_phases(self):
        compiler = Compiler(campus_topology(), campus_program())
        compiler.cold_start()
        result = compiler.policy_change(campus_program(stateful_firewall()))
        assert result.scenario == "policy_change"
        assert "orphan" not in result.placement
        assert "established" in result.placement

    def test_topology_change_reuses_placement(self):
        compiler = Compiler(campus_topology(), campus_program())
        cold = compiler.cold_start()
        result = compiler.topology_change()
        assert result.placement == cold.placement
        assert set(result.timer.durations) == {"P5", "P6"}

    def test_topology_change_requires_cold_start(self):
        compiler = Compiler(campus_topology(), campus_program())
        with pytest.raises(RuntimeError):
            compiler.topology_change()

    def test_link_failure_rerouting(self):
        compiler = Compiler(campus_topology(), campus_program())
        cold = compiler.cold_start()
        assert cold.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        degraded = campus_topology().without_link("C1", "C5")
        result = compiler.topology_change(new_topology=degraded)
        path = result.routing.path(1, 6)
        assert ("C1", "C5") not in list(zip(path, path[1:]))
        assert path[0] == "I1" and path[-1] == "D4"

    def test_heuristic_mode(self):
        compiler = Compiler(
            campus_topology(), campus_program(), use_heuristic=True
        )
        result = compiler.cold_start()
        assert set(result.placement.values()) == {"D4"}

    def test_scenario_phase_sets_match_table4(self):
        assert SCENARIO_PHASES["cold_start"] == ("P1", "P2", "P3", "P4", "P5", "P6")
        assert SCENARIO_PHASES["policy_change"] == ("P1", "P2", "P3", "P5", "P6")
        assert SCENARIO_PHASES["topology_change"] == ("P5", "P6")


class TestEndToEndDnsTunnel:
    """Behavioural test of the §2.1 scenario on the simulated data plane."""

    def _attack_packets(self, n):
        ip = lambda s: IPPrefix(s).network
        client = ip("10.0.6.10")
        packets = []
        for k in range(n):
            packets.append(
                (
                    make_packet(
                        srcip=ip("10.0.1.1"),
                        dstip=client,
                        srcport=53,
                        dstport=9999,
                        **{"dns.rdata": ip(f"10.0.1.{50 + k}")},
                    ),
                    1,
                )
            )
        return packets

    def test_unused_responses_blacklist_client(self):
        compiler = Compiler(campus_topology(), campus_program())
        result = compiler.cold_start()
        net = result.build_network()
        for pkt, port in self._attack_packets(3):
            records = net.inject(pkt, port)
            assert records and records[0].egress == 6
        store = net.global_store()
        client = IPPrefix("10.0.6.10").network
        assert store.read("susp-client", (client,)) == 3
        assert store.read("blacklist", (client,)) is True

    def test_used_responses_are_benign(self):
        compiler = Compiler(campus_topology(), campus_program())
        result = compiler.cold_start()
        net = result.build_network()
        ip = lambda s: IPPrefix(s).network
        client = ip("10.0.6.10")
        server = ip("10.0.1.50")
        # DNS response to the client...
        net.inject(
            make_packet(
                srcip=ip("10.0.1.1"), dstip=client, srcport=53, dstport=9,
                **{"dns.rdata": server},
            ),
            1,
        )
        # ... followed by the client using the resolved address.
        net.inject(
            make_packet(srcip=client, dstip=server, srcport=1234, dstport=80), 6
        )
        store = net.global_store()
        assert store.read("susp-client", (client,)) == 0
        assert store.read("orphan", (client, server)) is False
