"""Tests for dependency analysis (§4.1) and packet-state mapping (§4.3)."""

from repro.analysis.dependency import analyze_dependencies, st_dep
from repro.analysis.packet_state import packet_state_mapping
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.lang import ast, parse
from repro.xfdd.build import build_xfdd


def S(var, idx=0):
    return ast.StateTest(var, ast.Value(idx), ast.Value(True))


def W(var, idx=0):
    return ast.StateMod(var, ast.Value(idx), ast.Value(True))


class TestStDep:
    def test_parallel_no_dependencies(self):
        assert st_dep(ast.Parallel(S("a"), W("b"))) == frozenset()

    def test_seq_read_then_write(self):
        assert ("a", "b") in st_dep(ast.Seq(S("a"), W("b")))

    def test_seq_write_then_write_no_dep(self):
        # Only read-then-write creates ordering (§4.1).
        assert st_dep(ast.Seq(W("a"), W("b"))) == frozenset()

    def test_if_condition_to_both_branches(self):
        deps = st_dep(ast.If(S("a"), W("b"), W("c")))
        assert ("a", "b") in deps and ("a", "c") in deps

    def test_atomic_all_interdependent(self):
        deps = st_dep(ast.Atomic(ast.Seq(W("a"), W("b"))))
        assert ("a", "b") in deps and ("b", "a") in deps

    def test_nested(self):
        inner = ast.Seq(S("a"), W("b"))
        deps = st_dep(ast.Seq(inner, W("c")))
        assert ("a", "b") in deps and ("a", "c") in deps


class TestAnalyzeDependencies:
    def test_chain_ranks(self):
        policy = ast.Seq(ast.Seq(S("a"), W("b")), ast.Seq(S("b"), W("c")))
        info = analyze_dependencies(policy)
        assert info.state_rank["a"] < info.state_rank["b"] < info.state_rank["c"]
        assert ("a", "b") in info.dep and ("b", "c") in info.dep
        assert not info.tied

    def test_atomic_gives_tied_group(self):
        policy = ast.Atomic(ast.Seq(W("a"), W("b")))
        info = analyze_dependencies(policy)
        assert frozenset(("a", "b")) in info.tied
        # Tied variables share an SCC rank.
        assert info.state_rank["a"] == info.state_rank["b"]

    def test_mutual_dependency_tied(self):
        # read a then write b, and read b then write a.
        policy = ast.Parallel(ast.Seq(S("a"), W("b")), ast.Seq(S("b"), W("a")))
        info = analyze_dependencies(policy)
        assert frozenset(("a", "b")) in info.tied

    def test_self_loop_not_tied(self):
        policy = ast.Seq(S("a"), W("a"))
        info = analyze_dependencies(policy)
        assert not info.tied
        assert ("a", "a") not in info.dep

    def test_untouched_vars_absent(self):
        info = analyze_dependencies(ast.Id())
        assert info.order == []


class TestPacketStateMapping:
    def _mapping(self, policy, ports=range(1, 4)):
        xfdd = build_xfdd(policy)
        return packet_state_mapping(xfdd, list(ports), list(ports))

    def test_states_follow_assigned_outport(self):
        # Packets tested against s exit at port 2 only.
        policy = ast.If(
            S("s"),
            ast.Mod("outport", 2),
            ast.Mod("outport", 3),
        )
        mapping = self._mapping(policy)
        # All ingresses can reach the state; both egress 2 and 3 paths read s.
        assert "s" in mapping.states_for(1, 2)
        assert "s" in mapping.states_for(1, 3)

    def test_inport_test_restricts_sources(self):
        policy = ast.If(
            ast.Test("inport", 1),
            ast.Seq(W("s"), ast.Mod("outport", 2)),
            ast.Mod("outport", 3),
        )
        mapping = self._mapping(policy)
        assert "s" in mapping.states_for(1, 2)
        assert not mapping.states_for(2, 3)
        assert not mapping.states_for(2, 2)

    def test_stateless_program_has_empty_mapping(self):
        policy = ast.Mod("outport", 2)
        mapping = self._mapping(policy)
        assert not mapping.all_state_vars()

    def test_drop_path_covered_by_emitting_sibling(self):
        # s-true drops, s-false emits to port 2; both paths read s, so the
        # emitting flow (u, 2) already covers the dropped packets (they
        # ride that path to s's switch and die there) — no need to drag
        # every other flow through s.
        policy = ast.If(S("s"), ast.Drop(), ast.Mod("outport", 2))
        mapping = self._mapping(policy)
        assert "s" in mapping.states_for(1, 2)
        assert "s" not in mapping.states_for(1, 3)

    def test_uncovered_drop_path_falls_back_to_all_egresses(self):
        # Every path drops: no emitting flow reaches s, so the fallback
        # attributes s to all flows (any path can carry the packet to s).
        policy = ast.Seq(W("s"), ast.Drop())
        mapping = self._mapping(policy)
        for v in (2, 3):
            assert "s" in mapping.states_for(1, v)

    def test_paper_example_mapping(self):
        """§4.3: with the assumption policy, packets to port 6 need all
        three variables; packets from subnet 6 need orphan and susp-client."""
        from repro.apps.chimera import dns_tunnel_detect

        subnets = default_subnets(6)
        dns = dns_tunnel_detect()
        program = ast.Seq(
            port_assumption(subnets),
            ast.Seq(dns.policy, assign_egress(subnets)),
        )
        xfdd = build_xfdd(program)
        mapping = packet_state_mapping(xfdd, range(1, 7), range(1, 7))
        for u in range(1, 6):
            assert mapping.states_for(u, 6) == frozenset(
                ("orphan", "susp-client", "blacklist")
            )
        for v in range(1, 6):
            assert mapping.states_for(6, v) == frozenset(("orphan", "susp-client"))
        assert not mapping.states_for(2, 3)

    def test_pairs_needing(self):
        policy = ast.If(
            ast.Test("inport", 1),
            ast.Seq(W("s"), ast.Mod("outport", 2)),
            ast.Mod("outport", 3),
        )
        mapping = self._mapping(policy)
        assert (1, 2) in mapping.pairs_needing("s")
