"""Tests for the batched OBS verification mirror.

The contract: every mirror engine returns *exactly* the sequential
mirror's ``(store, outputs)`` — byte-identical outputs in arrival order
and an ``==``-equal final store — whether groups ran inline or on a
process pool, and regardless of how the trace's ports interleave.
"""

import pytest

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
)
from repro.core.program import Program
from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.state import Store
from repro import workloads
from repro.workloads import (
    BatchedObsEngine,
    SequentialObsEngine,
    get_obs_engine,
    replay_obs,
)
from repro.workloads.obs_engine import _policy_fields

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PORTS = list(range(1, NUM_PORTS + 1))


def monitor_program():
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    return Program(
        shard_by_inport(body, "count", PORTS),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", PORTS),
        name="monitor-sharded",
    )


def tunnel_program():
    app = dns_tunnel_detect(threshold=3)
    return Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )


def mirror(program, trace, engine):
    return replay_obs(
        trace, program.full_policy(), Store(program.state_defaults),
        engine=engine,
    )


@pytest.mark.parametrize("engine", ["batched", "process"])
def test_sharded_monitor_mirror_identical(engine):
    program = monitor_program()
    trace = workloads.background_traffic(SUBNETS, count=300, seed=7)
    ref_store, ref_out = mirror(program, trace, None)
    got_store, got_out = mirror(program, trace, engine)
    assert got_out == ref_out
    assert got_store == ref_store


@pytest.mark.parametrize("engine", ["batched", "process"])
def test_global_state_falls_back_to_sequential(engine):
    """One group (every port shares the tunnel state): the batched
    engines must still return the sequential answer."""
    program = tunnel_program()
    attack = workloads.dns_tunnel_attack(
        SUBNETS[6].host(66), 6, SUBNETS[1].host(53), 1, num_responses=4
    )
    trace = attack.interleaved_with(
        workloads.background_traffic(SUBNETS, count=80, seed=3), seed=5
    )
    ref_store, ref_out = mirror(program, trace, None)
    got_store, got_out = mirror(program, trace, engine)
    assert got_out == ref_out
    assert got_store == ref_store


def test_initial_store_entries_survive_the_merge():
    """Variables no packet touches keep their initial contents."""
    program = monitor_program()
    store = Store(program.state_defaults)
    store.write("count@1", (1,), 41)  # pre-existing counter value
    store.write("unrelated", ("x",), "keep-me")
    trace = workloads.background_traffic(SUBNETS, count=120, seed=9)
    ref_store, ref_out = replay_obs(
        trace, program.full_policy(), store.copy()
    )
    got_store, got_out = replay_obs(
        trace, program.full_policy(), store.copy(), engine="process"
    )
    assert got_out == ref_out
    assert got_store == ref_store
    assert got_store.read("unrelated", ("x",)) == "keep-me"
    assert got_store.read("count@1", (1,)) >= 41


def test_two_process_runs_identical():
    program = monitor_program()
    trace = workloads.background_traffic(SUBNETS, count=200, seed=11)
    engine = BatchedObsEngine(max_workers=2)
    try:
        a = mirror(program, trace, engine)
        b = mirror(program, trace, engine)
        assert a[1] == b[1]
        assert a[0] == b[0]
    finally:
        engine.close()


def test_plan_cached_per_policy():
    program = monitor_program()
    engine = BatchedObsEngine(processes=False)
    trace = list(workloads.background_traffic(SUBNETS, count=30, seed=1))
    mirror(program, trace, engine)
    ports = frozenset(port for _, port in trace)
    key = (program.full_policy(), ports)
    assert key in engine._plan_cache
    plan = engine._plan_cache[key]
    mirror(program, trace, engine)
    assert engine._plan_cache[key] is plan


def test_engine_resolution():
    assert isinstance(get_obs_engine(None), SequentialObsEngine)
    assert isinstance(get_obs_engine("sequential"), SequentialObsEngine)
    batched = get_obs_engine("batched")
    assert isinstance(batched, BatchedObsEngine) and not batched.processes
    process = get_obs_engine("process")
    assert isinstance(process, BatchedObsEngine) and process.processes
    # Named engines are shared: repeated replay_obs(engine="process")
    # calls reuse one pool instead of leaking one per call.
    assert get_obs_engine("batched") is batched
    assert get_obs_engine("process") is process
    custom = BatchedObsEngine(processes=False)
    assert get_obs_engine(custom) is custom
    with pytest.raises(SnapError):
        get_obs_engine("warp-drive")


def test_plan_cache_is_bounded():
    engine = BatchedObsEngine(processes=False)
    for i in range(engine._PLAN_CACHE_LIMIT + 5):
        engine._plan(ast.Seq(ast.Mod("outport", 2), ast.Mod("ttl", i)),
                     frozenset(PORTS))
    assert len(engine._plan_cache) == engine._PLAN_CACHE_LIMIT


def test_policy_fields_walker_sees_every_field():
    policy = ast.Seq(
        ast.If(
            ast.And(ast.Test("inport", 1), ast.Not(ast.Test("proto", 6))),
            ast.StateMod("s", ast.Field("srcip"), ast.Field("dstip")),
            ast.StateIncr("t", ast.Vector([ast.Field("srcport"), 3])),
        ),
        ast.Parallel(ast.Mod("outport", 2), ast.Atomic(ast.Mod("ttl", 1))),
    )
    assert _policy_fields(policy) == {
        "inport", "proto", "srcip", "dstip", "srcport", "outport", "ttl",
    }
