"""Network transactions (§2.1, §3 ``atomic``).

The honeypot example: recording the source IP and dst port of the last
packet per inport in two state variables.  If the variables live on
different switches and two packets race, the variables can end up
describing *different* packets.  ``atomic()`` forces co-location, making
the update pair atomic per packet.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.dataplane.network import Network
from repro.lang import ast, parse
from repro.lang.packet import make_packet
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd

HONEYPOT = IPPrefix("10.0.3.0/25")


def honeypot_policy(atomic: bool) -> ast.Policy:
    body = ast.Seq(
        ast.StateMod("hon-ip", ast.Field("inport"), ast.Field("srcip")),
        ast.StateMod("hon-dstport", ast.Field("inport"), ast.Field("dstport")),
    )
    if atomic:
        body = ast.Atomic(body)
    return ast.Seq(
        ast.If(ast.Test("dstip", HONEYPOT), body, ast.Id()),
        ast.Mod("outport", 2),
    )


def two_switch_topology():
    topo = Topology("pair")
    for name in ("a", "b", "c"):
        topo.add_switch(name)
    topo.add_link("a", "b", 100.0)
    topo.add_link("b", "c", 100.0)
    topo.attach_port(1, "a")
    topo.attach_port(2, "c")
    topo.validate()
    return topo


def build_network(policy, placement):
    """Wire the honeypot policy with a hand-chosen placement."""
    topo = two_switch_topology()
    deps = analyze_dependencies(policy)
    xfdd = build_xfdd(policy, state_rank=deps.state_rank)
    mapping = packet_state_mapping(xfdd, (1, 2), (1, 2))
    demands = uniform_traffic_matrix((1, 2), 1.0)
    routing = RoutingPaths(
        {(1, 2): ("a", "b", "c"), (2, 1): ("c", "b", "a")}, placement
    )
    return Network(topo, xfdd, placement, routing, mapping, demands, {})


def honeypot_packets():
    p1 = make_packet(srcip=111, dstip=HONEYPOT.host(1), dstport=1111)
    p2 = make_packet(srcip=222, dstip=HONEYPOT.host(2), dstport=2222)
    return p1, p2


class TestAtomicDependencyAnalysis:
    def test_atomic_ties_the_variables(self):
        deps = analyze_dependencies(honeypot_policy(atomic=True))
        assert frozenset(("hon-ip", "hon-dstport")) in deps.tied

    def test_without_atomic_not_tied(self):
        deps = analyze_dependencies(honeypot_policy(atomic=False))
        assert not deps.tied

    def test_milp_colocates_atomic_variables(self):
        from repro.milp.placement import build_placement_model

        policy = honeypot_policy(atomic=True)
        topo = two_switch_topology()
        deps = analyze_dependencies(policy)
        xfdd = build_xfdd(policy, state_rank=deps.state_rank)
        mapping = packet_state_mapping(xfdd, (1, 2), (1, 2))
        demands = uniform_traffic_matrix((1, 2), 1.0)
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        assert solution.placement["hon-ip"] == solution.placement["hon-dstport"]


class TestInterleavingHazard:
    def test_split_state_can_mix_packets(self):
        """With the variables on different switches and packets reordered
        in flight, hon-ip ends up describing one packet and hon-dstport
        another — exactly the §2.1 race."""
        net = build_network(
            honeypot_policy(atomic=False), {"hon-ip": "a", "hon-dstport": "b"}
        )
        p1, p2 = honeypot_packets()
        # p1 then p2 write hon-ip at switch a, but p2 overtakes p1 on the
        # way to switch b, so the hon-dstport writes land reversed.
        picks = iter([0, 0, 1, 0])
        scheduler = lambda pending: next(picks, 0)
        net.inject_concurrent([(p1, 1), (p2, 1)], scheduler=scheduler)
        store = net.global_store()
        ip_val = store.read("hon-ip", (1,))
        port_val = store.read("hon-dstport", (1,))
        assert (ip_val, port_val) == (222, 1111)  # mixed!

    def test_colocated_state_stays_consistent(self):
        """Co-located (as atomic() forces), each packet's two writes apply
        back-to-back on one switch: the pair always describes one packet."""
        net = build_network(
            honeypot_policy(atomic=True), {"hon-ip": "b", "hon-dstport": "b"}
        )
        p1, p2 = honeypot_packets()
        # Same adversarial schedule as the mixing test: with both writes on
        # one switch they execute back-to-back and cannot interleave.
        picks = iter([0, 0, 1, 0])
        scheduler = lambda pending: next(picks, 0)
        net.inject_concurrent([(p1, 1), (p2, 1)], scheduler=scheduler)
        store = net.global_store()
        pair = (store.read("hon-ip", (1,)), store.read("hon-dstport", (1,)))
        assert pair in ((111, 1111), (222, 2222))

    def test_sequential_injection_always_consistent(self):
        """Without concurrency there is no hazard even when split."""
        net = build_network(
            honeypot_policy(atomic=False), {"hon-ip": "a", "hon-dstport": "b"}
        )
        p1, p2 = honeypot_packets()
        net.inject(p1, 1)
        net.inject(p2, 1)
        store = net.global_store()
        pair = (store.read("hon-ip", (1,)), store.read("hon-dstport", (1,)))
        assert pair == (222, 2222)


class TestConcurrentAtomicProperty:
    """Property: under *any* adversarial interleaving, an ``atomic()``
    policy (co-located, as the MILP forces) stays OBS-consistent — the
    outcome matches ``eval`` run in *some* serial order of the packets.
    The non-atomic split placement keeps its §2.1 counterexample
    (``test_split_state_can_mix_packets`` above), so the hazard the
    property excludes is known to be reachable without ``atomic()``."""

    @staticmethod
    def _obs_serializations(policy, packets_with_ports):
        """Final OBS stores of every serial order of the arrivals."""
        from itertools import permutations

        from repro.lang.semantics import eval_policy
        from repro.lang.state import Store

        stores = []
        for order in permutations(packets_with_ports):
            store = Store({})
            for packet, port in order:
                tagged = packet.modify("inport", port)
                store, _, _ = eval_policy(policy, store, tagged)
            stores.append(store)
        return stores

    @settings(max_examples=60, deadline=None)
    @given(
        picks=st.lists(st.integers(min_value=0, max_value=7), max_size=30),
        srcs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.integers(min_value=1000, max_value=1009),
            ),
            min_size=2,
            max_size=3,
            unique=True,
        ),
    )
    def test_random_schedules_serialize(self, picks, srcs):
        policy = honeypot_policy(atomic=True)
        net = build_network(policy, {"hon-ip": "b", "hon-dstport": "b"})
        arrivals = [
            (
                make_packet(srcip=src, dstip=HONEYPOT.host(k + 1), dstport=dport),
                1,
            )
            for k, (src, dport) in enumerate(srcs)
        ]
        choices = iter(picks)

        def scheduler(pending):
            return next(choices, 0) % len(pending)

        records = net.inject_concurrent(list(arrivals), scheduler=scheduler)
        assert len(records) == len(arrivals)
        assert net.global_store() in self._obs_serializations(policy, arrivals)
