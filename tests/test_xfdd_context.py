"""Unit tests for the composition context (inference engine)."""

from repro.lang import ast
from repro.util.ipaddr import IPPrefix
from repro.xfdd.context import EMPTY_CONTEXT, Context
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest


def fv(field, value):
    return FieldValueTest(field, value)


def ff(f1, f2):
    return FieldFieldTest(f1, f2)


def st(var, index, value):
    return StateVarTest(var, index, value)


class TestFieldValueInference:
    def test_exact_value_decides(self):
        ctx = EMPTY_CONTEXT.add(fv("f", 5), True)
        assert ctx.implies(fv("f", 5)) is True
        assert ctx.implies(fv("f", 6)) is False

    def test_negative_knowledge(self):
        ctx = EMPTY_CONTEXT.add(fv("f", 5), False)
        assert ctx.implies(fv("f", 5)) is False
        assert ctx.implies(fv("f", 6)) is None

    def test_prefix_positive(self):
        p24 = IPPrefix("10.0.6.0/24")
        ctx = EMPTY_CONTEXT.add(fv("dstip", p24), True)
        assert ctx.implies(fv("dstip", IPPrefix("10.0.0.0/16"))) is True
        assert ctx.implies(fv("dstip", IPPrefix("10.0.7.0/24"))) is False
        assert ctx.implies(fv("dstip", IPPrefix("10.0.6.0/25"))) is None

    def test_prefix_negative(self):
        p16 = IPPrefix("10.0.0.0/16")
        ctx = EMPTY_CONTEXT.add(fv("dstip", p16), False)
        assert ctx.implies(fv("dstip", IPPrefix("10.0.6.0/24"))) is False
        assert ctx.implies(fv("dstip", IPPrefix("11.0.0.0/16"))) is None

    def test_host_prefix_becomes_exact(self):
        host = IPPrefix("10.0.6.1")
        ctx = EMPTY_CONTEXT.add(fv("dstip", host), True)
        assert ctx.resolve("dstip") == host.network


class TestFieldFieldInference:
    def test_equality_propagates_values(self):
        ctx = EMPTY_CONTEXT.add(ff("a", "b"), True).add(fv("a", 5), True)
        assert ctx.resolve("b") == 5
        assert ctx.implies(fv("b", 5)) is True

    def test_inequality(self):
        ctx = EMPTY_CONTEXT.add(ff("a", "b"), False)
        assert ctx.implies(ff("a", "b")) is False

    def test_equality_chains(self):
        ctx = (
            EMPTY_CONTEXT.add(ff("a", "b"), True)
            .add(ff("b", "c"), True)
            .add(fv("c", 9), True)
        )
        assert ctx.resolve("a") == 9

    def test_values_decide_field_equality(self):
        ctx = EMPTY_CONTEXT.add(fv("a", 1), True).add(fv("b", 2), True)
        assert ctx.implies(ff("a", "b")) is False
        ctx2 = EMPTY_CONTEXT.add(fv("a", 1), True).add(fv("b", 1), True)
        assert ctx2.implies(ff("a", "b")) is True

    def test_disjoint_prefix_constraints_decide(self):
        ctx = (
            EMPTY_CONTEXT.add(fv("a", IPPrefix("10.0.6.0/24")), True)
            .add(fv("b", IPPrefix("10.0.7.0/24")), True)
        )
        assert ctx.implies(ff("a", "b")) is False


class TestStateInference:
    def test_recorded_test_reused(self):
        t = st("s", ast.Field("srcip"), ast.Value(True))
        ctx = EMPTY_CONTEXT.add(t, True)
        assert ctx.implies(t) is True

    def test_same_index_different_constant_value(self):
        yes = st("s", ast.Value(0), ast.Value(5))
        other = st("s", ast.Value(0), ast.Value(6))
        ctx = EMPTY_CONTEXT.add(yes, True)
        assert ctx.implies(other) is False

    def test_different_index_unknown(self):
        ctx = EMPTY_CONTEXT.add(st("s", ast.Value(0), ast.Value(5)), True)
        assert ctx.implies(st("s", ast.Value(1), ast.Value(5))) is None

    def test_negative_record_gives_no_cross_info(self):
        ctx = EMPTY_CONTEXT.add(st("s", ast.Value(0), ast.Value(5)), False)
        assert ctx.implies(st("s", ast.Value(0), ast.Value(6))) is None

    def test_index_resolution_through_fields(self):
        ctx = EMPTY_CONTEXT.add(fv("srcip", 7), True).add(
            st("s", ast.Value(7), ast.Value(True)), True
        )
        assert ctx.implies(st("s", ast.Field("srcip"), ast.Value(True))) is True


class TestWithAssignments:
    def test_assigned_field_gets_exact_value(self):
        ctx = EMPTY_CONTEXT.add(fv("f", 1), True)
        post = ctx.with_assignments({"f": 9})
        assert post.resolve("f") == 9

    def test_unassigned_constraints_survive(self):
        ctx = EMPTY_CONTEXT.add(fv("g", 3), True)
        post = ctx.with_assignments({"f": 9})
        assert post.resolve("g") == 3

    def test_equalities_involving_assigned_dropped(self):
        ctx = EMPTY_CONTEXT.add(ff("f", "g"), True).add(fv("g", 4), True)
        post = ctx.with_assignments({"f": 9})
        assert post.resolve("f") == 9
        assert post.resolve("g") == 4
        assert post.implies(ff("f", "g")) is False  # 9 != 4

    def test_state_records_rebased_with_known_old_value(self):
        ctx = EMPTY_CONTEXT.add(fv("f", 1), True).add(
            st("s", ast.Field("f"), ast.Value(True)), True
        )
        post = ctx.with_assignments({"f": 9})
        # Old record s[f]=True becomes s[1]=True.
        assert post.implies(st("s", ast.Value(1), ast.Value(True))) is True
        # And says nothing about s[9] (the new f).
        assert post.implies(st("s", ast.Field("f"), ast.Value(True))) is None

    def test_state_records_dropped_without_old_value(self):
        ctx = EMPTY_CONTEXT.add(st("s", ast.Field("f"), ast.Value(True)), True)
        post = ctx.with_assignments({"f": 9})
        assert post.implies(st("s", ast.Value(1), ast.Value(True))) is None

    def test_empty_assignment_returns_self(self):
        ctx = EMPTY_CONTEXT.add(fv("f", 1), True)
        assert ctx.with_assignments({}) is ctx


class TestExprsCompare:
    def test_equal_constants(self):
        verdict, _ = EMPTY_CONTEXT.exprs_compare((ast.Value(1),), (ast.Value(1),))
        assert verdict is True

    def test_unequal_constants(self):
        verdict, _ = EMPTY_CONTEXT.exprs_compare((ast.Value(1),), (ast.Value(2),))
        assert verdict is False

    def test_arity_mismatch(self):
        verdict, _ = EMPTY_CONTEXT.exprs_compare(
            (ast.Value(1),), (ast.Value(1), ast.Value(2))
        )
        assert verdict is False

    def test_same_field(self):
        verdict, _ = EMPTY_CONTEXT.exprs_compare(
            (ast.Field("srcip"),), (ast.Field("srcip"),)
        )
        assert verdict is True

    def test_unknown_pair_returned(self):
        verdict, detail = EMPTY_CONTEXT.exprs_compare(
            (ast.Field("srcip"),), (ast.Field("dstip"),)
        )
        assert verdict is None
        assert detail is not None

    def test_vector_decided_elementwise(self):
        verdict, _ = EMPTY_CONTEXT.exprs_compare(
            (ast.Field("a"), ast.Value(1)), (ast.Field("a"), ast.Value(2))
        )
        assert verdict is False
