"""Unit tests for xFDD composition (⊕, ⊖, ⊙, restrict, Appendix E)."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError, RaceConditionError
from repro.lang.packet import make_packet
from repro.lang.state import Store
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd, to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DROP, IDENTITY, Branch, Leaf, evaluate, make_branch
from repro.xfdd.order import trivial_order
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest


@pytest.fixture
def comp():
    return Composer(trivial_order())


def xf(source_policy, comp):
    return to_xfdd(source_policy, comp)


class TestNegate:
    def test_identity_drop(self, comp):
        assert comp.negate(IDENTITY) is DROP
        assert comp.negate(DROP) is IDENTITY

    def test_double_negation(self, comp):
        d = xf(ast.Test("srcport", 53), comp)
        assert comp.negate(comp.negate(d)) is d

    def test_rejects_action_leaves(self, comp):
        d = xf(ast.Mod("f", 1), comp)
        with pytest.raises(CompileError):
            comp.negate(d)


class TestUnion:
    def test_idempotent_on_predicates(self, comp):
        d = xf(ast.Test("srcport", 53), comp)
        assert comp.union(d, d) is d

    def test_or_semantics(self, comp):
        d = comp.union(
            xf(ast.Test("srcport", 53), comp), xf(ast.Test("dstport", 80), comp)
        )
        store = Store()
        _, out = evaluate(d, make_packet(srcport=53, dstport=1), store)
        assert out
        _, out = evaluate(d, make_packet(srcport=1, dstport=80), store)
        assert out
        _, out = evaluate(d, make_packet(srcport=1, dstport=1), store)
        assert not out

    def test_contradictory_tests_pruned(self, comp):
        # (srcport=53 ? id : drop) ⊕ (srcport=53 ? drop : (srcport=80 ? id : drop))
        a = xf(ast.Test("srcport", 53), comp)
        b = xf(ast.And(ast.Not(ast.Test("srcport", 53)), ast.Test("srcport", 80)), comp)
        d = comp.union(a, b)
        # No path should test srcport=80 under srcport=53 = true.
        def check(node, context):
            if isinstance(node, Leaf):
                return
            if node.test == FieldValueTest("srcport", 80):
                assert FieldValueTest("srcport", 53) not in context
            check(node.hi, context | {node.test})
            check(node.lo, context)
        check(d, set())

    def test_prefix_implication_pruned(self, comp):
        # Inside dstip=10.0.6.0/24, the test dstip=10.0.7.1 is dead.
        a = xf(ast.Test("dstip", IPPrefix("10.0.6.0/24")), comp)
        b = xf(
            ast.And(
                ast.Test("dstip", IPPrefix("10.0.6.0/24")),
                ast.Test("dstip", IPPrefix("10.0.7.1").network),
            ),
            comp,
        )
        d = comp.union(a, b)
        store = Store()
        _, out = evaluate(d, make_packet(dstip=IPPrefix("10.0.6.5").network), store)
        assert out


class TestSequence:
    def test_filter_then_mod(self, comp):
        d = comp.sequence(
            xf(ast.Test("srcport", 53), comp), xf(ast.Mod("outport", 6), comp)
        )
        _, out = evaluate(d, make_packet(srcport=53), Store())
        assert next(iter(out)).get("outport") == 6
        _, out = evaluate(d, make_packet(srcport=9), Store())
        assert not out

    def test_mod_then_test_resolved_statically(self, comp):
        # f <- 5 ; f = 5  must reduce to id (no test emitted).
        d = comp.sequence(xf(ast.Mod("f", 5), comp), xf(ast.Test("f", 5), comp))
        assert isinstance(d, Leaf)
        _, out = evaluate(d, make_packet(f=1), Store())
        assert next(iter(out)).get("f") == 5

    def test_mod_then_failing_test(self, comp):
        d = comp.sequence(xf(ast.Mod("f", 5), comp), xf(ast.Test("f", 6), comp))
        _, out = evaluate(d, make_packet(f=6), Store())
        assert not out  # f was overwritten to 5 before the test

    def test_state_write_then_matching_test(self, comp):
        # s[0] <- 1 ; s[0] = 1  -> test resolved true at compile time.
        p = ast.Seq(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateTest("s", ast.Value(0), ast.Value(1)),
        )
        d = xf(p, comp)
        assert isinstance(d, Leaf)

    def test_state_write_then_mismatched_test(self, comp):
        p = ast.Seq(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateTest("s", ast.Value(0), ast.Value(2)),
        )
        d = xf(p, comp)
        # Write survives, packet dropped.
        store, out = evaluate(d, make_packet(), Store())
        assert not out
        assert store.read("s", (0,)) == 1

    def test_write_different_index_keeps_test(self, comp):
        # s[1] <- 1 ; s[0] = 1: the write cannot satisfy the test.
        p = ast.Seq(
            ast.StateMod("s", ast.Value(1), ast.Value(1)),
            ast.StateTest("s", ast.Value(0), ast.Value(1)),
        )
        d = xf(p, comp)
        assert isinstance(d, Branch)
        assert isinstance(d.test, StateVarTest)

    def test_field_index_generates_field_field_test(self, comp):
        # s[srcip] <- 1 ; s[dstip] = 1: equality srcip=dstip is unknown,
        # so a field-field test must appear (§4.2's motivating case).
        p = ast.Seq(
            ast.StateMod("s", ast.Field("srcip"), ast.Value(1)),
            ast.StateTest("s", ast.Field("dstip"), ast.Value(1)),
        )
        d = xf(p, comp)
        assert isinstance(d, Branch)
        assert isinstance(d.test, FieldFieldTest)
        # Behavior: when srcip == dstip the test is satisfied by the write.
        store, out = evaluate(d, make_packet(srcip=7, dstip=7), Store())
        assert out
        # When different, the pre-state (False default) decides: dropped.
        store, out = evaluate(d, make_packet(srcip=7, dstip=8), Store())
        assert not out

    def test_increment_folds_into_test(self, comp):
        # c[0]++ ; c[0] = 3  ==  test c[0] = 2 before the increment.
        p = ast.Seq(
            ast.StateIncr("c", ast.Value(0)),
            ast.StateTest("c", ast.Value(0), ast.Value(3)),
        )
        d = xf(p, comp)
        assert isinstance(d, Branch)
        assert d.test == StateVarTest("c", ast.Value(0), ast.Value(2))

    def test_increment_nonconstant_test_rejected(self, comp):
        p = ast.Seq(
            ast.StateIncr("c", ast.Value(0)),
            ast.StateTest("c", ast.Value(0), ast.Field("srcport")),
        )
        with pytest.raises(CompileError):
            xf(p, comp)

    def test_write_then_increment_then_test(self, comp):
        # c[0] <- 0 ; c[0]++ ; c[0] = 1  -> statically true.
        p = ast.seq_all(
            [
                ast.StateMod("c", ast.Value(0), ast.Value(0)),
                ast.StateIncr("c", ast.Value(0)),
                ast.StateTest("c", ast.Value(0), ast.Value(1)),
            ]
        )
        d = xf(p, comp)
        assert isinstance(d, Leaf)
        store, out = evaluate(d, make_packet(), Store({"c": 0}))
        assert out and store.read("c", (0,)) == 1

    def test_drop_short_circuits(self, comp):
        d = comp.sequence(DROP, xf(ast.Mod("f", 1), comp))
        assert d is DROP


class TestRestrict:
    def test_leaf_positive(self, comp):
        t = FieldValueTest("f", 1)
        d = comp.restrict(IDENTITY, t, True)
        assert isinstance(d, Branch) and d.test == t
        assert d.hi is IDENTITY and d.lo is DROP

    def test_leaf_negative(self, comp):
        t = FieldValueTest("f", 1)
        d = comp.restrict(IDENTITY, t, False)
        assert d.hi is DROP and d.lo is IDENTITY

    def test_drop_unchanged(self, comp):
        assert comp.restrict(DROP, FieldValueTest("f", 1), True) is DROP

    def test_same_test_merges(self, comp):
        t = FieldValueTest("f", 1)
        inner = make_branch(t, IDENTITY, DROP)
        d = comp.restrict(inner, t, True)
        assert d.test == t and d.hi is IDENTITY and d.lo is DROP


class TestRaceDetection:
    def test_parallel_write_write(self, comp):
        p = ast.Parallel(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
        )
        with pytest.raises(RaceConditionError):
            xf(p, comp)

    def test_parallel_read_write(self, comp):
        p = ast.Parallel(
            ast.StateTest("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
        )
        with pytest.raises(RaceConditionError):
            xf(p, comp)

    def test_parallel_disjoint_ok(self, comp):
        p = ast.Parallel(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("t", ast.Value(0), ast.Value(2)),
        )
        d = xf(p, comp)
        store, _ = evaluate(d, make_packet(), Store())
        assert store.read("s", (0,)) == 1 and store.read("t", (0,)) == 2

    def test_if_branches_may_share_state(self, comp):
        # Explicit conditionals legally read and write the same variable.
        p = ast.If(
            ast.StateTest("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
            ast.StateMod("s", ast.Value(0), ast.Value(3)),
        )
        d = xf(p, comp)
        store, _ = evaluate(d, make_packet(), Store({"s": 0}))
        assert store.read("s", (0,)) == 3

    def test_guarded_parallel_writes_with_disjoint_guards_ok(self, comp):
        # Parallel writes guarded by contradictory field tests never
        # co-trigger; context pruning must accept this program.
        p = ast.Parallel(
            ast.If(ast.Test("srcport", 53),
                   ast.StateMod("s", ast.Value(0), ast.Value(1)), ast.Id()),
            ast.If(ast.Not(ast.Test("srcport", 53)),
                   ast.StateMod("s", ast.Value(0), ast.Value(2)), ast.Id()),
        )
        d = xf(p, comp)
        store, _ = evaluate(d, make_packet(srcport=53), Store())
        assert store.read("s", (0,)) == 1

    def test_figure1_style_read_then_write_ok(self, comp):
        # Fig. 1 line 8: test orphan then write orphan sequentially.
        p = ast.If(
            ast.StateTest("orphan", ast.Field("srcip"), ast.Value(True)),
            ast.StateMod("orphan", ast.Field("srcip"), ast.Value(False)),
            ast.Id(),
        )
        d = xf(p, comp)
        store = Store({"orphan": False})
        store.write("orphan", (1,), True)
        store2, _ = evaluate(d, make_packet(srcip=1), store)
        assert store2.read("orphan", (1,)) is False
