"""Unit tests for xFDD nodes, leaves, normalization, and evaluation."""

import pytest

from repro.lang import ast
from repro.lang.errors import RaceConditionError
from repro.lang.packet import make_packet
from repro.lang.state import Store
from repro.xfdd.actions import DROP_ACTION, FieldAssign, StateAssign, StateDelta
from repro.xfdd.diagram import (
    DROP,
    IDENTITY,
    Branch,
    Leaf,
    evaluate,
    is_predicate_diagram,
    iter_leaves,
    iter_paths,
    make_branch,
    make_leaf,
    size,
)
from repro.xfdd.tests import FieldValueTest, StateVarTest


def fv(field, value):
    return FieldValueTest(field, value)


class TestLeafNormalization:
    def test_identity_leaf(self):
        assert make_leaf([()]) is IDENTITY

    def test_empty_set_is_drop(self):
        assert make_leaf([]) is DROP

    def test_drop_only_sequence_is_drop(self):
        assert make_leaf([(DROP_ACTION,)]) is DROP

    def test_field_mods_before_drop_are_erased(self):
        leaf = make_leaf([(FieldAssign("f", 1), DROP_ACTION)])
        assert leaf is DROP

    def test_state_write_before_drop_is_kept(self):
        write = StateAssign("s", ast.Value(0), ast.Value(1))
        leaf = make_leaf([(write, DROP_ACTION)])
        assert leaf is not DROP
        assert leaf.written_state_vars() == frozenset(("s",))

    def test_redundant_drop_sequence_removed(self):
        leaf = make_leaf([(), (DROP_ACTION,)])
        assert leaf is IDENTITY

    def test_interning(self):
        a = make_leaf([(FieldAssign("f", 1),)])
        b = make_leaf([(FieldAssign("f", 1),)])
        assert a is b

    def test_parallel_write_write_race_rejected(self):
        w1 = (StateAssign("s", ast.Value(0), ast.Value(1)),)
        w2 = (StateAssign("s", ast.Value(0), ast.Value(2)),)
        with pytest.raises(RaceConditionError):
            make_leaf([w1, w2])

    def test_identical_parallel_writes_collapse(self):
        w = (StateAssign("s", ast.Value(0), ast.Value(1)),)
        leaf = make_leaf([w, tuple(w)])
        assert len(leaf.seqs) == 1

    def test_distinct_vars_no_race(self):
        w1 = (StateAssign("s", ast.Value(0), ast.Value(1)),)
        w2 = (StateAssign("t", ast.Value(0), ast.Value(2)),)
        leaf = make_leaf([w1, w2])
        assert len(leaf.seqs) == 2


class TestBranch:
    def test_collapses_equal_children(self):
        assert make_branch(fv("f", 1), IDENTITY, IDENTITY) is IDENTITY

    def test_interning(self):
        a = make_branch(fv("f", 1), IDENTITY, DROP)
        b = make_branch(fv("f", 1), IDENTITY, DROP)
        assert a is b

    def test_tested_state_vars(self):
        test = StateVarTest("s", ast.Field("srcip"), ast.Value(True))
        d = make_branch(test, IDENTITY, DROP)
        assert d.tested_state_vars() == frozenset(("s",))

    def test_size(self):
        d = make_branch(fv("f", 1), IDENTITY, DROP)
        assert size(d) == 3


class TestPredicateDiagram:
    def test_identity_and_drop_are_predicates(self):
        assert is_predicate_diagram(IDENTITY)
        assert is_predicate_diagram(DROP)

    def test_action_leaf_is_not(self):
        leaf = make_leaf([(FieldAssign("f", 1),)])
        assert not is_predicate_diagram(leaf)


class TestEvaluate:
    def test_branch_dispatch(self):
        d = make_branch(fv("srcport", 53), IDENTITY, DROP)
        store = Store()
        _, out = evaluate(d, make_packet(srcport=53), store)
        assert len(out) == 1
        _, out = evaluate(d, make_packet(srcport=80), store)
        assert not out

    def test_state_test_uses_store(self):
        test = StateVarTest("s", ast.Field("srcip"), ast.Value(True))
        d = make_branch(test, IDENTITY, DROP)
        store = Store({"s": False})
        _, out = evaluate(d, make_packet(srcip=1), store)
        assert not out
        store.write("s", (1,), True)
        _, out = evaluate(d, make_packet(srcip=1), store)
        assert out

    def test_leaf_parallel_sequences(self):
        leaf = make_leaf([(FieldAssign("outport", 1),), (FieldAssign("outport", 2),)])
        _, out = evaluate(leaf, make_packet(), Store())
        assert {p.get("outport") for p in out} == {1, 2}

    def test_leaf_state_effects_merge(self):
        leaf = make_leaf(
            [
                (StateAssign("s", ast.Value(0), ast.Value(1)),),
                (StateDelta("t", (ast.Value(0),), 1),),
            ]
        )
        store, out = evaluate(leaf, make_packet(), Store({"t": 0}))
        assert store.read("s", (0,)) == 1
        assert store.read("t", (0,)) == 1
        assert len(out) == 1  # identical output packets collapse in the set

    def test_input_store_unchanged(self):
        leaf = make_leaf([(StateAssign("s", ast.Value(0), ast.Value(1)),)])
        store = Store()
        evaluate(leaf, make_packet(), store)
        assert store.read("s", (0,)) is False

    def test_drop_sequence_keeps_state(self):
        leaf = make_leaf([(StateDelta("c", (ast.Value(0),), 1), DROP_ACTION)])
        store, out = evaluate(leaf, make_packet(), Store({"c": 0}))
        assert not out
        assert store.read("c", (0,)) == 1


class TestIterators:
    def test_iter_leaves_dedups(self):
        d = make_branch(fv("f", 1), IDENTITY, make_branch(fv("g", 2), IDENTITY, DROP))
        leaves = list(iter_leaves(d))
        assert IDENTITY in leaves and DROP in leaves
        assert len(leaves) == 2

    def test_iter_paths(self):
        d = make_branch(fv("f", 1), IDENTITY, DROP)
        paths = dict(iter_paths(d))
        assert len(paths) == 2
        assert ((fv("f", 1), True),) in paths
