"""Unit tests for IPv4 prefix arithmetic."""

import pytest

from repro.util.ipaddr import IPPrefix, int_to_ip, ip_to_int, parse_prefix


class TestIpToInt:
    def test_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_loopback(self):
        assert ip_to_int("127.0.0.1") == (127 << 24) + 1

    def test_broadcast(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    def test_round_trip(self):
        for text in ("10.0.6.0", "192.168.1.77", "8.8.8.8"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_rejects_bad_octet(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")

    def test_int_to_ip_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)

    def test_int_to_ip_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestIPPrefix:
    def test_parse_with_length(self):
        p = IPPrefix("10.0.6.0/24")
        assert p.length == 24
        assert p.network == ip_to_int("10.0.6.0")

    def test_parse_host(self):
        p = IPPrefix("10.0.6.1")
        assert p.length == 32
        assert p.is_host

    def test_network_is_masked(self):
        p = IPPrefix("10.0.6.77/24")
        assert p.network == ip_to_int("10.0.6.0")

    def test_contains_address(self):
        p = IPPrefix("10.0.6.0/24")
        assert p.contains(ip_to_int("10.0.6.200"))
        assert not p.contains(ip_to_int("10.0.7.1"))

    def test_contains_prefix(self):
        outer = IPPrefix("10.0.0.0/16")
        inner = IPPrefix("10.0.6.0/24")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_overlaps(self):
        a = IPPrefix("10.0.0.0/16")
        b = IPPrefix("10.0.6.0/24")
        c = IPPrefix("10.1.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_length_contains_everything(self):
        assert IPPrefix("0.0.0.0/0").contains(ip_to_int("255.1.2.3"))

    def test_host_helper(self):
        p = IPPrefix("10.0.3.0/25")
        assert p.host(1) == ip_to_int("10.0.3.1")
        with pytest.raises(ValueError):
            p.host(128)

    def test_equality_and_hash(self):
        assert IPPrefix("10.0.6.0/24") == IPPrefix("10.0.6.9/24")
        assert hash(IPPrefix("10.0.6.0/24")) == hash(IPPrefix("10.0.6.9/24"))
        assert IPPrefix("10.0.6.0/24") != IPPrefix("10.0.6.0/25")

    def test_ordering(self):
        assert IPPrefix("10.0.1.0/24") < IPPrefix("10.0.2.0/24")

    def test_str(self):
        assert str(IPPrefix("10.0.6.0/24")) == "10.0.6.0/24"
        assert str(IPPrefix("10.0.6.1")) == "10.0.6.1"

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            IPPrefix("10.0.0.0/33")

    def test_parse_prefix_cached(self):
        assert parse_prefix("10.0.6.0/24") is parse_prefix("10.0.6.0/24")
