"""Tests for the policy/xFDD lint pass (``repro.analysis.lint``).

The checked-in expectations file (``tests/data/lint_expected.json``) pins
the per-target diagnostic-code counts for every Table-3 app and example
module — CI runs the CLI over the same set, so a lint regression shows
up as a diff against this table.  Counts (not finding order or message
text) are asserted because message rendering may evolve; the codes are
the stable contract.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LintFinding,
    _all_targets,
    lint_diagram,
    lint_program,
    main,
    render_json,
    render_text,
    run_lint,
)
from repro.core.program import Program
from repro.lang import ast
from repro.xfdd.diagram import DROP, IDENTITY, make_branch
from repro.xfdd.tests import FieldValueTest

EXPECTED_PATH = Path(__file__).parent / "data" / "lint_expected.json"


def _code_counts(findings) -> dict:
    counts: dict = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return counts


# -- the checked-in expectations ----------------------------------------------


class TestExpectations:
    @pytest.fixture(scope="class")
    def results(self):
        return run_lint(_all_targets())

    def test_all_targets_match_expectations(self, results):
        expected = json.loads(EXPECTED_PATH.read_text())
        actual = {
            name: _code_counts(findings)
            for name, findings in sorted(results.items())
        }
        assert actual == expected

    def test_no_error_level_findings_anywhere(self, results):
        """Every shipped app and example lints error-free: the CLI's
        exit-1 path never fires on the repo's own programs."""
        errors = [
            (name, f.code)
            for name, findings in results.items()
            for f in findings
            if f.level == "error"
        ]
        assert errors == []

    def test_findings_deterministically_ordered(self, results):
        for findings in results.values():
            keys = [(f.code, f.message) for f in findings]
            assert keys == sorted(keys)


# -- seeded diagnostics -------------------------------------------------------


def _racy_program() -> Program:
    policy = ast.Seq(
        ast.Parallel(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
        ),
        ast.Mod("outport", 2),
    )
    return Program(policy, name="racy")


class TestSeededDiagnostics:
    def test_racy_parallel_is_an_error(self):
        findings = lint_program(_racy_program())
        codes = _code_counts(findings)
        assert codes.get("SNAP-E001", 0) >= 1
        assert all(
            f.level == "error"
            for f in findings
            if f.code == "SNAP-E001"
        )

    def test_unsat_parallel_arms_are_info(self):
        arm = lambda port, var: ast.If(
            ast.Test("srcport", port),
            ast.StateIncr(var, ast.Value(0)),
            ast.Drop(),
        )
        policy = ast.Seq(
            ast.Parallel(arm(1, "x"), arm(2, "y")), ast.Mod("outport", 2)
        )
        findings = lint_program(Program(policy, name="unsat-arms"))
        assert _code_counts(findings).get("SNAP-I401") == 1
        info = [f for f in findings if f.code == "SNAP-I401"]
        assert info[0].level == "info"

    def test_overlapping_arm_assumptions_not_flagged(self):
        arm = lambda port, var: ast.If(
            ast.Test("srcport", port),
            ast.StateIncr(var, ast.Value(0)),
            ast.Drop(),
        )
        policy = ast.Seq(
            ast.Parallel(arm(1, "x"), arm(1, "y")), ast.Mod("outport", 2)
        )
        findings = lint_program(Program(policy, name="sat-arms"))
        assert "SNAP-I401" not in _code_counts(findings)

    def test_unreachable_branch_in_hand_built_diagram(self):
        # fa=1 ? (fa=2 ? id : drop) : drop — inside the hi arm fa is
        # known to be 1, so the fa=2 test is forced false: its true arm
        # is dead.  compose() never builds this shape (restrict prunes
        # it), so the check needs a hand-made diagram.
        inner = make_branch(FieldValueTest("srcport", 2), IDENTITY, DROP)
        root = make_branch(FieldValueTest("srcport", 1), inner, DROP)
        findings = lint_diagram(root)
        assert _code_counts(findings) == {"SNAP-W201": 1}
        assert "unreachable" in findings[0].message

    def test_clean_diagram_has_no_findings(self):
        root = make_branch(FieldValueTest("srcport", 1), IDENTITY, DROP)
        assert lint_diagram(root) == []

    def test_written_never_tested_and_tested_never_written(self):
        policy = ast.Seq(
            ast.StateIncr("w-only", ast.Value(0)),
            ast.If(
                ast.StateTest("r-only", (ast.Value(0),), ast.Value(1)),
                ast.Drop(),
                ast.Mod("outport", 2),
            ),
        )
        codes = _code_counts(lint_program(Program(policy, name="rw")))
        assert codes.get("SNAP-W301") == 1
        assert codes.get("SNAP-W302") == 1


# -- CLI ----------------------------------------------------------------------


def _write_racy_example(tmp_path) -> Path:
    path = tmp_path / "racy_example.py"
    path.write_text(
        "from repro.core.program import Program\n"
        "from repro.lang import ast\n\n\n"
        "def programs():\n"
        "    policy = ast.Seq(\n"
        "        ast.Parallel(\n"
        "            ast.StateMod('s', ast.Value(0), ast.Value(1)),\n"
        "            ast.StateMod('s', ast.Value(0), ast.Value(2)),\n"
        "        ),\n"
        "        ast.Mod('outport', 2),\n"
        "    )\n"
        "    return [Program(policy, name='racy')]\n"
    )
    return path


class TestCli:
    def test_clean_app_exits_zero(self, capsys):
        assert main(["stateful-firewall"]) == 0
        out = capsys.readouterr().out
        assert "stateful-firewall" in out

    def test_error_finding_exits_one(self, tmp_path, capsys):
        path = _write_racy_example(tmp_path)
        assert main([str(path)]) == 1
        assert "SNAP-E001" in capsys.readouterr().out

    def test_warn_only_suppresses_exit_code(self, tmp_path, capsys):
        path = _write_racy_example(tmp_path)
        assert main([str(path), "--warn-only"]) == 0

    def test_json_format_structure(self, capsys):
        assert main(["stateful-firewall", "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"targets", "totals"}
        target = payload["targets"]["stateful-firewall"]
        assert set(target) >= {"findings", "codes", "error", "warning", "info"}
        assert target["error"] == 0

    def test_bare_example_stem_resolves(self, capsys, monkeypatch):
        monkeypatch.chdir(Path(__file__).parent.parent)
        assert main(["quickstart"]) == 0
        assert "SNAP-W" in capsys.readouterr().out

    def test_unknown_target_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["no-such-app"])

    def test_no_targets_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


# -- renderers ----------------------------------------------------------------


class TestRenderers:
    def test_text_render_counts(self):
        findings = {
            "t": [
                LintFinding("SNAP-W301", "warning", "w"),
                LintFinding("SNAP-I401", "info", "i"),
            ],
            "clean": [],
        }
        text = render_text(findings)
        assert "clean: clean" in text
        assert "0 error(s), 1 warning(s), 1 info" in text

    def test_json_render_totals(self):
        findings = {"t": [LintFinding("SNAP-E001", "error", "e")]}
        payload = json.loads(render_json(findings))
        assert payload["totals"]["error"] == 1
        assert payload["targets"]["t"]["codes"] == {"SNAP-E001": 1}
