"""Tests for the MILP layer: modeling, placement, TE, decomposition."""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.lang import ast
from repro.lang.errors import PlacementError
from repro.milp.heuristic import greedy_placement, greedy_solution
from repro.milp.modeling import Model
from repro.milp.placement import PlacementInputs, PlacementModel, build_placement_model
from repro.milp.results import decompose_flow, extract_paths, validate_solution
from repro.milp.te import build_te_model, solve_te
from repro.topology.campus import campus_topology
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd


class TestModel:
    def test_simple_lp(self):
        model = Model("lp")
        x = model.add_var("x", 0, 10)
        y = model.add_var("y", 0, 10)
        model.add_ge([(x, 1.0), (y, 1.0)], 5.0)
        model.minimize([(x, 2.0), (y, 3.0)])
        solution = model.solve()
        assert solution[x] == pytest.approx(5.0)
        assert solution[y] == pytest.approx(0.0)
        assert solution.objective == pytest.approx(10.0)

    def test_binary_variable(self):
        model = Model("ip")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_eq([(x, 1.0), (y, 1.0)], 1.0)
        model.minimize([(x, 3.0), (y, 1.0)])
        solution = model.solve()
        assert solution[x] == pytest.approx(0.0)
        assert solution[y] == pytest.approx(1.0)

    def test_infeasible_raises(self):
        model = Model("bad")
        x = model.add_var("x", 0, 1)
        model.add_ge([(x, 1.0)], 5.0)
        model.minimize([(x, 1.0)])
        with pytest.raises(PlacementError):
            model.solve()

    def test_equality_constraint(self):
        model = Model("eq")
        x = model.add_var("x", 0, 10)
        model.add_eq([(x, 2.0)], 6.0)
        model.minimize([(x, 1.0)])
        assert model.solve()[x] == pytest.approx(3.0)


def line_topology(num=3, capacity=100.0):
    """port1 - s0 - s1 - ... - s(n-1) - port2."""
    topo = Topology("line")
    for i in range(num):
        topo.add_switch(f"s{i}")
    for i in range(num - 1):
        topo.add_link(f"s{i}", f"s{i+1}", capacity)
    topo.attach_port(1, "s0")
    topo.attach_port(2, f"s{num-1}")
    topo.validate()
    return topo


def build_case(policy, topo, ports=(1, 2), demands=None):
    deps = analyze_dependencies(policy)
    xfdd = build_xfdd(policy, state_rank=deps.state_rank)
    mapping = packet_state_mapping(xfdd, list(ports), list(ports))
    demands = demands or uniform_traffic_matrix(ports, 10.0)
    return deps, mapping, demands


class TestPlacement:
    def test_single_state_on_line(self):
        policy = ast.If(
            ast.StateTest("s", ast.Field("srcip"), ast.Value(True)),
            ast.Mod("outport", 2),
            ast.Seq(
                ast.StateMod("s", ast.Field("srcip"), ast.Value(True)),
                ast.Mod("outport", 2),
            ),
        )
        topo = line_topology(3)
        deps, mapping, demands = build_case(policy, topo)
        model = build_placement_model(topo, demands, mapping, deps)
        solution = model.solve()
        assert solution.placement["s"] in ("s0", "s1", "s2")
        routing = extract_paths(solution, topo, mapping, deps)
        validate_solution(routing, topo, mapping, deps)

    def test_ordering_respected(self):
        # read a then write b: a's switch must precede b's on the path.
        policy = ast.Seq(
            ast.If(
                ast.StateTest("a", ast.Value(0), ast.Value(True)),
                ast.StateMod("b", ast.Value(0), ast.Value(True)),
                ast.StateMod("b", ast.Value(0), ast.Value(False)),
            ),
            ast.Mod("outport", 2),
        )
        topo = line_topology(4)
        deps, mapping, demands = build_case(policy, topo)
        assert ("a", "b") in deps.dep
        model = build_placement_model(topo, demands, mapping, deps)
        solution = model.solve()
        routing = extract_paths(solution, topo, mapping, deps)
        validate_solution(routing, topo, mapping, deps)
        # Explicit: position of a's switch <= b's switch on the 1->2 path.
        path = list(routing.path(1, 2))
        assert path.index(solution.placement["a"]) <= path.index(
            solution.placement["b"]
        )

    def test_tied_variables_colocated(self):
        policy = ast.Seq(
            ast.Atomic(
                ast.Seq(
                    ast.StateMod("x", ast.Value(0), ast.Value(1)),
                    ast.StateMod("y", ast.Value(0), ast.Value(2)),
                )
            ),
            ast.Mod("outport", 2),
        )
        topo = line_topology(4)
        deps, mapping, demands = build_case(policy, topo)
        assert frozenset(("x", "y")) in deps.tied
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        assert solution.placement["x"] == solution.placement["y"]

    def test_campus_places_on_d4(self):
        """§2.2: the MILP places all DNS-tunnel state on D4."""
        from repro.apps.chimera import dns_tunnel_detect

        subnets = default_subnets(6)
        program = ast.Seq(
            port_assumption(subnets),
            ast.Seq(dns_tunnel_detect().policy, assign_egress(subnets)),
        )
        topo = campus_topology()
        deps, mapping, demands = build_case(program, topo, ports=range(1, 7))
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        assert solution.placement == {
            "orphan": "D4",
            "susp-client": "D4",
            "blacklist": "D4",
        }

    def test_capacity_constraint_respected(self):
        policy = ast.Mod("outport", 2)
        topo = line_topology(3, capacity=5.0)
        deps, mapping, _ = build_case(policy, topo)
        demands = uniform_traffic_matrix((1, 2), 10.0)  # exceeds capacity
        model = build_placement_model(topo, demands, mapping, deps)
        with pytest.raises(PlacementError):
            model.solve()

    def test_stateful_switch_restriction(self):
        policy = ast.Seq(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.Mod("outport", 2),
        )
        topo = line_topology(3)
        deps, mapping, demands = build_case(policy, topo)
        inputs = PlacementInputs(
            topo, demands, mapping, deps, stateful_switches=("s1",)
        )
        solution = PlacementModel(inputs).solve()
        assert solution.placement["s"] == "s1"


class TestTE:
    def _compiled_case(self):
        policy = ast.Seq(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.Mod("outport", 2),
        )
        topo = line_topology(3)
        deps, mapping, demands = build_case(policy, topo)
        st = build_placement_model(topo, demands, mapping, deps).solve()
        return policy, topo, deps, mapping, demands, st

    def test_te_respects_fixed_placement(self):
        _, topo, deps, mapping, demands, st = self._compiled_case()
        te = solve_te(topo, demands, mapping, deps, st.placement)
        assert te.placement == st.placement
        routing = extract_paths(te, topo, mapping, deps)
        validate_solution(routing, topo, mapping, deps)

    def test_te_is_pure_lp(self):
        _, topo, deps, mapping, demands, st = self._compiled_case()
        model = build_te_model(topo, demands, mapping, deps, st.placement)
        assert model.model.num_integer_vars == 0

    def test_te_missing_placement_rejected(self):
        _, topo, deps, mapping, demands, st = self._compiled_case()
        with pytest.raises(PlacementError):
            build_te_model(topo, demands, mapping, deps, {})

    def test_te_reroutes_around_failure(self):
        # Square: two paths between ports; failing one must shift traffic.
        topo = Topology("square")
        for name in ("a", "b", "c", "d"):
            topo.add_switch(name)
        for x, y in (("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")):
            topo.add_link(x, y, 100.0)
        topo.attach_port(1, "a")
        topo.attach_port(2, "d")
        policy = ast.Mod("outport", 2)
        deps, mapping, demands = build_case(policy, topo)
        st = build_placement_model(topo, demands, mapping, deps).solve()
        degraded = topo.without_link("a", "b")
        te = solve_te(degraded, demands, mapping, deps, st.placement)
        routing = extract_paths(te, degraded, mapping, deps)
        assert routing.path(1, 2) == ("a", "c", "d")


class TestDecomposition:
    def test_single_path(self):
        fractions = {("u", "a"): 1.0, ("a", "v"): 1.0}
        paths = decompose_flow(fractions, "u", "v")
        assert paths == [(("u", "a", "v"), 1.0)]

    def test_split_paths(self):
        fractions = {
            ("u", "a"): 0.7,
            ("a", "v"): 0.7,
            ("u", "b"): 0.3,
            ("b", "v"): 0.3,
        }
        paths = decompose_flow(fractions, "u", "v")
        assert paths[0] == (("u", "a", "v"), pytest.approx(0.7))
        assert paths[1] == (("u", "b", "v"), pytest.approx(0.3))

    def test_empty(self):
        assert decompose_flow({}, "u", "v") == []


class TestKnownLimits:
    def test_globally_needed_state_unplaceable_with_stub_pairs(self):
        """A real property of the Table 2 formulation: when two flows
        connect stub switches hanging off different cores, their only
        simple paths share no switch, so a state variable needed by *both*
        has no feasible single-copy placement (the paper's answer is
        sharding, §7.3 / Appendix C)."""
        from repro.analysis.dependency import DependencyInfo
        from repro.analysis.packet_state import PacketStateMapping
        import networkx as nx

        topo = Topology("stub-pairs")
        for name in ("h1", "h2", "a", "b", "c", "d"):
            topo.add_switch(name)
        # Two hubs h1, h2 joined; stubs a, b on h1; stubs c, d on h2.
        topo.add_link("h1", "h2", 100.0)
        topo.add_link("a", "h1", 100.0)
        topo.add_link("b", "h1", 100.0)
        topo.add_link("c", "h2", 100.0)
        topo.add_link("d", "h2", 100.0)
        topo.attach_port(1, "a")
        topo.attach_port(2, "b")
        topo.attach_port(3, "c")
        topo.attach_port(4, "d")
        topo.validate()
        graph = nx.DiGraph()
        graph.add_node("s")
        deps = DependencyInfo(graph)
        # Flow (1,2) only passes a-h1-b; flow (3,4) only c-h2-d: no common
        # switch, so a shared variable s is unplaceable.
        mapping = PacketStateMapping(
            {(1, 2): frozenset(["s"]), (3, 4): frozenset(["s"])}, range(1, 5),
            range(1, 5),
        )
        demands = {(1, 2): 1.0, (3, 4): 1.0}
        model = build_placement_model(topo, demands, mapping, deps)
        with pytest.raises(PlacementError):
            model.solve()
        # Each flow alone is fine.
        single = PacketStateMapping({(1, 2): frozenset(["s"])}, range(1, 5),
                                    range(1, 5))
        solution = build_placement_model(
            topo, {(1, 2): 1.0}, single, deps
        ).solve()
        assert solution.placement["s"] in ("a", "h1", "b")


class TestHeuristic:
    def test_greedy_matches_milp_on_campus(self):
        from repro.apps.chimera import dns_tunnel_detect

        subnets = default_subnets(6)
        program = ast.Seq(
            port_assumption(subnets),
            ast.Seq(dns_tunnel_detect().policy, assign_egress(subnets)),
        )
        topo = campus_topology()
        deps, mapping, demands = build_case(program, topo, ports=range(1, 7))
        placement = greedy_placement(topo, demands, mapping, deps)
        # D4 is optimal and also the greedy choice here.
        assert placement["orphan"] == "D4"

    def test_greedy_solution_paths_valid(self):
        policy = ast.Seq(
            ast.If(
                ast.StateTest("a", ast.Value(0), ast.Value(True)),
                ast.StateMod("b", ast.Value(0), ast.Value(True)),
                ast.StateMod("b", ast.Value(0), ast.Value(False)),
            ),
            ast.Mod("outport", 2),
        )
        topo = line_topology(4)
        deps, mapping, demands = build_case(policy, topo)
        solution, routing = greedy_solution(topo, demands, mapping, deps)
        validate_solution(routing, topo, mapping, deps)
