"""Tests for the data plane: splitting, NetASM, rules, and the simulator."""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.dataplane.header import DONE_TAG, ROOT_TAG, SNAP_NODE
from repro.dataplane.netasm import compile_switch
from repro.dataplane.network import Network
from repro.dataplane.rules import build_rule_tables
from repro.dataplane.split import NodeIndex, split_summary
from repro.lang import ast
from repro.lang.errors import DataPlaneError
from repro.lang.packet import make_packet
from repro.milp.placement import build_placement_model
from repro.milp.results import RoutingPaths, extract_paths
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd


def line_topology(num=3, capacity=100.0):
    topo = Topology("line")
    for i in range(num):
        topo.add_switch(f"s{i}")
    for i in range(num - 1):
        topo.add_link(f"s{i}", f"s{i+1}", capacity)
    topo.attach_port(1, "s0")
    topo.attach_port(2, f"s{num-1}")
    topo.validate()
    return topo


def compile_case(policy, topo, ports=(1, 2)):
    deps = analyze_dependencies(policy)
    xfdd = build_xfdd(policy, state_rank=deps.state_rank)
    mapping = packet_state_mapping(xfdd, list(ports), list(ports))
    demands = uniform_traffic_matrix(ports, 10.0)
    solution = build_placement_model(topo, demands, mapping, deps).solve()
    routing = extract_paths(solution, topo, mapping, deps)
    return xfdd, deps, mapping, demands, solution, routing


SIMPLE = ast.Seq(
    ast.If(
        ast.StateTest("s", ast.Field("srcip"), ast.Value(True)),
        ast.Id(),
        ast.StateMod("s", ast.Field("srcip"), ast.Value(True)),
    ),
    ast.Mod("outport", 2),
)


class TestNodeIndex:
    def test_tags_unique_and_stable(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        index2 = NodeIndex(xfdd)
        assert len(index) == len(index2)
        assert ROOT_TAG not in index._by_id  # reserved

    def test_lookup_roundtrip(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        for tag in list(index._by_id):
            assert index.lookup(tag) is not None

    def test_unknown_tag_raises(self):
        index = NodeIndex(build_xfdd(SIMPLE))
        with pytest.raises(DataPlaneError):
            index.lookup(99999)


class TestSplitSummary:
    def test_state_nodes_assigned_to_owner(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        owners = split_summary(xfdd, index, {"s": "s1"})
        assert "s1" in owners and owners["s1"]


class TestCompileSwitch:
    def test_port_switch_has_root_entry(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        program = compile_switch("s0", xfdd, index, {"s": "s1"}, {"s": False}, True)
        assert program.can_process(ROOT_TAG)

    def test_non_port_switch_without_state_has_no_entries(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        program = compile_switch("s2", xfdd, index, {"s": "s1"}, {"s": False}, False)
        assert not program.entries

    def test_pause_at_remote_state(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        ingress = compile_switch("s0", xfdd, index, {"s": "s1"}, {"s": False}, True)
        pkt = make_packet(srcip=1).modify(SNAP_NODE, ROOT_TAG)
        outcomes = ingress.process(pkt)
        assert len(outcomes) == 1
        assert outcomes[0].kind == "pause"
        assert outcomes[0].var == "s"
        assert outcomes[0].packet.get(SNAP_NODE) != ROOT_TAG

    def test_owner_resumes_and_emits(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        ingress = compile_switch("s0", xfdd, index, {"s": "s1"}, {"s": False}, True)
        owner = compile_switch("s1", xfdd, index, {"s": "s1"}, {"s": False}, False)
        pkt = make_packet(srcip=1).modify(SNAP_NODE, ROOT_TAG)
        paused = ingress.process(pkt)[0].packet
        outcomes = owner.process(paused)
        assert [o.kind for o in outcomes] == ["emit"]
        assert outcomes[0].packet.get("outport") == 2
        assert owner.store.read("s", (1,)) is True

    def test_local_state_processed_at_ingress(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        ingress = compile_switch("s0", xfdd, index, {"s": "s0"}, {"s": False}, True)
        pkt = make_packet(srcip=1).modify(SNAP_NODE, ROOT_TAG)
        outcomes = ingress.process(pkt)
        assert [o.kind for o in outcomes] == ["emit"]

    def test_to_text_listing(self):
        xfdd = build_xfdd(SIMPLE)
        index = NodeIndex(xfdd)
        program = compile_switch("s0", xfdd, index, {"s": "s1"}, {"s": False}, True)
        text = program.to_text()
        assert "BRANCH" in text or "PAUSE" in text


class TestRuleTables:
    def test_next_hops(self):
        routing = RoutingPaths({(1, 2): ("s0", "s1", "s2")}, {})
        tables = build_rule_tables(routing)
        assert tables.next_hop("s0", 1, 2) == "s1"
        assert tables.next_hop("s1", 1, 2) == "s2"
        assert tables.next_hop("s2", 1, 2) is None

    def test_rule_counts(self):
        routing = RoutingPaths(
            {(1, 2): ("s0", "s1", "s2"), (2, 1): ("s2", "s1", "s0")}, {}
        )
        tables = build_rule_tables(routing)
        assert tables.total_rules() == 4
        assert tables.rule_counts()["s1"] == 2

    def test_rules_for_repr(self):
        routing = RoutingPaths({(1, 2): ("s0", "s1")}, {})
        rules = build_rule_tables(routing).rules_for("s0")
        assert "snap.inport=1" in repr(rules[0])


class TestNetworkSequential:
    def _network(self, policy=SIMPLE, num=3):
        topo = line_topology(num)
        xfdd, deps, mapping, demands, solution, routing = compile_case(policy, topo)
        return Network(
            topo, xfdd, solution.placement, routing, mapping, demands, {"s": False}
        )

    def test_first_packet_travels_and_writes(self):
        net = self._network()
        records = net.inject(make_packet(srcip=1), 1)
        assert len(records) == 1
        assert records[0].egress == 2
        store = net.global_store()
        assert store.read("s", (1,)) is True

    def test_second_packet_sees_state(self):
        net = self._network()
        net.inject(make_packet(srcip=1), 1)
        records = net.inject(make_packet(srcip=1), 1)
        assert records[0].egress == 2

    def test_snap_header_stripped_on_delivery(self):
        net = self._network()
        record = net.inject(make_packet(srcip=1), 1)[0]
        assert record.packet.get(SNAP_NODE) is None

    def test_link_counters(self):
        net = self._network()
        net.inject(make_packet(srcip=1), 1)
        assert net.link_packets.get(("s0", "s1")) == 1

    def test_dropping_policy(self):
        policy = ast.Seq(
            ast.StateIncr("s", ast.Field("srcip")),
            ast.Drop(),
        )
        topo = line_topology(3)
        xfdd, deps, mapping, demands, solution, routing = compile_case(policy, topo)
        net = Network(
            topo, xfdd, solution.placement, routing, mapping, demands, {"s": 0}
        )
        records = net.inject(make_packet(srcip=5), 1)
        assert all(r.egress is None for r in records)
        assert net.global_store().read("s", (5,)) == 1

    def test_instruction_counts_reported(self):
        net = self._network()
        counts = net.instruction_counts()
        assert set(counts) == {"s0", "s1", "s2"}


class TestNetworkConcurrent:
    def test_interleaved_injection_completes(self):
        topo = line_topology(3)
        xfdd, deps, mapping, demands, solution, routing = compile_case(SIMPLE, topo)
        net = Network(
            topo, xfdd, solution.placement, routing, mapping, demands, {"s": False}
        )
        batch = [(make_packet(srcip=i), 1) for i in range(5)]
        records = net.inject_concurrent(batch)
        assert len(records) == 5
        assert all(r.egress == 2 for r in records)

    def test_scheduler_sees_live_queue_without_copying(self):
        """The pending queue is handed to the scheduler directly; copying
        it to a fresh list per hop made adversarial soaks quadratic."""
        from collections import deque

        topo = line_topology(3)
        xfdd, deps, mapping, demands, solution, routing = compile_case(SIMPLE, topo)
        net = Network(
            topo, xfdd, solution.placement, routing, mapping, demands, {"s": False}
        )
        seen = []

        def scheduler(pending):
            seen.append(pending)
            return len(pending) - 1  # adversarial: always the newest hop

        batch = [(make_packet(srcip=i), 1) for i in range(4)]
        records = net.inject_concurrent(batch, scheduler=scheduler)
        assert len(records) == 4
        assert all(type(pending) is deque for pending in seen)
        assert all(pending is seen[0] for pending in seen)


def star_topology():
    """Three ports on three edge switches around one core."""
    topo = Topology("star")
    for name in ("s1", "s2", "s3", "c"):
        topo.add_switch(name)
    for edge in ("s1", "s2", "s3"):
        topo.add_link(edge, "c", 100.0)
    topo.attach_port(1, "s1")
    topo.attach_port(2, "s2")
    topo.attach_port(3, "s3")
    topo.validate()
    return topo


class TestMulticastDeliveryOrder:
    """Sequential mode processes a switch's packet copies in the order the
    switch emitted them (depth-first), so multicast delivery records come
    out in the xFDD leaf's deterministic emission order — previously the
    right-popping queue ran them in *reverse* emission order."""

    MULTICAST = ast.Parallel(ast.Mod("outport", 2), ast.Mod("outport", 3))

    def _network(self):
        topo = star_topology()
        xfdd, deps, mapping, demands, solution, routing = compile_case(
            self.MULTICAST, topo, ports=(1, 2, 3)
        )
        return Network(
            topo, xfdd, solution.placement, routing, mapping, demands, {}
        )

    def test_records_in_emission_order_and_match_eval(self):
        from repro.lang.semantics import eval_policy
        from repro.lang.state import Store

        net = self._network()
        packet = make_packet(srcip=7)
        records = net.inject(packet, 1)
        # Pinned: copies delivered in the leaf's emission order (outport 2
        # first), not reversed.
        assert [r.egress for r in records] == [2, 3]
        _, expected, _ = eval_policy(
            self.MULTICAST, Store({}), packet.modify("inport", 1)
        )
        delivered = frozenset(
            r.packet.without("inport") for r in records if r.egress is not None
        )
        assert delivered == frozenset(p.without("inport") for p in expected)

    def test_emission_order_stable_across_injections(self):
        net = self._network()
        for i in range(4):
            records = net.inject(make_packet(srcip=i), 1)
            assert [r.egress for r in records] == [2, 3]
