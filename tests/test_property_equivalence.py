"""Property tests: the xFDD compiler preserves the Appendix A semantics.

For random policies, packets, and stores, translating to an xFDD and
evaluating must give exactly the same output packets and final state as
the reference ``eval``.  This is the reproduction's central soundness
property (the paper's compiler-correctness claim).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.lang.errors import (
    CompileError,
    InconsistentStateError,
    RaceConditionError,
)
from repro.lang.semantics import eval_policy
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import evaluate

from tests.strategies import packets, policies, registry, stores

COMMON_SETTINGS = settings(
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@COMMON_SETTINGS
@given(policy=policies(), packet=packets(), store=stores())
def test_xfdd_matches_eval(policy, packet, store):
    try:
        xfdd = build_xfdd(policy, registry=registry())
    except (RaceConditionError, CompileError):
        assume(False)
        return
    try:
        ref_store, ref_out, _ = eval_policy(policy, store, packet)
    except InconsistentStateError:
        # Undefined by the semantics (e.g. identical parallel writes); the
        # compiled form may legally implement any behaviour.
        assume(False)
        return
    got_store, got_out = evaluate(xfdd, packet, store)
    assert got_out == ref_out
    assert got_store == ref_store


@COMMON_SETTINGS
@given(
    policy=policies(),
    packet_list=st.lists(packets(), min_size=1, max_size=4),
    store=stores(),
)
def test_xfdd_matches_eval_over_sequences(policy, packet_list, store):
    """State threads identically through a packet sequence."""
    try:
        xfdd = build_xfdd(policy, registry=registry())
    except (RaceConditionError, CompileError):
        assume(False)
        return
    ref_store = store
    got_store = store
    for packet in packet_list:
        try:
            ref_store, ref_out, _ = eval_policy(policy, ref_store, packet)
        except InconsistentStateError:
            assume(False)
            return
        got_store, got_out = evaluate(xfdd, packet, got_store)
        assert got_out == ref_out
        assert got_store == ref_store


@COMMON_SETTINGS
@given(policy=policies(max_leaves=4), packet=packets(), store=stores())
def test_xfdd_idempotent_translation(policy, packet, store):
    """Translating twice yields the identical (interned) diagram."""
    try:
        d1 = build_xfdd(policy, registry=registry())
        d2 = build_xfdd(policy, registry=registry())
    except (RaceConditionError, CompileError):
        assume(False)
        return
    assert d1 is d2
