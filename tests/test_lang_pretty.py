"""Unit tests for the pretty-printer (concrete-syntax output)."""

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix


class TestAtoms:
    def test_id_drop(self):
        assert pretty(ast.Id()) == "id"
        assert pretty(ast.Drop()) == "drop"

    def test_test(self):
        assert pretty(ast.Test("srcport", 53)) == "srcport = 53"

    def test_prefix_value(self):
        pred = ast.Test("dstip", IPPrefix("10.0.6.0/24"))
        assert pretty(pred) == "dstip = 10.0.6.0/24"

    def test_bool_value(self):
        assert pretty(ast.Mod("f", True)) == "f <- True"

    def test_symbol_value(self):
        assert pretty(ast.Test("tcp.flags", Symbol("SYN"))) == "tcp.flags = SYN"

    def test_string_value_quoted(self):
        assert pretty(ast.Test("content", 'a"b')) == 'content = "a\\"b"'

    def test_state_ops(self):
        index = ast.Vector([ast.Field("srcip"), ast.Field("dstip")])
        assert pretty(ast.StateMod("s", index, True)) == "s[srcip][dstip] <- True"
        assert pretty(ast.StateIncr("c", ast.Field("srcip"))) == "c[srcip]++"
        assert pretty(ast.StateDecr("c", ast.Field("srcip"))) == "c[srcip]--"


class TestPrecedence:
    def test_seq_inside_parallel(self):
        policy = ast.Parallel(ast.Seq(ast.Id(), ast.Drop()), ast.Id())
        assert parse(pretty(policy)) == policy

    def test_parallel_inside_seq_parenthesized(self):
        policy = ast.Seq(ast.Parallel(ast.Id(), ast.Drop()), ast.Id())
        text = pretty(policy)
        assert "(" in text
        assert parse(text) == policy

    def test_nested_negation(self):
        pred = ast.Not(ast.Not(ast.Test("srcport", 1)))
        assert parse(pretty(pred)) == pred

    def test_or_of_ands(self):
        pred = ast.Or(
            ast.And(ast.Test("srcport", 1), ast.Test("dstport", 2)),
            ast.Test("srcport", 3),
        )
        assert parse(pretty(pred)) == pred

    def test_and_of_ors_parenthesized(self):
        pred = ast.And(
            ast.Or(ast.Test("srcport", 1), ast.Test("srcport", 2)),
            ast.Test("dstport", 3),
        )
        text = pretty(pred)
        assert parse(text) == pred

    def test_if_branches(self):
        policy = ast.If(
            ast.Test("srcport", 53),
            ast.Seq(ast.Mod("outport", 1), ast.Mod("outport", 2)),
            ast.Drop(),
        )
        assert parse(pretty(policy)) == policy

    def test_atomic(self):
        policy = ast.Atomic(ast.Seq(ast.Id(), ast.Drop()))
        text = pretty(policy)
        assert text.startswith("atomic(")
        assert parse(text) == policy

    def test_repr_uses_pretty(self):
        assert "srcport = 53" in repr(ast.Test("srcport", 53))
