"""Hypothesis strategies for SNAP policies, packets, and stores.

The generated universe is deliberately small (3 fields, values 0..3, two
state variables) so that random policies collide on fields and state often
enough to exercise the interesting composition cases: field-field tests,
increment folding, context pruning, and race detection.

Values are plain ints (no bools) to avoid Python's ``True == 1`` aliasing
confusing store-equality checks.
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.lang import ast
from repro.lang.fields import FieldRegistry
from repro.lang.packet import Packet
from repro.lang.state import Store

FIELDS = ("fa", "fb", "fc")
VALUES = (0, 1, 2, 3)
STATE_VARS = ("sA", "sB")


def registry() -> FieldRegistry:
    return FieldRegistry(extra_fields=FIELDS)


def scalar_exprs():
    return st.one_of(
        st.sampled_from(VALUES).map(ast.Value),
        st.sampled_from(FIELDS).map(ast.Field),
    )


def index_exprs():
    return st.one_of(
        scalar_exprs(),
        st.tuples(scalar_exprs(), scalar_exprs()).map(lambda t: ast.Vector(list(t))),
    )


def field_tests():
    return st.builds(ast.Test, st.sampled_from(FIELDS), st.sampled_from(VALUES))


def state_tests():
    return st.builds(
        ast.StateTest,
        st.sampled_from(STATE_VARS),
        index_exprs(),
        scalar_exprs(),
    )


def predicates(max_depth: int = 3):
    base = st.one_of(
        st.just(ast.Id()),
        st.just(ast.Drop()),
        field_tests(),
        state_tests(),
    )

    def extend(children):
        return st.one_of(
            st.builds(ast.Not, children),
            st.builds(ast.And, children, children),
            st.builds(ast.Or, children, children),
        )

    return st.recursive(base, extend, max_leaves=max_depth * 2)


def modifications():
    return st.one_of(
        st.builds(ast.Mod, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
        st.builds(
            ast.StateMod,
            st.sampled_from(STATE_VARS),
            index_exprs(),
            scalar_exprs(),
        ),
        st.builds(ast.StateIncr, st.sampled_from(STATE_VARS), index_exprs()),
        st.builds(ast.StateDecr, st.sampled_from(STATE_VARS), index_exprs()),
    )


def policies(max_leaves: int = 6):
    base = st.one_of(predicates(2), modifications())

    def extend(children):
        return st.one_of(
            st.builds(ast.Seq, children, children),
            st.builds(ast.Parallel, children, children),
            st.builds(ast.If, predicates(2), children, children),
            st.builds(ast.Atomic, children),
        )

    return st.recursive(base, extend, max_leaves=max_leaves)


def packets():
    return st.fixed_dictionaries(
        {field: st.sampled_from(VALUES) for field in FIELDS}
    ).map(Packet)


def stores():
    """A store with small random contents for both state variables."""

    def build(entries):
        store = Store({var: 0 for var in STATE_VARS})
        for var, key, value in entries:
            store.write(var, key, value)
        return store

    entry = st.tuples(
        st.sampled_from(STATE_VARS),
        st.one_of(
            st.tuples(st.sampled_from(VALUES)),
            st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
        ),
        st.sampled_from(VALUES),
    )
    return st.lists(entry, max_size=4).map(build)
