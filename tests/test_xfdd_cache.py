"""The apply-cache and factory scoping of the composition engine.

Two guarantees:

* caching is *invisible*: a cached Composer and a cache-disabled reference
  Composer sharing one DiagramFactory produce the **same interned node**
  (``is``-identity) for every generated policy;
* hash-consing sessions are *isolated*: one compilation cannot grow (or
  alias into) the intern table of another.
"""

from hypothesis import HealthCheck, given, settings

from repro.apps.chimera import dns_tunnel_detect
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.lang import ast
from repro.lang.errors import CompileError, RaceConditionError
from repro.topology.campus import campus_topology
from repro.xfdd.actions import FieldAssign
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DROP, IDENTITY, DiagramFactory, default_factory
from repro.xfdd.order import TestOrder as XFDDTestOrder

from tests.strategies import policies, registry

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _order():
    return XFDDTestOrder(registry(), {"sA": 0, "sB": 1})


def _campus_program():
    subnets = default_subnets(6)
    app = dns_tunnel_detect()
    return Program(
        ast.Seq(app.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        name=f"{app.name}+egress",
    )


class TestCacheEquivalence:
    @SETTINGS
    @given(policies())
    def test_cached_composition_is_node_identical(self, policy):
        """Cached and reference composition agree to the node (``is``)."""
        factory = DiagramFactory()
        cached = Composer(_order(), factory=factory, use_cache=True)
        reference = Composer(_order(), factory=factory, use_cache=False)
        try:
            d_ref = to_xfdd(policy, reference)
        except (RaceConditionError, CompileError):
            return
        d_cached = to_xfdd(policy, cached)
        assert d_cached is d_ref

    @SETTINGS
    @given(policies(), policies())
    def test_cached_union_and_sequence_identical(self, p, q):
        factory = DiagramFactory()
        cached = Composer(_order(), factory=factory, use_cache=True)
        reference = Composer(_order(), factory=factory, use_cache=False)
        try:
            dp_ref, dq_ref = to_xfdd(p, reference), to_xfdd(q, reference)
            u_ref = reference.union(dp_ref, dq_ref)
            s_ref = reference.sequence(dp_ref, dq_ref)
        except (RaceConditionError, CompileError):
            return
        dp, dq = to_xfdd(p, cached), to_xfdd(q, cached)
        assert dp is dp_ref and dq is dq_ref
        assert cached.union(dp, dq) is u_ref
        assert cached.sequence(dp, dq) is s_ref

    def test_low_hit_window_trips_bypass(self):
        """A full window of misses flips the cache off, visibly and stickily."""
        from repro.xfdd.compose import CACHE_BYPASS_WINDOW

        comp = Composer(_order(), factory=DiagramFactory())
        assert comp.cache_stats()["cache_bypassed"] is False
        for i in range(CACHE_BYPASS_WINDOW):
            comp._cache_lookup(("probe", i))
        assert comp.use_cache is False
        assert comp.cache_stats()["cache_bypassed"] is True
        # Bypassing is invisible: composition still hash-conses to the
        # same node a reference composer produces.
        factory = DiagramFactory()
        bypassed = Composer(_order(), factory=factory)
        bypassed.use_cache = False
        bypassed.cache_bypassed = True
        reference = Composer(_order(), factory=factory, use_cache=False)
        policy = ast.Seq(ast.Test("fa", 1), ast.Mod("fb", 2))
        assert to_xfdd(policy, bypassed) is to_xfdd(policy, reference)

    def test_recurring_window_keeps_the_cache(self):
        """Windows above the threshold leave the cache on."""
        from repro.xfdd.compose import CACHE_BYPASS_WINDOW

        comp = Composer(_order(), factory=DiagramFactory())
        comp._cache[("hot",)] = DROP
        for _ in range(2 * CACHE_BYPASS_WINDOW):
            comp._cache_lookup(("hot",))
        assert comp.use_cache is True
        assert comp.cache_stats()["cache_bypassed"] is False

    def test_cache_counters_advance(self):
        factory = DiagramFactory()
        comp = Composer(_order(), factory=factory)
        policy = ast.Seq(
            ast.Parallel(ast.Test("fa", 1), ast.Test("fb", 2)),
            ast.Parallel(ast.Mod("fc", 3), ast.Test("fa", 1)),
        )
        to_xfdd(policy, comp)
        stats = comp.cache_stats()
        assert stats["cache_misses"] > 0
        assert stats["cache_entries"] == stats["cache_misses"]
        assert stats["intern_size"] == len(factory)


class TestFactoryScoping:
    def test_singletons_shared_across_factories(self):
        f1, f2 = DiagramFactory(), DiagramFactory()
        assert f1.leaf([()]) is IDENTITY
        assert f2.leaf([()]) is IDENTITY
        assert f1.leaf([]) is DROP is f2.leaf([])

    def test_clear_keeps_singletons(self):
        factory = DiagramFactory()
        factory.leaf([(FieldAssign("fa", 1),)])
        assert len(factory) > 2
        factory.clear()
        assert len(factory) == 2
        assert factory.leaf([()]) is IDENTITY

    def test_clear_invalidates_bound_composer_caches(self):
        """factory.clear() must flush id()-keyed apply-caches, or recycled
        node addresses could alias stale entries."""
        factory = DiagramFactory()
        comp = Composer(_order(), factory=factory)
        policy = ast.Seq(ast.Test("fa", 1), ast.Mod("fb", 2))
        to_xfdd(policy, comp)
        assert comp.cache_stats()["cache_entries"] > 0
        factory.clear()
        assert comp.cache_stats()["cache_entries"] == 0
        # The composer keeps working against the cleared factory.
        d = to_xfdd(policy, comp)
        assert d is to_xfdd(policy, comp)

    def test_default_factory_backs_module_constructors(self):
        from repro.xfdd.diagram import make_leaf

        before = len(default_factory())
        assert make_leaf([()]) is IDENTITY
        assert len(default_factory()) == before

    def test_second_compilation_does_not_grow_first_intern_table(self):
        """Back-to-back controller sessions use disjoint hash-consing sessions."""
        topology = campus_topology()
        first = SnapController(topology, _campus_program()).submit()
        factory_one = first.diagram_factory
        assert factory_one is not None
        size_one = len(factory_one)
        assert size_one > 2  # it actually interned this program's nodes
        second = SnapController(topology, _campus_program()).submit()
        assert len(factory_one) == size_one
        assert second.diagram_factory is not factory_one
        assert len(second.diagram_factory) == size_one  # same program, same table

    def test_compilation_exposes_cache_stats(self):
        result = SnapController(campus_topology(), _campus_program()).submit()
        assert result.model_stats["xfdd_cache_hits"] > 0
        assert result.model_stats["xfdd_cache_misses"] > 0
        assert result.model_stats["xfdd_intern_size"] == len(result.diagram_factory)
