"""Tests for topologies and traffic matrices."""

import pytest

from repro.lang.errors import TopologyError
from repro.topology.campus import CAMPUS_PORTS, campus_subnet, campus_topology
from repro.topology.graph import Topology, port_node
from repro.topology.igen import igen_topology
from repro.topology.synthetic import (
    TABLE5,
    all_table5_topologies,
    paper_num_ports,
    synthetic_topology,
    table5_topology,
)
from repro.topology.traffic import gravity_traffic_matrix, uniform_traffic_matrix


class TestTopologyModel:
    def test_links_are_bidirectional_by_default(self):
        topo = Topology("t")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("a", "b", 10.0)
        assert topo.capacity("a", "b") == 10.0
        assert topo.capacity("b", "a") == 10.0

    def test_unknown_link_raises(self):
        topo = Topology("t")
        topo.add_switch("a")
        with pytest.raises(TopologyError):
            topo.capacity("a", "zzz")

    def test_attach_port_requires_switch(self):
        topo = Topology("t")
        with pytest.raises(TopologyError):
            topo.attach_port(1, "nope")

    def test_duplicate_port_rejected(self):
        topo = Topology("t")
        topo.add_switch("a")
        topo.attach_port(1, "a")
        with pytest.raises(TopologyError):
            topo.attach_port(1, "a")

    def test_validate_requires_connectivity(self):
        topo = Topology("t")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.attach_port(1, "a")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_without_link(self):
        topo = campus_topology()
        degraded = topo.without_link("C1", "C5")
        assert not degraded.graph.has_edge("C1", "C5")
        assert not degraded.graph.has_edge("C5", "C1")
        assert topo.graph.has_edge("C1", "C5")  # original untouched

    def test_expanded_graph_has_port_nodes(self):
        topo = campus_topology()
        expanded = topo.expanded_graph()
        assert expanded.has_edge(port_node(1), "I1")
        assert expanded.has_edge("I1", port_node(1))


class TestCampus:
    def test_shape(self):
        topo = campus_topology()
        assert topo.num_switches() == 12
        assert len(topo.ports) == 6

    def test_port_attachment(self):
        topo = campus_topology()
        for port, (switch, _) in CAMPUS_PORTS.items():
            assert topo.port_switch(port) == switch

    def test_subnets(self):
        assert str(campus_subnet(6)) == "10.0.6.0/24"

    def test_paper_paths_exist(self):
        topo = campus_topology()
        for a, b in (("I1", "C1"), ("C1", "C5"), ("C5", "D4"),
                     ("I2", "C2"), ("C2", "C6"), ("C6", "D4"), ("D3", "C5")):
            assert topo.graph.has_edge(a, b)


class TestTable5:
    @pytest.mark.parametrize("name", list(TABLE5))
    def test_exact_size(self, name):
        switches, directed_edges, _demands = TABLE5[name]
        topo = table5_topology(name, num_ports=6)
        assert topo.num_switches() == switches
        assert topo.num_directed_edges() == directed_edges

    def test_paper_num_ports(self):
        assert paper_num_ports("Stanford") == 144
        assert paper_num_ports("AS1755") == 60

    def test_deterministic(self):
        a = table5_topology("AS1221", num_ports=4, seed=7)
        b = table5_topology("AS1221", num_ports=4, seed=7)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_all_seven(self):
        topos = all_table5_topologies(num_ports=4)
        assert len(topos) == 7

    def test_unknown_name(self):
        with pytest.raises(TopologyError):
            table5_topology("AS9999")

    def test_too_few_links_rejected(self):
        with pytest.raises(TopologyError):
            synthetic_topology("bad", 10, 4)


class TestIGen:
    @pytest.mark.parametrize("n", [10, 50, 120])
    def test_sizes_and_connectivity(self, n):
        topo = igen_topology(n, num_ports=6, seed=1)
        assert topo.num_switches() == n
        topo.validate()

    def test_edge_fraction(self):
        topo = igen_topology(40, seed=2)
        # default: one port per edge switch, 70% of switches are edges
        assert len(topo.ports) == 28

    def test_deterministic(self):
        a = igen_topology(30, seed=5)
        b = igen_topology(30, seed=5)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)


class TestTraffic:
    def test_gravity_total(self):
        demands = gravity_traffic_matrix(range(1, 7), 600.0, seed=3)
        assert sum(demands.values()) == pytest.approx(600.0)

    def test_gravity_no_diagonal(self):
        demands = gravity_traffic_matrix(range(1, 5), seed=0)
        assert all(u != v for u, v in demands)

    def test_gravity_deterministic(self):
        a = gravity_traffic_matrix(range(1, 5), seed=9)
        b = gravity_traffic_matrix(range(1, 5), seed=9)
        assert a == b

    def test_gravity_all_positive(self):
        demands = gravity_traffic_matrix(range(1, 9), seed=4)
        assert all(v > 0 for v in demands.values())

    def test_uniform(self):
        demands = uniform_traffic_matrix((1, 2, 3), 2.0)
        assert len(demands) == 6
        assert set(demands.values()) == {2.0}
