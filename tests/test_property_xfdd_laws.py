"""Property tests: algebraic laws of the xFDD composition operators.

These mirror the NetKAT-style equations the language satisfies; since
diagrams are hash-consed, *semantic* laws are checked by evaluation and
*structural* laws by identity.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, assume, given, settings

from repro.lang.errors import CompileError, RaceConditionError
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DROP, IDENTITY, evaluate, is_predicate_diagram
from repro.xfdd.order import TestOrder as XFDDTestOrder

from tests.strategies import packets, policies, predicates, registry, stores

SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def composer():
    return Composer(XFDDTestOrder(registry(), {"sA": 0, "sB": 1}))


def build(policy, comp):
    try:
        return to_xfdd(policy, comp)
    except (RaceConditionError, CompileError):
        return None


def equivalent(d1, d2, packet, store):
    s1, o1 = evaluate(d1, packet, store)
    s2, o2 = evaluate(d2, packet, store)
    return o1 == o2 and s1 == s2


@SETTINGS
@given(pred=predicates(), packet=packets(), store=stores())
def test_negation_involution(pred, packet, store):
    comp = composer()
    d = build(pred, comp)
    assume(d is not None)
    assert comp.negate(comp.negate(d)) is d


@SETTINGS
@given(pred=predicates(), packet=packets(), store=stores())
def test_excluded_middle(pred, packet, store):
    """x ⊕ ¬x passes every packet; x ⊙ ¬x passes none."""
    comp = composer()
    d = build(pred, comp)
    assume(d is not None)
    union = comp.union(d, comp.negate(d))
    _, out = evaluate(union, packet, store)
    assert out == frozenset((packet,))
    seq = comp.sequence(d, comp.negate(d))
    _, out = evaluate(seq, packet, store)
    assert out == frozenset()


@SETTINGS
@given(p=predicates(), q=predicates(), packet=packets(), store=stores())
def test_union_commutative_on_predicates(p, q, packet, store):
    comp = composer()
    d1 = build(p, comp)
    d2 = build(q, comp)
    assume(d1 is not None and d2 is not None)
    assert equivalent(
        comp.union(d1, d2), comp.union(d2, d1), packet, store
    )


@SETTINGS
@given(p=policies(max_leaves=4), packet=packets(), store=stores())
def test_identity_laws(p, packet, store):
    """id ⊙ d == d ⊙ id == d ; drop ⊙ d == drop (semantically)."""
    comp = composer()
    d = build(p, comp)
    assume(d is not None)
    try:
        left = comp.sequence(IDENTITY, d)
        right = comp.sequence(d, IDENTITY)
    except (RaceConditionError, CompileError):
        assume(False)
        return
    assert equivalent(left, d, packet, store)
    assert equivalent(right, d, packet, store)
    assert comp.sequence(DROP, d) is DROP


@SETTINGS
@given(p=predicates(), q=predicates(), packet=packets(), store=stores())
def test_demorgan(p, q, packet, store):
    """⊖(x ⊕ y) == ⊖x ⊙ ⊖y on predicate diagrams."""
    comp = composer()
    d1 = build(p, comp)
    d2 = build(q, comp)
    assume(d1 is not None and d2 is not None)
    lhs = comp.negate(comp.union(d1, d2))
    rhs = comp.sequence(comp.negate(d1), comp.negate(d2))
    assert equivalent(lhs, rhs, packet, store)


@SETTINGS
@given(p=predicates())
def test_predicate_diagrams_are_predicates(p):
    comp = composer()
    d = build(p, comp)
    assume(d is not None)
    assert is_predicate_diagram(d)


@SETTINGS
@given(
    p=policies(max_leaves=3),
    q=policies(max_leaves=3),
    r=policies(max_leaves=3),
    packet=packets(),
    store=stores(),
)
def test_union_associative_semantically(p, q, r, packet, store):
    comp = composer()
    try:
        d1 = to_xfdd(p, comp)
        d2 = to_xfdd(q, comp)
        d3 = to_xfdd(r, comp)
        lhs = comp.union(comp.union(d1, d2), d3)
        rhs = comp.union(d1, comp.union(d2, d3))
    except (RaceConditionError, CompileError):
        assume(False)
        return
    assert equivalent(lhs, rhs, packet, store)
