"""Tests for the process-pool execution engine and the lowered program form.

Three load-bearing properties:

* ``LoweredProgram`` is pickle-clean pure data and round-trips — a
  rehydrated program is behaviorally identical to the one it was lowered
  from;
* the process engine is delivery- and state-equivalent to the sequential
  engine (and therefore to OBS ``eval``) on the Table-3 traces and on
  hypothesis-generated policies including multicast and unshardable
  state, and is deterministic across runs with a multi-worker pool;
* the worker pool follows the session lifecycle: it survives TE rewires
  (same compiled programs) and restarts on policy rebuilds.
"""

import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.lang.errors import DataPlaneError, PlacementError

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
    stateful_firewall,
    syn_flood_detect,
)
from repro.cluster import ClusterEngine
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.dataplane.engine import (
    ProcessPoolEngine,
    SequentialEngine,
    ShardedEngine,
    get_engine,
)
from repro.dataplane.netasm import LoweredProgram, from_lowered
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro import workloads
from repro.workloads import replay

from tests.test_engine import (
    PORTS,
    SUBNETS,
    compiled,
    ip,
    record_view,
    sharded_monitor,
)

#: One pool for the whole module: mirrors how a session uses the engine
#: (pools are long-lived) and keeps the hypothesis property affordable.
ENGINE = ProcessPoolEngine(max_workers=2)

#: And one 2-daemon cluster, for the cross-engine property: daemons (like
#: pools) are long-lived, and their spec caches turn over per generated
#: policy — exactly the cache-churn regime the bounded worker caches and
#: the missing-spec re-ship path must survive.
CLUSTER = ClusterEngine(workers=2)


@pytest.fixture(scope="module", autouse=True)
def _shared_pool():
    yield
    ENGINE.close()
    CLUSTER.close()


def assert_process_equivalent(snapshot, trace, engine=None):
    """Process engine ≡ sequential, field by field, stores and counters."""
    net_seq = snapshot.build_network()
    net_proc = snapshot.build_network()
    arrivals = list(trace)
    seq = SequentialEngine().run(net_seq, arrivals)
    proc = (engine or ENGINE).run(net_proc, arrivals)
    assert len(seq) == len(proc) == len(arrivals)
    for per_seq, per_proc in zip(seq, proc):
        assert record_view(per_seq) == record_view(per_proc)
    assert net_seq.global_store() == net_proc.global_store()
    assert net_seq.link_packets == net_proc.link_packets
    assert record_view(net_seq.deliveries) == record_view(net_proc.deliveries)


class TestLoweredProgram:
    def test_round_trip_and_pickle_clean(self):
        snapshot, _ = compiled(app=dns_tunnel_detect())
        network = snapshot.build_network()
        for name, program in network.switches.items():
            lowered = program.to_lowered()
            assert isinstance(lowered, LoweredProgram)
            wire = pickle.loads(pickle.dumps(lowered))
            assert wire == lowered, name
            rehydrated = from_lowered(wire)
            # The round trip is a fixed point of the lowering.
            assert rehydrated.to_lowered() == lowered, name
            assert rehydrated.entries == program.entries, name
            assert len(rehydrated.instructions) == len(program.instructions)

    def test_rehydrated_programs_behaviorally_identical(self):
        """A network running entirely on rehydrated programs produces the
        same records, stores, and counters as the original."""
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        snapshot, _ = compiled(app=syn_flood_detect(threshold=10), guard=guard)
        original = snapshot.build_network()
        rebuilt = snapshot.build_network()
        rebuilt.switches = {
            name: from_lowered(program.to_lowered())
            for name, program in rebuilt.switches.items()
        }
        trace = list(workloads.background_traffic(SUBNETS, count=150, seed=13))
        out_a = SequentialEngine().run(original, trace)
        out_b = SequentialEngine().run(rebuilt, trace)
        for a, b in zip(out_a, out_b):
            assert record_view(a) == record_view(b)
        assert original.global_store() == rebuilt.global_store()
        assert original.link_packets == rebuilt.link_packets

    def test_prefix_and_symbol_values_survive_the_wire(self):
        snapshot, _ = compiled(app=stateful_firewall())
        network = snapshot.build_network()
        for program in network.switches.values():
            assert pickle.loads(pickle.dumps(program.to_lowered())) == (
                program.to_lowered()
            )


class TestProcessEquivalence:
    """Process ≡ sequential ≡ eval on the Table-3 traces."""

    def test_sharded_monitor_background(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=300, seed=7)
        assert_process_equivalent(snapshot, trace)

    def test_dns_tunnel_attack_and_benign(self):
        snapshot, _ = compiled(app=dns_tunnel_detect(threshold=3))
        attack = workloads.dns_tunnel_attack(
            ip("10.0.6.66"), 6, ip("10.0.1.53"), 1, num_responses=4
        )
        benign = workloads.benign_dns_usage(
            ip("10.0.6.77"), 6, ip("10.0.1.53"), 1,
            servers=[ip("10.0.2.10"), ip("10.0.2.11")], server_port=2,
        )
        assert_process_equivalent(snapshot, attack.interleaved_with(benign, seed=3))

    def test_syn_flood_with_sessions(self):
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        snapshot, _ = compiled(app=syn_flood_detect(threshold=10), guard=guard)
        flood = workloads.syn_flood(ip("10.0.1.66"), 1, ip("10.0.6.1"), count=15)
        sessions = workloads.tcp_session(ip("10.0.2.5"), ip("10.0.6.1"), 2, 6)
        assert_process_equivalent(snapshot, flood.interleaved_with(sessions, seed=9))

    def test_two_runs_identical_with_two_workers(self):
        """Worker scheduling never leaks into the output ordering."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=250, seed=5))
        nets = [snapshot.build_network() for _ in range(2)]
        runs = [ENGINE.run(net, trace) for net in nets]
        for a, b in zip(runs[0], runs[1]):
            assert record_view(a) == record_view(b)
        assert nets[0].global_store() == nets[1].global_store()
        assert nets[0].link_packets == nets[1].link_packets
        assert record_view(nets[0].deliveries) == record_view(nets[1].deliveries)

    def test_single_worker_budget_runs_inline(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=100, seed=1)
        engine = ProcessPoolEngine(max_workers=1)
        try:
            assert_process_equivalent(snapshot, trace, engine=engine)
            assert engine._pool is None  # never paid for a pool
        finally:
            engine.close()

    def test_replay_stats_match_sequential(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=200, seed=3)
        stats_seq = replay(trace, snapshot.build_network(), engine="sequential")
        stats_proc = replay(trace, snapshot.build_network(), engine=ENGINE)
        assert stats_seq.sent == stats_proc.sent
        assert stats_seq.delivered == stats_proc.delivered
        assert stats_seq.dropped == stats_proc.dropped
        assert stats_seq.per_egress == stats_proc.per_egress
        assert stats_seq.total_hops == stats_proc.total_hops


class TestPoolLifecycle:
    def test_engine_selection(self):
        assert isinstance(get_engine("process"), ProcessPoolEngine)
        custom = ProcessPoolEngine(max_workers=2)
        assert get_engine(custom) is custom
        assert CompilerOptions(engine="process").engine == "process"

    def test_named_engine_is_shared(self):
        """replay(..., engine="process") must reuse one pool across
        calls instead of leaking a fresh engine (and pool) per call."""
        assert get_engine("process") is get_engine("process")

    def test_broken_pool_recovers_on_next_run(self):
        """A crashed worker must not brick the engine: the broken pool
        is released and the next run starts a fresh one."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=60, seed=8))
        engine = ProcessPoolEngine(max_workers=2)
        try:
            assert len(engine.run(snapshot.build_network(), trace)) == 60
            pool = engine._pool
            assert pool is not None
            for process in pool._processes.values():
                process.terminate()
            with pytest.raises(DataPlaneError):
                engine.run(snapshot.build_network(), trace)
            assert engine._pool is None  # broken executor released
            out = engine.run(snapshot.build_network(), trace)  # fresh pool
            assert len(out) == 60
        finally:
            engine.close()

    def test_in_place_mutation_refreshes_worker_caches(self):
        """Grafting a different program onto the same network object
        (the mutation path the shard-plan cache self-invalidates on)
        must also invalidate the workers' rehydration caches — otherwise
        warm workers keep executing the old policy."""
        snap_a, _ = sharded_monitor()
        guarded = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("only1", ast.Field("srcip")),
                ast.Id(),
            ),
            assign_egress(SUBNETS),
        )
        snap_b, _ = compiled(policy=guarded, defaults={"only1": 0},
                             name="guarded")
        trace = list(workloads.background_traffic(SUBNETS, count=80, seed=6))
        engine = ProcessPoolEngine(max_workers=2)
        try:
            network = snap_a.build_network()
            engine.run(network, trace)  # warm the workers on program A
            donor = snap_b.build_network()
            for attr in ("index", "switches", "placement", "mapping",
                         "routing", "rules", "demands", "state_defaults"):
                setattr(network, attr, getattr(donor, attr))
            network._init_routing_indices()
            network.link_packets = {}
            network.deliveries = []
            out = engine.run(network, trace)

            reference = snap_b.build_network()
            ref = SequentialEngine().run(reference, trace)
            for a, b in zip(ref, out):
                assert record_view(a) == record_view(b)
            assert network.global_store() == reference.global_store()
        finally:
            engine.close()

    def test_single_shard_runs_inline(self):
        """One shard gains nothing from IPC — the engine falls back to
        the inline lane and never creates a pool."""
        snapshot, _ = compiled(app=dns_tunnel_detect())
        engine = ProcessPoolEngine(max_workers=4)
        try:
            trace = workloads.background_traffic(SUBNETS, count=80, seed=2)
            assert_process_equivalent(snapshot, trace, engine=engine)
            assert engine._pool is None
        finally:
            engine.close()

    def test_session_pool_survives_rewire_restarts_on_rebuild(self):
        _, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program,
            options=CompilerOptions(engine="process"),
        )
        controller.submit()
        net_cold = controller.network()
        engine = net_cold.default_engine
        assert isinstance(engine, ProcessPoolEngine)
        try:
            engine.max_workers = 2  # keep the test pool small
            trace = workloads.background_traffic(SUBNETS, count=60, seed=4)
            assert replay(trace, net_cold).sent == 60
            pool = engine._pool
            assert pool is not None

            controller.fail_link("C1", "C5")  # TE rewire
            net_te = controller.network()
            assert net_te.default_engine is engine
            assert engine._pool is pool  # pool survived
            assert net_te._exec_program_key == net_cold._exec_program_key
            assert net_te._exec_network_key != net_cold._exec_network_key
            assert replay(trace, net_te).sent == 60

            controller.update_policy(program)  # policy rebuild
            net_policy = controller.network()
            assert net_policy.default_engine is engine
            assert engine._pool is None  # pool restarted
            assert net_policy._exec_program_key != net_cold._exec_program_key
            assert replay(trace, net_policy).sent == 60  # fresh pool works
        finally:
            controller.close()
            assert engine._pool is None


# -- cross-engine hypothesis property ----------------------------------------
#
# Random policies over the campus: optionally per-port sharded counters,
# optionally a global (unshardable) counter, optionally multicast and
# partial drops in the egress stage.  Every engine — thread lanes,
# process-pool lanes, the 2-daemon cluster, and both columnar vector
# tiers — must agree with the sequential baseline field by field,
# including the final global store.

MULTICAST_EGRESS = ast.If(
    ast.Test("dstport", 99),
    ast.Parallel(ast.Mod("outport", 2), ast.Mod("outport", 5)),
    assign_egress(SUBNETS),
)

DROPPY_EGRESS = ast.If(
    ast.Test("srcport", 7), ast.Drop(), assign_egress(SUBNETS)
)


@st.composite
def campus_cases(draw):
    defaults = {}
    state_parts = []
    if draw(st.booleans()):
        state_parts.append(
            shard_by_inport(
                ast.StateIncr("cnt", ast.Field("inport")), "cnt", PORTS
            )
        )
        defaults.update(shard_defaults({"cnt": 0}, "cnt", PORTS))
    if draw(st.booleans()):
        # Guarded to the server subnet's flows so placement stays
        # feasible — still touched from every ingress port, so it is
        # unshardable and collapses the stateful ports into one lane.
        state_parts.append(
            ast.If(
                ast.Test("dstip", SUBNETS[6]),
                ast.StateIncr("glob", ast.Value(0)),
                ast.Id(),
            )
        )
        defaults["glob"] = 0
    guarded_port = draw(st.sampled_from(PORTS))
    if draw(st.booleans()):
        state_parts.append(
            ast.If(
                ast.Test("inport", guarded_port),
                ast.StateIncr("guarded", ast.Field("srcip")),
                ast.Id(),
            )
        )
        defaults["guarded"] = 0
    egress = draw(
        st.sampled_from([assign_egress(SUBNETS), MULTICAST_EGRESS, DROPPY_EGRESS])
    )
    policy = egress
    for part in state_parts:
        policy = ast.Seq(part, policy)
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return policy, defaults, seed


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(case=campus_cases())
def test_cross_engine_equivalence(case):
    policy, defaults, seed = case
    program = Program(
        policy,
        assumption=port_assumption(SUBNETS),
        state_defaults=defaults,
        name="generated",
    )
    try:
        snapshot = SnapController(campus_topology(), program).submit()
    except PlacementError:
        assume(False)
        return
    trace = list(workloads.background_traffic(SUBNETS, count=60, seed=seed))
    # Sprinkle in packets that trigger the multicast / drop egresses.
    extra = [
        (
            workloads.traces.make_packet(
                srcip=SUBNETS[p].host(9), dstip=SUBNETS[6].host(9),
                srcport=7 if p % 2 else 40000, dstport=99,
            ),
            p,
        )
        for p in PORTS
    ]
    arrivals = trace + extra

    nets = {
        "sequential": snapshot.build_network(),
        "sharded": snapshot.build_network(),
        # Replication explicitly on / off: the default rows above
        # follow the network's flag, these two pin both settings so a
        # regression in either path (per-lane replicas + log merge, or
        # the classic owner-lane collapse) cannot hide behind defaults.
        "sharded-replicate": snapshot.build_network(),
        "sharded-owner-lane": snapshot.build_network(),
        "process": snapshot.build_network(),
        "cluster": snapshot.build_network(),
        "vector": snapshot.build_network(),
        "vector-jit": snapshot.build_network(),
    }
    try:
        baseline_run = SequentialEngine().run(nets["sequential"], arrivals)
    except DataPlaneError:
        # The reference simulator itself cannot route this placement
        # (multi-variable pause chains are a known egress-retag
        # limitation) — engine equivalence is vacuous here.
        assume(False)
        return
    results = {
        "sequential": baseline_run,
        "sharded": ShardedEngine(max_workers=2).run(nets["sharded"], arrivals),
        "sharded-replicate": ShardedEngine(
            max_workers=2, replicate_state=True
        ).run(nets["sharded-replicate"], arrivals),
        "sharded-owner-lane": ShardedEngine(
            max_workers=2, replicate_state=False
        ).run(nets["sharded-owner-lane"], arrivals),
        "process": ENGINE.run(nets["process"], arrivals),
        "cluster": CLUSTER.run(nets["cluster"], arrivals),
        "vector": get_engine("vector").run(nets["vector"], arrivals),
        "vector-jit": get_engine("vector-jit").run(
            nets["vector-jit"], arrivals
        ),
    }
    baseline = results["sequential"]
    base_store = nets["sequential"].global_store()
    for name in ("sharded", "sharded-replicate", "sharded-owner-lane",
                 "process", "cluster", "vector", "vector-jit"):
        assert len(results[name]) == len(baseline), name
        for a, b in zip(baseline, results[name]):
            assert record_view(a) == record_view(b), name
        assert nets[name].global_store() == base_store, name
        assert nets[name].link_packets == nets["sequential"].link_packets, name
