"""Unit tests for the reference semantics (Appendix A)."""

import pytest

from repro.lang import ast
from repro.lang.errors import InconsistentStateError
from repro.lang.packet import make_packet
from repro.lang.semantics import Log, eval_policy, run, run_sequence
from repro.lang.state import Store


def evaluate(policy, packet, defaults=None):
    store = Store(defaults or ast.infer_state_defaults(policy))
    return eval_policy(policy, store, packet)


class TestPredicates:
    def test_id_passes(self):
        pkt = make_packet(srcport=53)
        _, out, log = evaluate(ast.Id(), pkt)
        assert out == frozenset((pkt,))
        assert log == Log()

    def test_drop(self):
        _, out, _ = evaluate(ast.Drop(), make_packet())
        assert out == frozenset()

    def test_test_pass_and_fail(self):
        pkt = make_packet(srcport=53)
        _, out, _ = evaluate(ast.Test("srcport", 53), pkt)
        assert out
        _, out, _ = evaluate(ast.Test("srcport", 80), pkt)
        assert not out

    def test_state_test_reads_log(self):
        policy = ast.StateTest("s", ast.Field("srcip"), True)
        _, out, log = evaluate(policy, make_packet(srcip=1))
        assert not out  # default False != True
        assert "s" in log.reads and not log.writes

    def test_negation(self):
        pkt = make_packet(srcport=53)
        _, out, _ = evaluate(ast.Not(ast.Test("srcport", 80)), pkt)
        assert out == frozenset((pkt,))

    def test_conjunction_requires_both(self):
        pkt = make_packet(srcport=53, dstport=80)
        both = ast.And(ast.Test("srcport", 53), ast.Test("dstport", 80))
        _, out, _ = evaluate(both, pkt)
        assert out
        wrong = ast.And(ast.Test("srcport", 53), ast.Test("dstport", 99))
        _, out, _ = evaluate(wrong, pkt)
        assert not out

    def test_disjunction(self):
        pkt = make_packet(srcport=53)
        either = ast.Or(ast.Test("srcport", 99), ast.Test("srcport", 53))
        _, out, _ = evaluate(either, pkt)
        assert out


class TestModifications:
    def test_field_mod(self):
        _, out, _ = evaluate(ast.Mod("outport", 6), make_packet())
        assert next(iter(out)).get("outport") == 6

    def test_state_mod_updates_store_and_logs(self):
        policy = ast.StateMod("s", ast.Field("srcip"), ast.Field("dstip"))
        store, out, log = evaluate(policy, make_packet(srcip=1, dstip=2))
        assert store.read("s", (1,)) == 2
        assert "s" in log.writes

    def test_increment_decrement(self):
        pkt = make_packet(srcip=1)
        inc = ast.StateIncr("c", ast.Field("srcip"))
        store, _, _ = evaluate(inc, pkt, {"c": 0})
        assert store.read("c", (1,)) == 1
        dec = ast.StateDecr("c", ast.Field("srcip"))
        store, _, _ = eval_policy(dec, store, pkt)
        assert store.read("c", (1,)) == 0

    def test_input_store_not_mutated(self):
        store = Store({"s": False})
        policy = ast.StateMod("s", ast.Value(1), ast.Value(True))
        new_store, _, _ = eval_policy(policy, store, make_packet())
        assert store.read("s", (1,)) is False
        assert new_store.read("s", (1,)) is True

    def test_vector_index(self):
        policy = ast.StateMod(
            "s", ast.Vector([ast.Field("srcip"), ast.Field("dstip")]), ast.Value(7)
        )
        store, _, _ = evaluate(policy, make_packet(srcip=1, dstip=2))
        assert store.read("s", (1, 2)) == 7


class TestComposition:
    def test_seq_threads_state(self):
        policy = ast.Seq(
            ast.StateMod("s", ast.Value(0), ast.Value(5)),
            ast.StateTest("s", ast.Value(0), ast.Value(5)),
        )
        _, out, _ = evaluate(policy, make_packet())
        assert out  # the test sees the write

    def test_parallel_copies_packet(self):
        policy = ast.Parallel(ast.Mod("outport", 1), ast.Mod("outport", 2))
        _, out, _ = evaluate(policy, make_packet())
        assert {p.get("outport") for p in out} == {1, 2}

    def test_parallel_write_write_conflict(self):
        policy = ast.Parallel(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
        )
        with pytest.raises(InconsistentStateError):
            evaluate(policy, make_packet())

    def test_parallel_read_write_conflict(self):
        policy = ast.Parallel(
            ast.StateTest("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(2)),
        )
        with pytest.raises(InconsistentStateError):
            evaluate(policy, make_packet())

    def test_parallel_disjoint_states_ok(self):
        policy = ast.Parallel(
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("t", ast.Value(0), ast.Value(2)),
        )
        store, out, _ = evaluate(policy, make_packet())
        assert store.read("s", (0,)) == 1 and store.read("t", (0,)) == 2

    def test_seq_conflicting_runs_raise(self):
        # The paper's example: (f<-1 + f<-2); s[0]<-f is inconsistent.
        policy = ast.Seq(
            ast.Parallel(ast.Mod("f", 1), ast.Mod("f", 2)),
            ast.StateMod("s", ast.Value(0), ast.Field("f")),
        )
        with pytest.raises(InconsistentStateError):
            evaluate(policy, make_packet())

    def test_seq_parallel_runs_without_state_ok(self):
        # ... but p; q runs fine for q = g <- 3.
        policy = ast.Seq(
            ast.Parallel(ast.Mod("f", 1), ast.Mod("f", 2)),
            ast.Mod("g", 3),
        )
        _, out, _ = evaluate(policy, make_packet())
        assert {p.get("f") for p in out} == {1, 2}
        assert all(p.get("g") == 3 for p in out)

    def test_if_reads_and_writes_same_state_ok(self):
        policy = ast.If(
            ast.StateTest("s", ast.Value(0), ast.Value(0)),
            ast.StateMod("s", ast.Value(0), ast.Value(1)),
            ast.StateMod("s", ast.Value(0), ast.Value(0)),
        )
        store, _, _ = evaluate(policy, make_packet(), {"s": 0})
        assert store.read("s", (0,)) == 1

    def test_if_condition_log_propagates(self):
        policy = ast.If(
            ast.StateTest("s", ast.Value(0), ast.Value(0)),
            ast.Id(),
            ast.Id(),
        )
        _, _, log = evaluate(policy, make_packet(), {"s": 0})
        assert "s" in log.reads

    def test_atomic_transparent_for_single_packet(self):
        policy = ast.Atomic(
            ast.Seq(
                ast.StateMod("a", ast.Value(0), ast.Value(1)),
                ast.StateMod("b", ast.Value(0), ast.Value(2)),
            )
        )
        store, _, _ = evaluate(policy, make_packet())
        assert store.read("a", (0,)) == 1 and store.read("b", (0,)) == 2

    def test_drop_keeps_prior_writes(self):
        policy = ast.Seq(ast.StateIncr("c", ast.Value(0)), ast.Drop())
        store, out, _ = evaluate(policy, make_packet(), {"c": 0})
        assert not out
        assert store.read("c", (0,)) == 1


class TestRunHelpers:
    def test_run_infers_defaults(self):
        policy = ast.StateIncr("c", ast.Field("srcip"))
        store, out = run(policy, make_packet(srcip=9))
        assert store.read("c", (9,)) == 1

    def test_run_sequence_threads_state(self):
        policy = ast.Seq(
            ast.StateIncr("c", ast.Field("srcip")),
            ast.StateTest("c", ast.Field("srcip"), ast.Value(2)),
        )
        pkts = [make_packet(srcip=1), make_packet(srcip=1)]
        store, outs = run_sequence(policy, pkts)
        assert not outs[0]  # counter was 1 after increment
        assert outs[1]  # counter reached 2
        assert store.read("c", (1,)) == 2
