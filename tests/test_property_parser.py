"""Property test: pretty-printing then parsing is the identity."""

from hypothesis import HealthCheck, given, settings

from repro.lang.parser import parse
from repro.lang.pretty import pretty

from tests.strategies import policies, registry


@settings(
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(policy=policies(max_leaves=8))
def test_pretty_parse_roundtrip(policy):
    text = pretty(policy)
    reparsed = parse(text, fields=registry())
    assert reparsed == policy, f"round-trip failed for: {text}"
