"""Tests for the cluster runtime: wire protocol, worker daemons,
coordinator dispatch, and the cluster engines.

The load-bearing properties:

* the wire protocol is versioned and fails loudly (and distinguishably)
  on version mismatch vs worker loss;
* ``engine="cluster"`` with two localhost daemons is field-for-field
  identical to the sequential engine — records, stores, link counters —
  including after a daemon is killed mid-run (the requeue path), and
  deterministic across runs regardless of worker arrival order;
* the session lifecycle holds: the daemon set survives TE rewires with
  *zero program bytes* re-shipped, restarts on policy rebuilds, and
  ``close()`` (or the atexit hook, or ``--orphan-exit``) leaves no
  ``repro.cluster.worker`` process behind;
* a dead worker yields a named ``DataPlaneError`` only when no capacity
  remains, and the next run starts a fresh cluster.
"""

import os
import pickle
import socket

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterEngine,
    ClusterError,
    ClusterObsEngine,
    ProtocolError,
    TransportError,
    WorkerHandle,
    spawn_worker_process,
)
from repro.cluster import protocol as wire
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.dataplane.engine import (
    SequentialEngine,
    engine_names,
    get_engine,
    make_session_engine,
    register_engine,
)
from repro.lang.errors import DataPlaneError, SnapError
from repro.lang.state import Store
from repro.topology.campus import campus_topology
from repro import workloads
from repro.workloads import replay, replay_obs
from repro.workloads.obs_engine import obs_engine_names

from tests.test_engine import (
    SUBNETS,
    compiled,
    ip,
    record_view,
    sharded_monitor,
)
from repro.apps import assign_egress, dns_tunnel_detect, syn_flood_detect
from repro.lang import ast

#: One 2-daemon engine for the whole module — mirrors how a session uses
#: the engine (daemon sets are long-lived) and keeps the suite fast.
ENGINE = ClusterEngine(workers=2)


@pytest.fixture(scope="module", autouse=True)
def _shared_cluster():
    yield
    ENGINE.close()


def live_worker_pids() -> list:
    """Pids of ``repro.cluster.worker`` children of this process, via
    /proc (psutil-free, per the no-new-deps rule)."""
    me = str(os.getpid())
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode(errors="replace")
            with open(f"/proc/{entry}/stat") as handle:
                # field 4 of /proc/pid/stat is the ppid; the comm field
                # (2) is parenthesized and cannot contain spaces here.
                ppid = handle.read().split()[3]
        except OSError:
            continue  # raced with process exit
        if "repro.cluster.worker" in cmdline and ppid == me:
            pids.append(int(entry))
    return pids


def assert_cluster_equivalent(snapshot, trace, engine=None):
    """Cluster engine ≡ sequential, field by field, stores and counters."""
    net_seq = snapshot.build_network()
    net_clu = snapshot.build_network()
    arrivals = list(trace)
    seq = SequentialEngine().run(net_seq, arrivals)
    clu = (engine or ENGINE).run(net_clu, arrivals)
    assert len(seq) == len(clu) == len(arrivals)
    for per_seq, per_clu in zip(seq, clu):
        assert record_view(per_seq) == record_view(per_clu)
    assert net_seq.global_store() == net_clu.global_store()
    assert net_seq.link_packets == net_clu.link_packets
    assert record_view(net_seq.deliveries) == record_view(net_clu.deliveries)


# -- wire protocol ------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            wire.send_message(a, wire.RUN_SHARD, {"batch": [1, 2, 3]})
            message_type, payload = wire.recv_message(b)
            assert message_type == wire.RUN_SHARD
            assert payload == {"batch": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_version_mismatch_rejected(self):
        a, b = socket.socketpair()
        try:
            body = pickle.dumps((wire.PING, {}))
            header = wire.FRAME_HEADER.pack(
                wire.FRAME_MAGIC, wire.PROTOCOL_VERSION + 1, len(body)
            )
            a.sendall(header + body)
            with pytest.raises(ProtocolError, match="version mismatch"):
                wire.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"HTTP" + bytes(8))
            with pytest.raises(ProtocolError, match="magic"):
                wire.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_closed_connection_is_transport_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(TransportError):
                wire.recv_message(b)
        finally:
            b.close()

    def test_transport_and_protocol_errors_are_cluster_errors(self):
        # The engine's failure contract wraps these in DataPlaneError;
        # they must already *be* DataPlaneErrors for ad-hoc callers.
        assert issubclass(TransportError, ClusterError)
        assert issubclass(ProtocolError, ClusterError)
        assert issubclass(ClusterError, DataPlaneError)


# -- engine registry ----------------------------------------------------------


class TestEngineRegistry:
    def test_cluster_is_registered(self):
        assert "cluster" in engine_names()
        assert "cluster" in obs_engine_names()
        assert CompilerOptions(engine="cluster").engine == "cluster"

    def test_unknown_engine_names_all_registered(self):
        with pytest.raises(SnapError) as excinfo:
            get_engine("bogus")
        assert "cluster" in str(excinfo.value)
        with pytest.raises(ValueError):
            CompilerOptions(engine="bogus")

    def test_named_cluster_engine_is_shared(self):
        engine = get_engine("cluster")
        try:
            assert isinstance(engine, ClusterEngine)
            assert get_engine("cluster") is engine
        finally:
            engine.close()

    def test_session_engine_is_private(self):
        session = make_session_engine("cluster")
        try:
            assert isinstance(session, ClusterEngine)
            assert session is not make_session_engine("cluster")
        finally:
            session.close()
        assert make_session_engine("sequential") is None
        assert make_session_engine(SequentialEngine()) is None

    def test_custom_engine_plugs_in_without_touching_core(self):
        class UppercutEngine(SequentialEngine):
            name = "uppercut"

        register_engine("uppercut", UppercutEngine)
        try:
            assert isinstance(get_engine("uppercut"), UppercutEngine)
            # CompilerOptions validation consults the registry.
            assert CompilerOptions(engine="uppercut").engine == "uppercut"
        finally:
            from repro.dataplane.engine import _ENGINE_REGISTRY

            _ENGINE_REGISTRY.unregister("uppercut")


# -- equivalence --------------------------------------------------------------


class TestClusterEquivalence:
    def test_sharded_monitor_background(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=300, seed=7)
        assert_cluster_equivalent(snapshot, trace)

    def test_syn_flood_with_sessions(self):
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        snapshot, _ = compiled(app=syn_flood_detect(threshold=10), guard=guard)
        flood = workloads.syn_flood(ip("10.0.1.66"), 1, ip("10.0.6.1"), count=15)
        sessions = workloads.tcp_session(ip("10.0.2.5"), ip("10.0.6.1"), 2, 6)
        assert_cluster_equivalent(
            snapshot, flood.interleaved_with(sessions, seed=9)
        )

    def test_single_shard_runs_inline(self):
        """One lane gains nothing from the wire: no daemons spawned."""
        snapshot, _ = compiled(app=dns_tunnel_detect())
        engine = ClusterEngine(workers=2)
        try:
            trace = workloads.background_traffic(SUBNETS, count=80, seed=2)
            assert_cluster_equivalent(snapshot, trace, engine=engine)
            assert engine.coordinator is None  # never paid for daemons
        finally:
            engine.close()

    def test_two_runs_identical(self):
        """Worker scheduling and result arrival order never leak into
        the merged output."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=250, seed=5))
        nets = [snapshot.build_network() for _ in range(2)]
        runs = [ENGINE.run(net, trace) for net in nets]
        for a, b in zip(runs[0], runs[1]):
            assert record_view(a) == record_view(b)
        assert nets[0].global_store() == nets[1].global_store()
        assert nets[0].link_packets == nets[1].link_packets

    def test_replay_stats_match_sequential(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=200, seed=3)
        stats_seq = replay(trace, snapshot.build_network(), engine="sequential")
        stats_clu = replay(trace, snapshot.build_network(), engine=ENGINE)
        assert stats_seq.sent == stats_clu.sent
        assert stats_seq.delivered == stats_clu.delivered
        assert stats_seq.dropped == stats_clu.dropped
        assert stats_seq.per_egress == stats_clu.per_egress
        assert stats_seq.total_hops == stats_clu.total_hops

    def test_bytes_shipped_accounting(self):
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=120, seed=11))
        engine = ClusterEngine(workers=2)
        try:
            engine.run(snapshot.build_network(), trace)
            stats = engine.last_run_stats
            assert stats["workers"] == 2
            assert stats["lanes"] >= 2
            assert stats["program_bytes"] > 0
            assert stats["network_bytes"] > 0
            assert stats["payload_bytes"] > 0
        finally:
            engine.close()


# -- OBS mirror ----------------------------------------------------------------


class TestClusterObsMirror:
    def test_byte_identical_to_sequential(self):
        _, program = sharded_monitor()
        policy = program.full_policy()
        trace = list(workloads.background_traffic(SUBNETS, count=150, seed=5))
        reference = replay_obs(trace, policy, Store(program.state_defaults))
        engine = ClusterObsEngine(workers=2)
        try:
            got = replay_obs(
                trace, policy, Store(program.state_defaults), engine=engine
            )
            assert got[1] == reference[1]
            assert got[0] == reference[0]
        finally:
            engine.close()

    def test_single_group_runs_inline(self):
        app = dns_tunnel_detect()
        policy = ast.Seq(app.policy, assign_egress(SUBNETS))
        trace = list(workloads.background_traffic(SUBNETS, count=60, seed=1))
        reference = replay_obs(trace, policy, Store(app.state_defaults))
        engine = ClusterObsEngine(workers=2)
        try:
            got = replay_obs(
                trace, policy, Store(app.state_defaults), engine=engine
            )
            assert got[0] == reference[0]
            assert got[1] == reference[1]
            assert engine._coordinator is None  # fell back inline
        finally:
            engine.close()


# -- session lifecycle ---------------------------------------------------------


class TestSessionLifecycle:
    def test_rewire_ships_no_program_bytes_rebuild_restarts(self):
        _, program = sharded_monitor()
        before = set(live_worker_pids())
        controller = SnapController(
            campus_topology(), program,
            options=CompilerOptions(engine="cluster"),
        )
        controller.submit()
        net_cold = controller.network()
        engine = net_cold.default_engine
        assert isinstance(engine, ClusterEngine)
        try:
            trace = workloads.background_traffic(SUBNETS, count=60, seed=4)
            assert replay(trace, net_cold).sent == 60
            coordinator = engine.coordinator
            assert coordinator is not None
            assert engine.last_run_stats["program_bytes"] > 0

            controller.fail_link("C1", "C5")  # TE rewire
            net_te = controller.network()
            assert net_te.default_engine is engine
            assert engine.coordinator is coordinator  # daemons survived
            assert net_te._exec_program_key == net_cold._exec_program_key
            assert net_te._exec_network_key != net_cold._exec_network_key
            assert replay(trace, net_te).sent == 60
            # The headline property: rewiring a warm cluster moves zero
            # program bytes — only the small network half is re-shipped.
            assert engine.last_run_stats["program_bytes"] == 0
            assert engine.last_run_stats["network_bytes"] > 0

            controller.update_policy(program)  # policy rebuild
            net_policy = controller.network()
            assert net_policy.default_engine is engine
            assert engine.coordinator is None  # cluster restarted
            assert replay(trace, net_policy).sent == 60  # fresh daemons
        finally:
            controller.close()
            assert engine.coordinator is None
        assert set(live_worker_pids()) == before

    def test_controller_close_leaves_no_orphans(self):
        _, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program,
            options=CompilerOptions(engine="cluster"),
        )
        controller.submit()
        trace = workloads.background_traffic(SUBNETS, count=40, seed=6)
        before = set(live_worker_pids())
        replay(trace, controller.network())
        assert set(live_worker_pids()) - before  # daemons were running
        controller.close()
        assert set(live_worker_pids()) == before

    def test_engine_close_reaps_daemon_children(self):
        snapshot, _ = sharded_monitor()
        engine = ClusterEngine(workers=2)
        trace = list(workloads.background_traffic(SUBNETS, count=40, seed=8))
        before = set(live_worker_pids())
        try:
            engine.run(snapshot.build_network(), trace)
            ours = set(live_worker_pids()) - before
            assert len(ours) == 2
        finally:
            engine.close()
        assert set(live_worker_pids()) == before

    def test_mixed_local_and_remote_lanes(self):
        """A pre-started daemon attaches by address next to a spawned
        local daemon; closing the engine leaves the attached daemon up
        (it is not ours to kill)."""
        process, host, port = spawn_worker_process(orphan_exit=True)
        try:
            engine = ClusterEngine(workers=1, addresses=[f"{host}:{port}"])
            try:
                snapshot, _ = sharded_monitor()
                trace = workloads.background_traffic(SUBNETS, count=150, seed=9)
                assert_cluster_equivalent(snapshot, trace, engine=engine)
                handles = engine.coordinator.handles()
                assert len(handles) == 2
                assert sum(1 for h in handles if h.process is None) == 1
                assert sum(h.jobs_done for h in handles) >= 2
            finally:
                engine.close()
            assert process.poll() is None  # attached daemon still alive
        finally:
            process.terminate()
            process.wait(timeout=15)


# -- fault injection -----------------------------------------------------------


class TestFaultInjection:
    def test_kill_worker_mid_run_requeues_byte_identical(self):
        """A daemon dying mid-run (chaos: abrupt exit on the next job)
        requeues its shard onto the survivor; the merged result is
        byte-identical to a sequential run."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=200, seed=13))
        engine = ClusterEngine(workers=2)
        try:
            engine.run(snapshot.build_network(), trace)  # warm the daemons
            victim = engine.coordinator.handles()[0]
            reply, _ = victim.request(wire.CHAOS, {"mode": "exit-on-next-run"})
            assert reply == wire.OK

            net_clu = snapshot.build_network()
            out = engine.run(net_clu, trace)
            net_seq = snapshot.build_network()
            reference = SequentialEngine().run(net_seq, trace)
            for a, b in zip(reference, out):
                assert record_view(a) == record_view(b)
            assert net_seq.global_store() == net_clu.global_store()
            assert net_seq.link_packets == net_clu.link_packets
            assert engine.last_run_stats["requeues"] >= 1
            assert engine.coordinator.worker_count() == 1
            assert not victim.alive
        finally:
            engine.close()

    def test_all_workers_dead_names_the_shard_then_recovers(self):
        """Only when no capacity remains does the failure surface — as a
        DataPlaneError naming the shard — and the next run starts a
        fresh cluster (the BrokenProcessPool recovery, cluster-shaped)."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=120, seed=3))
        engine = ClusterEngine(workers=2)
        try:
            engine.run(snapshot.build_network(), trace)
            for handle in engine.coordinator.handles():
                handle.request(wire.CHAOS, {"mode": "exit-on-next-run"})
            with pytest.raises(DataPlaneError, match="shard"):
                engine.run(snapshot.build_network(), trace)
            assert engine.coordinator is None  # dead cluster discarded
            out = engine.run(snapshot.build_network(), trace)  # fresh daemons
            assert len(out) == len(trace)
            assert engine.last_run_stats["workers"] == 2
        finally:
            engine.close()

    def test_worker_killed_between_runs_pruned_by_heartbeat(self):
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=100, seed=2))
        engine = ClusterEngine(workers=2)
        try:
            engine.run(snapshot.build_network(), trace)
            victim = engine.coordinator.handles()[1]
            victim.process.kill()
            victim.process.wait(timeout=15)
            net_clu = snapshot.build_network()
            out = engine.run(net_clu, trace)  # heartbeat prunes, run succeeds
            net_seq = snapshot.build_network()
            reference = SequentialEngine().run(net_seq, trace)
            for a, b in zip(reference, out):
                assert record_view(a) == record_view(b)
            assert engine.coordinator.worker_count() == 1
        finally:
            engine.close()

    def test_evicted_spec_is_reshipped_on_missing_reply(self):
        """The coordinator's view of worker caches can go stale (bounded
        worker-side caches evict).  A RUN against a missing spec gets an
        ERROR reply with ``missing`` — and a direct probe shows both
        halves of that protocol conversation."""
        process, host, port = spawn_worker_process(orphan_exit=True)
        handle = WorkerHandle(host, port, process=process)
        try:
            handle.connect()
            reply, payload = handle.request(wire.LOAD_NETWORK, {
                "key": 999, "program_key": 998, "blob": b"",
            })
            assert reply == wire.ERROR and payload["missing"] == "program"
            reply, payload = handle.request(wire.RUN_SHARD, {
                "network_key": 999, "ports": (), "variables": (),
                "state": {}, "batch": [],
            })
            assert reply == wire.ERROR and payload["missing"] == "network"
        finally:
            handle.close()

    def test_daemon_survives_stray_client_garbage(self):
        """A long-lived daemon on an open port meets port scanners and
        health probes: bytes that are not our protocol drop that
        connection, never the daemon."""
        process, host, port = spawn_worker_process(orphan_exit=True)
        handle = WorkerHandle(host, port, process=process)
        try:
            stray = socket.create_connection((host, port), timeout=5)
            stray.sendall(b"GET / HTTP/1.1\r\n\r\n")
            stray.close()
            handle.connect()  # daemon accepted the next coordinator
            assert handle.ping()
        finally:
            handle.close()

    def test_rejected_spec_is_an_error_reply_not_daemon_death(self):
        """A spec blob that fails to deserialize worker-side is a
        deterministic failure: the daemon answers ERROR and keeps
        serving — it must not die and masquerade as worker loss (which
        would cascade the same poison across every daemon)."""
        process, host, port = spawn_worker_process(orphan_exit=True)
        handle = WorkerHandle(host, port, process=process)
        try:
            handle.connect()
            reply, payload = handle.request(wire.LOAD_PROGRAM, {
                "key": 7, "blob": b"not a pickle",
            })
            assert reply == wire.ERROR
            assert "rejected" in payload["message"]
            handle.request(wire.LOAD_PROGRAM, {
                "key": 7, "blob": pickle.dumps({}),
            })
            reply, payload = handle.request(wire.LOAD_NETWORK, {
                "key": 8, "program_key": 7, "blob": b"garbage",
            })
            assert reply == wire.ERROR
            assert "rejected" in payload["message"]
            assert handle.ping()  # daemon survived both rejections
        finally:
            handle.close()

    def test_stale_cache_view_recovers_end_to_end(self):
        """Force the coordinator to believe a spec is cached that the
        worker does not hold: the missing-spec retry re-ships and the
        run still succeeds."""
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=80, seed=4))
        engine = ClusterEngine(workers=2)
        try:
            engine.run(snapshot.build_network(), trace)  # warm
            # Evict everything worker-side by restarting the daemons'
            # caches through chaos-free means: poison the coordinator's
            # view instead (the inverse direction is equivalent).
            net = snapshot.build_network()
            for handle in engine.coordinator.handles():
                handle.networks.add(net._exec_network_key)
                handle.programs.add(net._exec_program_key)
            out = engine.run(net, trace)
            reference = SequentialEngine().run(snapshot.build_network(), trace)
            for a, b in zip(reference, out):
                assert record_view(a) == record_view(b)
        finally:
            engine.close()
