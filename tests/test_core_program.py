"""Unit tests for Program, transforms, and small utilities."""

import time

import pytest

from repro.analysis.transform import namespace_state_vars, rename_state_vars
from repro.core.program import Program
from repro.lang import ast, parse
from repro.lang.errors import SnapError
from repro.lang.packet import make_packet
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.util.rng import make_rng
from repro.util.timer import PhaseTimer


class TestProgram:
    def test_from_source(self):
        program = Program.from_source("if srcport = 53 then id else drop")
        assert isinstance(program.policy, ast.If)

    def test_full_policy_prepends_assumption(self):
        program = Program.from_source(
            "outport <- 2", assumption="inport = 1"
        )
        full = program.full_policy()
        assert isinstance(full, ast.Seq)
        assert full.left == ast.Test("inport", 1)

    def test_no_assumption(self):
        program = Program.from_source("id")
        assert program.full_policy() == ast.Id()

    def test_state_defaults_inferred_and_overridable(self):
        program = Program.from_source(
            "c[srcip]++; s[srcip] <- True", state_defaults={"s": None}
        )
        assert program.state_defaults["c"] == 0
        assert program.state_defaults["s"] is None

    def test_rejects_non_policy(self):
        with pytest.raises(SnapError):
            Program("not a policy")

    def test_rejects_non_predicate_assumption(self):
        with pytest.raises(SnapError):
            Program(ast.Id(), assumption=ast.Mod("f", 1))

    def test_compose_parallel(self):
        a = Program.from_source("sa[srcip] <- 1", name="a")
        b = Program.from_source("sb[srcip] <- 2", name="b")
        combined = a.compose_parallel(b)
        assert isinstance(combined.policy, ast.Parallel)
        assert "sa" in combined.state_defaults
        assert "sb" in combined.state_defaults
        assert combined.name == "a+b"

    def test_compose_parallel_conjoins_assumptions(self):
        """Regression: the right operand's assumption used to be dropped."""
        a = Program.from_source("sa[srcip] <- 1", assumption="inport = 1")
        b = Program.from_source("sb[srcip] <- 2", assumption="srcport = 53")
        combined = a.compose_parallel(b)
        assert combined.assumption == ast.And(
            ast.Test("inport", 1), ast.Test("srcport", 53)
        )
        # Intersection semantics: only packets satisfying both pass the
        # combined assumption gate in the compiled policy.
        full = combined.full_policy()
        _, passed, _ = eval_policy(full, Store(), make_packet(inport=1, srcport=53))
        assert len(passed) == 1
        for pkt in (
            make_packet(inport=2, srcport=53),
            make_packet(inport=1, srcport=80),
        ):
            _, blocked, _ = eval_policy(full, Store(), pkt)
            assert blocked == frozenset()

    def test_compose_parallel_one_sided_assumption_kept(self):
        a = Program.from_source("sa[srcip] <- 1", assumption="inport = 1")
        b = Program.from_source("sb[srcip] <- 2")
        assert a.compose_parallel(b).assumption == ast.Test("inport", 1)
        assert b.compose_parallel(a).assumption == ast.Test("inport", 1)

    def test_compose_parallel_identical_assumptions_collapse(self):
        a = Program.from_source("sa[srcip] <- 1", assumption="inport = 1")
        b = Program.from_source("sb[srcip] <- 2", assumption="inport = 1")
        assert a.compose_parallel(b).assumption == ast.Test("inport", 1)


class TestRenameStateVars:
    def test_dict_mapping(self):
        policy = parse("s[srcip] <- True; t[srcip] = True")
        renamed = rename_state_vars(policy, {"s": "x"})
        assert ast.state_variables(renamed) == frozenset(("x", "t"))

    def test_namespace(self):
        policy = parse("s[srcip]++; if t[srcip] = 1 then id else drop")
        spaced = namespace_state_vars(policy, "app1.")
        assert ast.state_variables(spaced) == frozenset(("app1.s", "app1.t"))

    def test_semantics_preserved_modulo_renaming(self):
        policy = parse("c[srcip]++")
        renamed = namespace_state_vars(policy, "n.")
        pkt = make_packet(srcip=5)
        store1, _, _ = eval_policy(policy, Store({"c": 0}), pkt)
        store2, _, _ = eval_policy(renamed, Store({"n.c": 0}), pkt)
        assert store1.read("c", (5,)) == store2.read("n.c", (5,)) == 1

    def test_atomic_and_nested_structures(self):
        policy = parse("atomic(a[srcip] <- 1; b[srcip] <- 2) + !c[srcip]")
        renamed = namespace_state_vars(policy, "x.")
        assert ast.state_variables(renamed) == frozenset(("x.a", "x.b", "x.c"))


class TestPhaseTimer:
    def test_records_duration(self):
        timer = PhaseTimer()
        with timer.phase("P1"):
            time.sleep(0.01)
        assert timer.durations["P1"] >= 0.01

    def test_accumulates(self):
        timer = PhaseTimer()
        for _ in range(2):
            with timer.phase("P1"):
                pass
        assert "P1" in timer.durations

    def test_total_subset(self):
        timer = PhaseTimer()
        timer.durations.update({"P1": 1.0, "P2": 2.0, "P3": 4.0})
        assert timer.total(("P1", "P3")) == pytest.approx(5.0)
        assert timer.total() == pytest.approx(7.0)

    def test_merged(self):
        a = PhaseTimer()
        a.durations["P1"] = 1.0
        b = PhaseTimer()
        b.durations.update({"P1": 2.0, "P2": 3.0})
        merged = a.merged(b)
        assert merged.durations == {"P1": 3.0, "P2": 3.0}

    def test_exception_still_recorded(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("P1"):
                raise ValueError("boom")
        assert "P1" in timer.durations


class TestRng:
    def test_seeded_deterministic(self):
        assert make_rng(7).integers(0, 100) == make_rng(7).integers(0, 100)

    def test_passthrough_generator(self):
        rng = make_rng(3)
        assert make_rng(rng) is rng
