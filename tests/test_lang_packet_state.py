"""Unit tests for packets and the state store."""

import pytest

from repro.lang.errors import SnapError
from repro.lang.packet import Packet, make_packet
from repro.lang.state import StateVariable, Store


class TestPacket:
    def test_get_and_missing(self):
        pkt = make_packet(srcip=1, dstip=2)
        assert pkt.get("srcip") == 1
        assert pkt.get("nonexistent") is None

    def test_modify_is_functional(self):
        pkt = make_packet(srcip=1)
        pkt2 = pkt.modify("srcip", 9)
        assert pkt.get("srcip") == 1
        assert pkt2.get("srcip") == 9

    def test_modify_many(self):
        pkt = make_packet(a=1).modify_many({"b": 2, "c": 3})
        assert pkt.get("b") == 2 and pkt.get("c") == 3

    def test_modify_many_empty_returns_self(self):
        pkt = make_packet(a=1)
        assert pkt.modify_many({}) is pkt

    def test_without(self):
        pkt = make_packet(a=1, b=2).without("a")
        assert pkt.get("a") is None
        assert pkt.get("b") == 2

    def test_equality_ignores_none_fields(self):
        assert make_packet(a=1, b=None) == make_packet(a=1)

    def test_hash_consistent_with_equality(self):
        assert hash(make_packet(a=1, b=None)) == hash(make_packet(a=1))

    def test_usable_in_sets(self):
        s = {make_packet(a=1), make_packet(a=1), make_packet(a=2)}
        assert len(s) == 2

    def test_contains(self):
        pkt = make_packet(a=1)
        assert "a" in pkt
        assert "b" not in pkt

    def test_repr_mentions_fields(self):
        assert "srcip=5" in repr(make_packet(srcip=5))


class TestStateVariable:
    def test_default_read(self):
        var = StateVariable("s", default=0)
        assert var.get((1,)) == 0

    def test_set_get(self):
        var = StateVariable("s")
        var.set((1, 2), True)
        assert var.get((1, 2)) is True

    def test_increment_from_default(self):
        var = StateVariable("c", default=0)
        var.increment((7,))
        var.increment((7,))
        assert var.get((7,)) == 2

    def test_decrement(self):
        var = StateVariable("c", default=0)
        var.increment((7,), -1)
        assert var.get((7,)) == -1

    def test_increment_none_default_treated_as_zero(self):
        var = StateVariable("c", default=None)
        var.increment((1,))
        assert var.get((1,)) == 1

    def test_increment_non_numeric_raises(self):
        var = StateVariable("c", default=0)
        var.set((1,), True)
        with pytest.raises(SnapError):
            var.increment((1,))

    def test_copy_is_independent(self):
        var = StateVariable("s", default=0)
        var.set((1,), 5)
        dup = var.copy()
        dup.set((1,), 6)
        assert var.get((1,)) == 5

    def test_equality_by_content(self):
        a = StateVariable("s", default=0)
        b = StateVariable("s", default=0)
        a.set((1,), 2)
        assert a != b
        b.set((1,), 2)
        assert a == b

    def test_equality_with_explicit_default_entries(self):
        a = StateVariable("s", default=0)
        b = StateVariable("s", default=0)
        a.set((1,), 0)  # explicitly stored default value
        assert a == b


class TestStore:
    def test_auto_creates_variables(self):
        store = Store({"c": 0})
        assert store.read("c", (1,)) == 0

    def test_write_read(self):
        store = Store()
        store.write("s", (1,), "x")
        assert store.read("s", (1,)) == "x"

    def test_copy_independent(self):
        store = Store({"c": 0})
        store.write("c", (1,), 5)
        dup = store.copy()
        dup.write("c", (1,), 9)
        assert store.read("c", (1,)) == 5

    def test_equality(self):
        a = Store({"c": 0})
        b = Store({"c": 0})
        assert a == b
        a.write("c", (1,), 1)
        assert a != b

    def test_declare_defaults_after_creation(self):
        store = Store()
        _ = store.variable("c")
        store.declare_defaults({"c": 0})
        assert store.read("c", (9,)) == 0
