"""Tests for the unified telemetry layer (:mod:`repro.obs`).

The load-bearing properties:

* the metrics registry is exact under concurrent hammering and its
  Prometheus exposition passes the grammar validator;
* spans nest parent/child on one thread and stitch across the cluster
  wire (worker spans adopt the coordinator's trace id);
* postcard sampling is **behaviour-preserving**: a sampled replay is
  field-for-field identical to an unsampled one — records, stores,
  link counters — on every engine, because the traced walk executes
  the same lowered opcodes;
* telemetry off means the fast paths stay fast: the sequential engine
  takes its batch path, record methods are branch-only, and a replay
  stays within a loose factor of the disabled run (the precise ≤2 %
  guard lives in ``benchmarks/bench_telemetry.py``).
"""

import json
import threading

import pytest

from repro import obs, workloads
from repro.cluster import ClusterEngine
from repro.dataplane.engine import (
    SequentialEngine,
    ShardedEngine,
    get_engine,
)
from repro.obs import postcards
from repro.obs.metrics import MetricsRegistry, validate_prometheus_text
from repro.obs.runstats import RunStats
from repro.obs.tracing import NOOP_SPAN, TRACER, Tracer
from repro.obs import __main__ as obs_cli
from repro.workloads import replay

from tests.test_engine import SUBNETS, compiled, record_view, sharded_monitor


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with default telemetry, empty rings."""
    obs.configure(obs.TelemetryConfig())
    TRACER.reset()
    postcards.reset()
    yield
    obs.configure(obs.TelemetryConfig())
    TRACER.reset()
    postcards.reset()


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "help").labels(kind="a").inc()
        registry.counter("t_total").labels(kind="a").inc(4)
        registry.gauge("t_gauge").set(7)
        registry.gauge("t_gauge").labels().dec(2)
        hist = registry.histogram("t_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)  # beyond the last bound: +Inf only

        snap = registry.snapshot()
        assert snap["t_total"]["series"][0]["value"] == 5
        assert snap["t_total"]["series"][0]["labels"] == {"kind": "a"}
        assert snap["t_gauge"]["series"][0]["value"] == 5
        series = snap["t_seconds"]["series"][0]["value"]
        assert series["count"] == 3
        assert series["buckets"] == {"0.1": 1, "1.0": 2}

    def test_registration_is_idempotent_but_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total")
        assert registry.counter("t_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_total")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("t_ok").labels(**{"bad-label": "x"})

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        child = registry.counter("t_total").labels(kind="a")
        child.inc(100)
        registry.histogram("t_seconds").observe(1.0)
        assert child.value == 0
        # Handles registered while disabled record once enabled.
        registry.enabled = True
        child.inc()
        assert child.value == 1

    def test_exact_under_eight_thread_hammering(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total")
        gauge = registry.gauge("t_gauge")
        hist = registry.histogram("t_seconds")
        rounds = 2000

        def hammer(thread_index):
            mine = counter.labels(thread=str(thread_index % 2))
            for _ in range(rounds):
                mine.inc()
                gauge.inc()
                hist.observe(0.001)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Two label sets, four threads each: not one increment lost.
        assert sum(c.value for c in counter.children()) == 8 * rounds
        assert gauge.labels().value == 8 * rounds
        assert hist.labels().count == 8 * rounds

    def test_prometheus_output_is_grammar_valid(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "with help").labels(
            path='quo"ted\\slash', kind="a b"
        ).inc(2)
        registry.histogram("t_seconds", "timings").observe(0.3)
        text = registry.render_prometheus()
        assert validate_prometheus_text(text) == []
        assert "t_seconds_bucket" in text and "t_seconds_count" in text

    def test_validator_rejects_malformed_text(self):
        bad = "bad metric line\n# TYPE t_seconds histogram\n"
        problems = validate_prometheus_text(bad)
        assert any("malformed sample" in p for p in problems)
        assert any("missing its _bucket" in p for p in problems)


# -- trace spans --------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        inner_rec, outer_rec = tracer.spans()
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert inner_rec["duration"] is not None

    def test_explicit_dict_parent_stitches_the_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            context = outer.context()
        with tracer.span("remote", parent=context) as remote:
            assert remote.trace_id == context["trace_id"]
            assert remote.parent_id == context["span_id"]

    def test_disabled_tracer_yields_shared_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            assert span is NOOP_SPAN
            span.set_attr("k", "v")  # all no-ops
        assert tracer.spans() == []

    def test_ring_is_bounded(self):
        tracer = Tracer(ring_size=8)
        for index in range(20):
            with tracer.span("s", index=index):
                pass
        spans = tracer.spans()
        assert len(spans) == 8
        assert spans[0]["attrs"]["index"] == 12

    def test_capture_slices_out_one_jobs_spans(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        with tracer.capture() as captured:
            with tracer.span("job"):
                pass
        assert [s["name"] for s in captured] == ["job"]
        tracer.adopt(captured)
        assert [s["name"] for s in tracer.spans()].count("job") == 2


# -- postcards: behaviour-preserving sampling --------------------------------


def _monitor_nets():
    snapshot, _ = sharded_monitor()
    return snapshot


def assert_sampled_run_identical(make_engine, every=3, count=60):
    """Engine run with sampling on ≡ the same run with sampling off."""
    snapshot = _monitor_nets()
    trace = list(workloads.background_traffic(SUBNETS, count=count, seed=9))

    net_plain = snapshot.build_network()
    plain = make_engine().run(net_plain, trace)

    net_sampled = snapshot.build_network()
    with postcards.sampling(every):
        sampled = make_engine().run(net_sampled, trace)

    for per_plain, per_sampled in zip(plain, sampled):
        assert record_view(per_plain) == record_view(per_sampled)
    assert net_plain.global_store() == net_sampled.global_store()
    assert net_plain.link_packets == net_sampled.link_packets
    assert record_view(net_plain.deliveries) == record_view(
        net_sampled.deliveries
    )

    cards = postcards.postcards()
    assert {card["index"] for card in cards} == set(range(0, count, every))
    return cards


class TestPostcards:
    def test_sampler_is_deterministic_on_index(self):
        sampler = postcards.PostcardSampler(4)
        assert [i for i in range(10) if sampler.should(i)] == [0, 4, 8]
        with pytest.raises(ValueError):
            postcards.PostcardSampler(0)

    def test_sequential_sampled_run_identical_and_postcards_full(self):
        cards = assert_sampled_run_identical(SequentialEngine)
        card = cards[0]
        kinds = [event["ev"] for event in card["events"]]
        assert "process" in kinds  # visited at least one switch
        assert "hop" in kinds or any(
            k in ("emit", "drop", "pause") for k in kinds
        )
        # The monitor app increments count[inport] on every packet.
        assert any(k in ("state_delta", "state_write") for k in kinds)
        assert any(k in ("emit", "drop") for k in kinds)
        assert all(
            delivery["egress"] is not None or delivery["hops"] >= 0
            for delivery in card["deliveries"]
        )

    def test_sharded_sampled_run_identical(self):
        assert_sampled_run_identical(ShardedEngine)

    def test_process_pool_sampled_run_identical(self):
        assert_sampled_run_identical(lambda: get_engine("process"), count=30)

    def test_postcards_count_metric_tracks_ring(self):
        before = obs.REGISTRY.counter("snap_postcards_total").labels().value
        assert_sampled_run_identical(SequentialEngine, every=10, count=20)
        after = obs.REGISTRY.counter("snap_postcards_total").labels().value
        assert after - before == 2


# -- engine spans and run stats -----------------------------------------------


class TestEngineTelemetry:
    def test_sharded_run_emits_engine_and_lane_spans(self):
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=30, seed=3))
        ShardedEngine().run(snapshot.build_network(), trace)
        runs = TRACER.spans("engine.run")
        assert runs and runs[-1]["attrs"]["engine"] == "sharded"
        lanes = [
            s for s in TRACER.spans("engine.lane")
            if s["trace_id"] == runs[-1]["trace_id"]
        ]
        assert len(lanes) == runs[-1]["attrs"]["lanes"]
        assert all(s["parent_id"] == runs[-1]["span_id"] for s in lanes)

    def test_run_stats_reads_like_the_old_dict(self):
        stats = RunStats(lanes=4, parallelism=2, collapse_reasons={})
        assert dict(stats) == {
            "lanes": 4, "parallelism": 2, "collapse_reasons": {},
        }
        assert stats["lanes"] == 4
        assert "workers" not in stats
        with pytest.raises(KeyError):
            stats["workers"]
        assert stats.get("workers", 0) == 0
        assert bool(RunStats()) is False

    def test_run_stats_publish_feeds_the_registry(self):
        runs = obs.REGISTRY.counter("snap_engine_runs_total")
        packets = obs.REGISTRY.counter("snap_engine_packets_total")
        before = runs.labels(engine="t-pub").value
        RunStats(lanes=3, payload_bytes=100).publish("t-pub", packets=17)
        assert runs.labels(engine="t-pub").value == before + 1
        assert packets.labels(engine="t-pub").value >= 17
        lanes = obs.REGISTRY.gauge("snap_engine_lanes")
        assert lanes.labels(engine="t-pub").value == 3

    def test_disabled_telemetry_keeps_the_sequential_fast_path(self):
        obs.configure(False)
        snapshot, _ = compiled(policy=workloads_noop_policy())
        network = snapshot.build_network()
        calls = []
        original = network.inject_many
        network.inject_many = lambda arrivals: (
            calls.append(len(list(arrivals))) or original(arrivals)
        )
        trace = list(workloads.background_traffic(SUBNETS, count=12, seed=1))
        SequentialEngine().run(network, trace)
        assert calls == [12]  # one batch call, no per-packet branching
        assert TRACER.spans() == []
        assert postcards.postcards() == []


def workloads_noop_policy():
    from repro.apps import assign_egress

    return assign_egress(SUBNETS)


# -- cluster round trip -------------------------------------------------------


class TestClusterTelemetry:
    def test_worker_spans_and_postcards_cross_the_wire(self):
        snapshot, _ = sharded_monitor()
        trace = list(workloads.background_traffic(SUBNETS, count=40, seed=5))

        net_seq = snapshot.build_network()
        seq = SequentialEngine().run(net_seq, trace)

        engine = ClusterEngine(workers=2)
        try:
            net_clu = snapshot.build_network()
            with postcards.sampling(5):
                clu = engine.run(net_clu, trace)
        finally:
            engine.close()

        # Sampling over the wire is still behaviour-preserving.
        for per_seq, per_clu in zip(seq, clu):
            assert record_view(per_seq) == record_view(per_clu)
        assert net_seq.global_store() == net_clu.global_store()
        assert net_seq.link_packets == net_clu.link_packets

        runs = [
            s for s in TRACER.spans("engine.run")
            if s["attrs"].get("engine") == "cluster"
        ]
        assert runs
        run = runs[-1]
        workers = [
            s for s in TRACER.spans("worker.run_shard")
            if s["trace_id"] == run["trace_id"]
        ]
        # Every shard's worker span stitched into the coordinator trace,
        # parented directly under engine.run, from a different process.
        assert len(workers) == run["attrs"]["lanes"]
        parent_pid = run["span_id"].split("-")[0]
        for span in workers:
            assert span["parent_id"] == run["span_id"]
            assert span["span_id"].split("-")[0] != parent_pid

        # The workers' sampled postcards came back in the RESULT frames.
        cards = postcards.postcards()
        assert {c["index"] for c in cards} == set(range(0, 40, 5))
        assert engine.last_run_stats["workers"] == 2


# -- configuration and snapshot ----------------------------------------------


class TestConfiguration:
    def test_resolve_config_accepts_bool_str_and_config(self):
        assert obs.resolve_config(True).metrics is True
        assert obs.resolve_config("off").tracing is False
        config = obs.TelemetryConfig(postcard_every=7)
        assert obs.resolve_config(config) is config
        with pytest.raises(ValueError):
            obs.resolve_config("sometimes")
        with pytest.raises(ValueError):
            obs.TelemetryConfig(postcard_every=-1)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("SNAP_TELEMETRY", "off")
        monkeypatch.setenv("SNAP_TELEMETRY_POSTCARDS", "9")
        config = obs.resolve_config(None)
        assert config.metrics is False and config.tracing is False
        assert config.postcard_every == 9

    def test_compiler_options_resolve_telemetry(self):
        from repro.core.options import CompilerOptions

        options = CompilerOptions(telemetry="on")
        assert isinstance(options.telemetry, obs.TelemetryConfig)
        assert CompilerOptions().telemetry is None

    def test_configure_flips_the_shared_switches(self):
        obs.configure(obs.TelemetryConfig(
            metrics=False, tracing=False, postcard_every=4
        ))
        assert obs.REGISTRY.enabled is False
        assert TRACER.enabled is False
        assert postcards.active_sampler().every == 4

    def test_write_snapshot_roundtrips(self, tmp_path):
        with TRACER.span("t.snapshot"):
            pass
        path = obs.write_snapshot(str(tmp_path / "snap.json"))
        data = json.loads(open(path).read())
        assert data["meta"]["telemetry"]["metrics"] is True
        assert any(s["name"] == "t.snapshot" for s in data["spans"])
        assert validate_prometheus_text(data["prometheus"]) == []
        assert obs.write_snapshot(None) is None  # no path configured


# -- CLI + acceptance flow ----------------------------------------------------


class TestCli:
    def test_check_prom_passes(self, capsys):
        assert obs_cli.main(["check-prom"]) == 0
        assert "prometheus exporter ok" in capsys.readouterr().out

    def test_dump_renders_compile_spans_metrics_and_postcards(
        self, tmp_path, capsys
    ):
        # The acceptance flow: compile, replay with sampling, snapshot,
        # then `python -m repro.obs dump` must show compile-phase spans,
        # per-lane engine metrics, and at least one sampled postcard.
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        trace = workloads.background_traffic(SUBNETS, count=24, seed=4)
        with postcards.sampling(6):
            stats = replay(trace, network, engine=ShardedEngine())
        assert stats.sent == 24
        path = obs.write_snapshot(str(tmp_path / "telemetry.json"))

        assert obs_cli.main(["dump", path]) == 0
        out = capsys.readouterr().out
        assert "compile.phase" in out
        assert "engine.lane" in out and "engine.run" in out
        assert "snap_engine_packets_total" in out
        assert "pkt#0" in out  # index 0 is always sampled

    def test_dump_prometheus_is_valid(self, tmp_path, capsys):
        path = obs.write_snapshot(str(tmp_path / "t.json"))
        assert obs_cli.main(["dump", path, "--prometheus"]) == 0
        assert validate_prometheus_text(capsys.readouterr().out) == []
