"""Tests for the columnar vector execution tier (``engine="vector"``).

Four load-bearing properties:

* both vector tiers (interpreted and generated-kernel) are byte-identical
  to the sequential engine — records, link counters, state stores — on
  vectorizable, fork-heavy, droppy, and invalid-egress programs;
* programs the tier cannot vectorize (PAUSE, STWRITE, state-test
  branches) fall back to the scalar lane — per group when the state
  footprints are disjoint, whole-batch when a fallback row shares state
  with vectorized rows (deferred deltas must not reorder around scalar
  state reads);
* generated kernels are cached by the execution-program token: a TE
  rewire re-``exec``s **zero** kernel sources, a policy rebuild mints
  fresh ones;
* without numpy the engines refuse cleanly and the lane factory
  degrades to the scalar lane.
"""

import pytest

from repro.apps import assign_egress, default_subnets, port_assumption
from repro.apps.chimera import dns_tunnel_detect
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.dataplane import vector
from repro.dataplane.engine import (
    SequentialEngine,
    Shard,
    _Lane,
    get_engine,
    make_lane,
    plan_for,
)
from repro.dataplane.vector import (
    VectorEngine,
    VectorJitEngine,
    VectorLane,
    kernel_cache_stats,
)
from repro.lang import ast, make_packet
from repro.lang.errors import DataPlaneError
from repro.topology.graph import Topology
from repro import workloads
from repro.workloads import replay

from tests.test_engine import (
    PORTS,
    SUBNETS,
    assert_engines_equivalent,
    compiled,
    ip,
    record_view,
    sharded_monitor,
)

pytest.importorskip("numpy")

ENGINES = [VectorEngine(max_workers=2), VectorJitEngine(max_workers=2)]


def stats_delta(before, key):
    return kernel_cache_stats()[key] - before[key]


# -- equivalence on the Table-3 shapes ----------------------------------------


class TestVectorEquivalence:
    @pytest.mark.parametrize("engine", ENGINES, ids=["vector", "vector-jit"])
    def test_sharded_monitor_background(self, engine):
        snapshot, program = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=300, seed=7)
        assert_engines_equivalent(snapshot, program, trace, sharded=engine)

    @pytest.mark.parametrize("engine", ENGINES, ids=["vector", "vector-jit"])
    def test_multicast_fork_ordering(self, engine):
        """FORK row duplication surfaces records in DFS emission order."""
        policy = ast.If(
            ast.Test("dstport", 99),
            ast.Parallel(ast.Mod("outport", 2), ast.Mod("outport", 5)),
            assign_egress(SUBNETS),
        )
        snapshot, program = compiled(policy=policy, name="multicast")
        trace = [
            (
                make_packet(
                    srcip=SUBNETS[p].host(4), dstip=SUBNETS[6].host(4),
                    srcport=40000, dstport=99 if p % 2 else 53,
                ),
                p,
            )
            for p in PORTS
        ] + list(workloads.background_traffic(SUBNETS, count=120, seed=3))
        assert_engines_equivalent(snapshot, program, trace, sharded=engine)

    @pytest.mark.parametrize("engine", ENGINES, ids=["vector", "vector-jit"])
    def test_drops_and_invalid_egress(self, engine):
        """DROP retirement and emits to unknown ports keep the scalar
        lane's unstripped packets and ``egress=None`` records."""
        policy = ast.If(
            ast.Test("srcport", 7),
            ast.Drop(),
            ast.If(
                ast.Test("dstport", 99),
                ast.Mod("outport", 999),  # no such port -> invalid egress
                assign_egress(SUBNETS),
            ),
        )
        snapshot, program = compiled(policy=policy, name="droppy")
        trace = [
            (
                make_packet(
                    srcip=SUBNETS[p].host(9), dstip=SUBNETS[6].host(9),
                    srcport=7 if p % 2 else 40000, dstport=99,
                ),
                p,
            )
            for p in PORTS
        ] + list(workloads.background_traffic(SUBNETS, count=120, seed=5))
        # Engine-vs-engine only: OBS eval has no port map, so it calls
        # the outport-999 packets delivered (every engine disagrees with
        # it identically — that mismatch predates the vector tier).
        net_seq = snapshot.build_network()
        net_vec = snapshot.build_network()
        seq = SequentialEngine().run(net_seq, list(trace))
        vec = engine.run(net_vec, list(trace))
        assert len(seq) == len(vec)
        for a, b in zip(seq, vec):
            assert record_view(a) == record_view(b)
        assert net_seq.global_store() == net_vec.global_store()
        assert net_seq.link_packets == net_vec.link_packets

    def test_replay_stats_match_sequential(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=200, seed=3)
        stats_seq = replay(trace, snapshot.build_network(), engine="sequential")
        stats_vec = replay(trace, snapshot.build_network(), engine="vector")
        assert stats_seq.sent == stats_vec.sent
        assert stats_seq.delivered == stats_vec.delivered
        assert stats_seq.dropped == stats_vec.dropped
        assert stats_seq.per_egress == stats_vec.per_egress
        assert stats_seq.total_hops == stats_vec.total_hops


# -- the scalar fallback ------------------------------------------------------


def tiny_topology() -> Topology:
    """Two switches, three ports — small enough that a variable shared
    by two ingress ports stays placeable (the campus MILP refuses the
    shape, so the mixed-shard path needs its own topology)."""
    topo = Topology("tiny")
    topo.add_switch("A")
    topo.add_switch("B")
    topo.add_link("A", "B", 1000.0)
    topo.attach_port(1, "A")
    topo.attach_port(2, "A")
    topo.attach_port(3, "B")
    topo.validate()
    return topo


def tiny_trace(count=120, seed=2):
    subnets = default_subnets(3)
    return list(workloads.background_traffic(subnets, count=count, seed=seed))


class TestScalarFallback:
    @pytest.mark.parametrize("engine", ENGINES, ids=["vector", "vector-jit"])
    def test_state_heavy_program_falls_back_whole_batch(self, engine):
        """dns-tunnel branches on state from every entry: nothing
        vectorizes, every lane runs the scalar path — byte-identically."""
        snapshot, program = compiled(app=dns_tunnel_detect(threshold=3))
        attack = workloads.dns_tunnel_attack(
            ip("10.0.6.66"), 6, ip("10.0.1.53"), 1, num_responses=4
        )
        before = kernel_cache_stats()
        assert_engines_equivalent(snapshot, program, attack, sharded=engine)
        assert stats_delta(before, "kernel_calls") == 0  # nothing vectorized
        assert stats_delta(before, "plans") > 0  # ... after actually planning

    def test_mixed_shard_overlapping_state_runs_scalar(self):
        """Port 1 increments ``v`` (vectorizable), port 2 branches on
        ``v`` (scalar fallback); the planner puts both in one shard, and
        the overlap forces the whole batch onto the scalar lane."""
        subnets = default_subnets(3)
        policy = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("v", ast.Value(0)),
                ast.Id(),
            ),
            ast.Seq(
                ast.If(
                    ast.And(
                        ast.Test("inport", 2),
                        ast.StateTest("v", (ast.Value(0),), ast.Value(3)),
                    ),
                    ast.Drop(),
                    ast.Id(),
                ),
                assign_egress(subnets),
            ),
        )
        program = Program(
            policy, assumption=port_assumption(subnets),
            state_defaults={"v": 0}, name="mixed-tiny",
        )
        snapshot = SnapController(tiny_topology(), program).submit()
        plan = plan_for(snapshot.build_network())
        assert any(
            set(shard.ports) == {1, 2} and shard.variables == {"v"}
            for shard in plan.shards
        )
        # Only ports 1 and 2: the whole run goes through the mixed lane.
        trace = [
            (packet, 1 + (i % 2))
            for i, (packet, _) in enumerate(tiny_trace(count=80))
        ]
        net_seq = snapshot.build_network()
        seq = SequentialEngine().run(net_seq, trace)
        for engine in ENGINES:
            before = kernel_cache_stats()
            net = snapshot.build_network()
            out = engine.run(net, trace)
            assert stats_delta(before, "kernel_calls") == 0  # demoted
            for a, b in zip(seq, out):
                assert record_view(a) == record_view(b)
            assert net.global_store() == net_seq.global_store()
            assert net.link_packets == net_seq.link_packets

    def test_mixed_lane_disjoint_state_vectorizes_the_vector_rows(self):
        """With disjoint footprints a single lane runs its vectorizable
        group columnar and its state-test group scalar — and still
        matches the pure scalar lane row for row."""
        subnets = default_subnets(3)
        policy = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("v", ast.Value(0)),
                ast.Id(),
            ),
            ast.Seq(
                ast.If(
                    ast.And(
                        ast.Test("inport", 2),
                        ast.StateTest("w", (ast.Value(0),), ast.Value(3)),
                    ),
                    ast.Drop(),
                    ast.Id(),
                ),
                assign_egress(subnets),
            ),
        )
        program = Program(
            policy, assumption=port_assumption(subnets),
            state_defaults={"v": 0, "w": 0}, name="disjoint-tiny",
        )
        snapshot = SnapController(tiny_topology(), program).submit()
        trace = tiny_trace(count=90)
        batch = [
            (i, packet, 1 + (i % 2)) for i, (packet, _) in enumerate(trace)
        ]
        # Merging two proven-disjoint shards into one lane is always
        # sound; it is the only way to get a genuinely mixed batch here.
        shard = Shard((1, 2), frozenset({"v", "w"}))
        net_scalar = snapshot.build_network()
        scalar_results, scalar_links = _Lane(
            net_scalar, shard, list(batch)
        ).run()
        for jit in (False, True):
            before = kernel_cache_stats()
            net = snapshot.build_network()
            results, links = VectorLane(
                net, shard, list(batch), jit=jit
            ).run()
            assert stats_delta(before, "kernel_calls") > 0  # port 1 rows
            assert links == scalar_links
            assert sorted(results) == sorted(scalar_results)
            for index in results:
                assert record_view(results[index]) == record_view(
                    scalar_results[index]
                )
            assert net.global_store() == net_scalar.global_store()


class TestCommutativeFastPath:
    """The opt-in commutative fast path (``commute_fastpath=True`` /
    ``SNAP_VECTOR_COMMUTE=1``) keeps vector groups columnar when the
    only state they share with fallback rows is increment-only and
    never tested — exactly the footprint the effect analyzer proves
    order-independent."""

    @staticmethod
    def _commuting_program():
        """Port 1 increments ``count`` (vectorizable); ports 2/3 also
        increment ``count`` but additionally assign ``log`` from a
        packet field (STWRITE -> scalar fallback).  ``count`` is
        delta-only and never tested, so deferring its vector deltas
        past the scalar rows cannot change any observable."""
        subnets = default_subnets(3)
        policy = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("count", ast.Value(0)),
                ast.Seq(
                    ast.StateIncr("count", ast.Value(0)),
                    ast.StateMod("log", ast.Value(0), ast.Field("srcport")),
                ),
            ),
            assign_egress(subnets),
        )
        program = Program(
            policy, assumption=port_assumption(subnets),
            state_defaults={"count": 0, "log": 0}, name="commute-tiny",
        )
        return SnapController(tiny_topology(), program).submit()

    def _trace(self):
        return [
            (packet, 1 + (i % 2))
            for i, (packet, _) in enumerate(tiny_trace(count=80))
        ]

    def test_default_engine_still_demotes(self):
        """Pins the conservative over-demotion: without the flag the
        shared ``count`` forces the whole batch scalar even though its
        updates commute."""
        snapshot = self._commuting_program()
        trace = self._trace()
        for engine in ENGINES:
            before = kernel_cache_stats()
            engine.run(snapshot.build_network(), list(trace))
            assert stats_delta(before, "kernel_calls") == 0

    @pytest.mark.parametrize("jit", [False, True], ids=["vector", "vector-jit"])
    def test_fastpath_vectorizes_and_matches_sequential(self, jit):
        snapshot = self._commuting_program()
        trace = self._trace()
        net_seq = snapshot.build_network()
        seq = SequentialEngine().run(net_seq, list(trace))
        engine = (
            VectorJitEngine(max_workers=2, commute_fastpath=True)
            if jit
            else VectorEngine(max_workers=2, commute_fastpath=True)
        )
        before = kernel_cache_stats()
        net = snapshot.build_network()
        out = engine.run(net, list(trace))
        assert stats_delta(before, "kernel_calls") > 0  # stayed columnar
        assert len(out) == len(seq)
        for a, b in zip(seq, out):
            assert record_view(a) == record_view(b)
        assert net.global_store() == net_seq.global_store()
        assert net.link_packets == net_seq.link_packets

    def test_env_var_enables_fastpath(self, monkeypatch):
        monkeypatch.setenv("SNAP_VECTOR_COMMUTE", "1")
        assert VectorEngine(max_workers=1).commute_fastpath is True
        monkeypatch.delenv("SNAP_VECTOR_COMMUTE")
        assert VectorEngine(max_workers=1).commute_fastpath is False

    def test_tested_overlap_still_demotes_under_flag(self):
        """A shared var that a fallback row *tests* is excluded from the
        commutable set — the flag must not unlock it."""
        subnets = default_subnets(3)
        policy = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("v", ast.Value(0)),
                ast.Id(),
            ),
            ast.Seq(
                ast.If(
                    ast.And(
                        ast.Test("inport", 2),
                        ast.StateTest("v", (ast.Value(0),), ast.Value(3)),
                    ),
                    ast.Drop(),
                    ast.Id(),
                ),
                assign_egress(subnets),
            ),
        )
        program = Program(
            policy, assumption=port_assumption(subnets),
            state_defaults={"v": 0}, name="tested-tiny",
        )
        snapshot = SnapController(tiny_topology(), program).submit()
        trace = self._trace()
        net_seq = snapshot.build_network()
        seq = SequentialEngine().run(net_seq, list(trace))
        engine = VectorEngine(max_workers=2, commute_fastpath=True)
        before = kernel_cache_stats()
        net = snapshot.build_network()
        out = engine.run(net, list(trace))
        assert stats_delta(before, "kernel_calls") == 0  # demoted anyway
        for a, b in zip(seq, out):
            assert record_view(a) == record_view(b)
        assert net.global_store() == net_seq.global_store()


# -- kernel cache across the session lifecycle --------------------------------


class TestKernelCache:
    def test_rewire_reexecs_nothing_rebuild_recompiles(self):
        """A TE rewire keeps the execution-program token — and with it
        every generated kernel; a policy rebuild mints new ones."""
        from repro.topology.campus import campus_topology

        _, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program,
            options=CompilerOptions(engine="vector-jit"),
        )
        controller.submit()
        try:
            net_cold = controller.network()
            trace = workloads.background_traffic(SUBNETS, count=80, seed=4)
            assert replay(trace, net_cold).sent == 80
            warm = kernel_cache_stats()
            assert warm["compiles"] > 0 or warm["cache_hits"] > 0

            controller.fail_link("C1", "C5")  # TE rewire
            net_te = controller.network()
            assert net_te._exec_program_key == net_cold._exec_program_key
            before = kernel_cache_stats()
            assert replay(trace, net_te).sent == 80
            assert stats_delta(before, "compiles") == 0  # zero re-exec
            assert stats_delta(before, "cache_hits") > 0  # warm kernels
            assert stats_delta(before, "plans") == 0  # not even re-planned

            controller.update_policy(program)  # policy rebuild
            net_new = controller.network()
            assert net_new._exec_program_key != net_cold._exec_program_key
            before = kernel_cache_stats()
            assert replay(trace, net_new).sent == 80
            assert stats_delta(before, "compiles") > 0  # fresh kernels
        finally:
            controller.close()

    def test_repeat_replays_reuse_kernels(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        trace = list(workloads.background_traffic(SUBNETS, count=60, seed=9))
        engine = get_engine("vector-jit")
        engine.run(network, trace)
        before = kernel_cache_stats()
        engine.run(network, trace)
        assert stats_delta(before, "compiles") == 0
        assert stats_delta(before, "plans") == 0
        assert stats_delta(before, "cache_hits") > 0


# -- graceful degradation without numpy ---------------------------------------


class TestOptionalNumpy:
    def test_engine_refuses_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "np", None)
        with pytest.raises(DataPlaneError, match="numpy"):
            VectorEngine()

    def test_lane_factory_degrades_to_scalar(self, monkeypatch):
        monkeypatch.setattr(vector, "np", None)
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        shard = plan_for(network).shards[0]
        lane = vector.make_vector_lane("vector", network, shard, [])
        assert isinstance(lane, _Lane)

    def test_make_lane_kinds(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        shard = plan_for(network).shards[0]
        assert isinstance(make_lane(None, network, shard, []), _Lane)
        assert isinstance(
            make_lane("vector", network, shard, []), VectorLane
        )
        assert make_lane("vector-jit", network, shard, []).jit is True
        with pytest.raises(DataPlaneError, match="lane"):
            make_lane("bogus", network, shard, [])
