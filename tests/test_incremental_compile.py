"""Incremental delta compilation: equivalence, invalidation, provenance.

The tentpole claim is that ``update_policy`` with the persistent
:class:`~repro.xfdd.incremental.CompileSession` (and the content-keyed
solve memo) produces snapshots *semantically identical* to the forced
from-scratch path — same placement, same routing, byte-identical data-
plane behaviour — while reusing unchanged sub-policies' artifacts.
"""

import pickle
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dependency import (
    DependencySlicer,
    analyze_dependencies,
    st_dep,
)
from repro.analysis.packet_state import (
    packet_state_mapping,
    packet_state_mapping_paths,
)
from repro.core.controller import SnapController
from repro.core.pipeline import Compiler
from repro.core.program import Program
from repro.lang import ast, make_packet
from repro.lang.ast import state_variables
from repro.lang.fingerprint import fingerprint, fingerprint_hex
from repro.topology.campus import campus_topology
from repro.xfdd.build import build_xfdd
from repro.xfdd.incremental import CompileSession

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
from workloads import composed_program, dns_tunnel_program  # noqa: E402

NUM_APPS = 4
NUM_PORTS = 6


# -- helpers ------------------------------------------------------------------


def flatten_parallel(policy):
    if isinstance(policy, ast.Parallel):
        return flatten_parallel(policy.left) + flatten_parallel(policy.right)
    return [policy]


def edit_arm(program: Program, k: int, salt: int) -> Program:
    """A single-app edit: wrap arm ``k`` in a guard that drops packets
    with ``srcport = 40000 + salt`` — a behavioural change that leaves
    every state variable's reads/writes (hence S_uv and the dependency
    graph) untouched."""
    par, egress = program.policy.left, program.policy.right
    arms = flatten_parallel(par)
    arms[k % len(arms)] = ast.Seq(
        ast.Not(ast.Test("srcport", 40000 + salt)), arms[k % len(arms)]
    )
    return Program(
        ast.Seq(ast.par_all(arms), egress),
        assumption=program.assumption,
        state_defaults=dict(program.state_defaults),
        name=program.name,
    )


def record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def replay_trace(snapshot):
    """Deterministic packet workload injected into a fresh data plane."""
    network = snapshot.build_network()
    packets = [
        (
            make_packet(
                srcip=f"10.0.{src}.2",
                dstip=f"10.0.{dst}.1",
                srcport=40000 + src,
                dstport=53,
            ),
            src,
        )
        for src in range(1, NUM_PORTS + 1)
        for dst in range(1, NUM_PORTS + 1)
        if src != dst
    ]
    return [record_view(r) for r in network.inject_many(packets)]


# -- fingerprints -------------------------------------------------------------


class TestFingerprint:
    def test_identity_insensitive(self):
        a = composed_program(NUM_APPS, NUM_PORTS).full_policy()
        b = composed_program(NUM_APPS, NUM_PORTS).full_policy()
        assert a is not b
        assert fingerprint(a) == fingerprint(b)

    def test_distinguishes_edits(self):
        base = composed_program(NUM_APPS, NUM_PORTS)
        seen = {fingerprint(base.full_policy())}
        for k in range(NUM_APPS):
            fp = fingerprint(edit_arm(base, k, 0).full_policy())
            assert fp not in seen
            seen.add(fp)

    def test_pinned_vectors(self):
        # The encoding is a persistent cache key: these break ONLY if the
        # canonical encoding changes, which invalidates cross-session
        # artifact comparison and must be deliberate.
        assert fingerprint_hex(ast.Id()) == "6bcaff488d3449ff36d5b9025380bd13"
        assert fingerprint_hex(ast.Drop()) == "799072067350cd4c11039e51206730a3"
        assert (
            fingerprint_hex(ast.Test("srcport", 53))
            == "fd459ea1bc136aafe7cf9514c55708c9"
        )

    def test_pickle_roundtrip_recomputes(self):
        policy = dns_tunnel_program(NUM_PORTS).full_policy()
        fp = fingerprint(policy)
        clone = pickle.loads(pickle.dumps(policy))
        # The cached digest is not serialized; recomputation agrees.
        assert getattr(clone, "_fingerprint", None) is None
        assert fingerprint(clone) == fp


# -- analysis delta paths -----------------------------------------------------


class TestAnalysisEquivalence:
    @pytest.mark.parametrize("make", [
        lambda: dns_tunnel_program(NUM_PORTS),
        lambda: composed_program(NUM_APPS, NUM_PORTS),
    ])
    def test_slicer_matches_st_dep(self, make):
        policy = make().full_policy()
        plain = analyze_dependencies(policy)
        sliced = analyze_dependencies(policy, slicer=DependencySlicer())
        assert set(plain.graph.edges) == set(sliced.graph.edges)
        assert plain.state_rank == sliced.state_rank
        assert plain.tied == sliced.tied and plain.dep == sliced.dep

    @pytest.mark.parametrize("make", [
        lambda: dns_tunnel_program(NUM_PORTS),
        lambda: composed_program(NUM_APPS, NUM_PORTS),
    ])
    def test_mapping_matches_path_enumeration(self, make):
        program = make()
        xfdd = build_xfdd(program.full_policy(), program.registry)
        ports = list(range(1, NUM_PORTS + 1))
        fast = packet_state_mapping(xfdd, ports, ports, memo={})
        slow = packet_state_mapping_paths(xfdd, ports, ports)
        assert dict(fast.items()) == dict(slow.items())


# -- the session --------------------------------------------------------------


class TestCompileSession:
    def test_splice_reuses_unchanged_arms(self):
        base = composed_program(NUM_APPS, NUM_PORTS)
        session = CompileSession()
        deps = analyze_dependencies(base.full_policy())
        session.begin_compile(base.registry, deps.state_rank)
        session.build(base.full_policy())

        edited = edit_arm(base, 0, 7)
        deps2 = analyze_dependencies(edited.full_policy())
        session.begin_compile(edited.registry, deps2.state_rank)
        session.build(edited.full_policy())
        arms = flatten_parallel(edited.policy.left)
        assert not session.was_reused(arms[0])  # the dirty arm
        assert all(session.was_reused(arm) for arm in arms[1:])

    def test_rank_change_invalidates_subtree(self):
        session = CompileSession()
        program = dns_tunnel_program(NUM_PORTS)
        policy = program.full_policy()
        deps = analyze_dependencies(policy)
        session.begin_compile(program.registry, deps.state_rank)
        session.build(policy)
        # Shift every rank: no entry *containing state* may be served
        # (state-free subtrees are order-insensitive and may survive).
        shifted = {v: r + 1 for v, r in deps.state_rank.items()}
        session.begin_compile(program.registry, shifted)
        session.build(policy)
        assert not session.was_reused(policy)
        for sub in (policy.left, policy.right):
            if state_variables(sub):
                assert not session.was_reused(sub)


# -- controller equivalence (the property) ------------------------------------


@pytest.fixture(scope="module")
def warm_controller():
    controller = SnapController(
        campus_topology(), composed_program(NUM_APPS, NUM_PORTS)
    )
    controller.submit()
    return controller


class TestIncrementalEquivalence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(k=st.integers(min_value=0, max_value=NUM_APPS - 1),
           salt=st.integers(min_value=0, max_value=999))
    def test_single_app_edit_matches_forced_cold(self, warm_controller, k, salt):
        """Random single-app edits: the incremental snapshot is
        semantically equivalent to the forced from-scratch compile, and
        its data plane replays byte-identically."""
        edited = edit_arm(
            composed_program(NUM_APPS, NUM_PORTS), k, salt
        )
        warm = warm_controller.update_policy(edited)
        cold = warm_controller.update_policy(edited, incremental=False)
        assert dict(warm.placement) == dict(cold.placement)
        assert dict(warm.mapping.items()) == dict(cold.mapping.items())
        assert warm.routing.paths == cold.routing.paths
        assert replay_trace(warm) == replay_trace(cold)

    def test_solve_reused_when_mapping_unchanged(self, warm_controller):
        edited = edit_arm(composed_program(NUM_APPS, NUM_PORTS), 1, 123)
        before = warm_controller.backend.calls["st_solves"]
        snap = warm_controller.update_policy(edited)
        assert snap.model_stats["solve_reused"] is True
        assert warm_controller.backend.calls["st_solves"] == before

    def test_forced_cold_always_solves(self, warm_controller):
        edited = edit_arm(composed_program(NUM_APPS, NUM_PORTS), 2, 321)
        before = warm_controller.backend.calls["st_solves"]
        snap = warm_controller.update_policy(edited, incremental=False)
        assert snap.model_stats["incremental"] is False
        assert snap.model_stats["solve_reused"] is False
        assert warm_controller.backend.calls["st_solves"] == before + 1

    def test_artifact_provenance_counts(self, warm_controller):
        base = composed_program(NUM_APPS, NUM_PORTS)
        warm_controller.update_policy(base)
        snap = warm_controller.update_policy(edit_arm(base, 0, 55))
        stats = snap.model_stats
        assert stats["incremental"] is True
        # Units: NUM_APPS parallel arms + the egress segment + the
        # assumption segment; exactly one arm was dirtied.
        assert stats["incremental_reused"] + stats["incremental_recompiled"] == len(
            snap.artifacts
        )
        assert stats["incremental_recompiled"] == 1
        recompiled = [a for a in snap.artifacts.values() if not a.reused]
        assert len(recompiled) == 1
        assert recompiled[0].label.startswith("seq1.arm")

    def test_artifacts_record_unit_slices(self, warm_controller):
        snap = warm_controller.update_policy(
            composed_program(NUM_APPS, NUM_PORTS)
        )
        for artifact in snap.artifacts.values():
            assert artifact.fingerprint == fingerprint_hex(artifact.policy)
            assert artifact.dep_edges == st_dep(artifact.policy)
            assert artifact.state_vars == frozenset(
                state_variables(artifact.policy)
            )


class TestInterleavedEvents:
    def test_fail_link_between_policy_updates(self):
        controller = SnapController(
            campus_topology(), composed_program(NUM_APPS, NUM_PORTS)
        )
        base = composed_program(NUM_APPS, NUM_PORTS)
        controller.submit()
        controller.fail_link("C1", "C5")
        # update_policy under failure solves against the degraded graph:
        # the solve key differs from the cold-start one, so no stale
        # reuse — and the routing avoids the dead link.
        snap = controller.update_policy(edit_arm(base, 0, 1))
        assert snap.model_stats["solve_reused"] is False
        path = snap.routing.path(1, 6)
        assert ("C1", "C5") not in set(zip(path, path[1:]))
        controller.restore_link("C1", "C5")
        # Same edit again, now on the restored graph: key matches the
        # earlier full-graph solve for this mapping -> reused.
        snap2 = controller.update_policy(edit_arm(base, 0, 2))
        assert snap2.model_stats["solve_reused"] is True
        assert snap2.routing.path(1, 6) == snap2.routing.path(1, 6)

    def test_topology_change_invalidates_solve_reuse(self):
        controller = SnapController(
            campus_topology(), composed_program(NUM_APPS, NUM_PORTS)
        )
        controller.submit()
        bigger = campus_topology()
        bigger.add_link("C1", "C4", 10.0)
        controller.replace_topology(bigger)
        snap = controller.update_policy(
            composed_program(NUM_APPS, NUM_PORTS)
        )
        # New graph -> new solve key -> genuine re-solve.
        assert snap.model_stats["solve_reused"] is False

    def test_resubmit_resets_session(self):
        controller = SnapController(
            campus_topology(), composed_program(NUM_APPS, NUM_PORTS)
        )
        controller.submit()
        snap = controller.submit()
        assert snap.model_stats["incremental_reused"] == 0
        assert snap.model_stats["solve_reused"] is False


class TestShimSetters:
    def test_program_setter_invalidates_standing_model(self):
        with pytest.warns(DeprecationWarning):
            shim = Compiler(campus_topology(), dns_tunnel_program(NUM_PORTS))
        shim.cold_start()
        shim.topology_change(failed_links=[("C1", "C5")])
        assert shim._te_model is not None
        shim.program = dns_tunnel_program(NUM_PORTS)
        assert shim._te_model is None

    def test_topology_setter_resets_failures(self):
        with pytest.warns(DeprecationWarning):
            shim = Compiler(campus_topology(), dns_tunnel_program(NUM_PORTS))
        shim.cold_start()
        shim.topology_change(failed_links=[("C1", "C5")])
        shim.topology = campus_topology()
        assert shim._te_failed == set()
        assert shim._te_model is None
