"""Property test: the distributed data plane implements the OBS semantics.

Random stateful policies are compiled onto a small topology; random packet
sequences are injected sequentially.  The union of per-switch state tables
and the set of delivered packets must equal what the one-big-switch
``eval`` produces.  This validates the entire pipeline: xFDD translation,
placement, routing, per-switch NetASM splitting, SNAP-header steering, and
Appendix D's candidate-egress trick.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, assume, given, settings

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.dataplane.network import Network
from repro.lang import ast
from repro.lang.errors import (
    CompileError,
    InconsistentStateError,
    PlacementError,
    RaceConditionError,
)
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.milp.placement import build_placement_model
from repro.milp.results import extract_paths, validate_solution
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd
from repro.xfdd.order import TestOrder
from repro.xfdd.compose import Composer
from repro.xfdd.build import to_xfdd

from tests.strategies import FIELDS, STATE_VARS, VALUES, packets, registry

PORTS = (1, 2, 3)


def diamond_topology():
    """Three ports around a 5-switch diamond — multiple path choices."""
    topo = Topology("diamond")
    for name in ("e1", "e2", "e3", "m1", "m2"):
        topo.add_switch(name)
    for a, b in (
        ("e1", "m1"), ("e1", "m2"),
        ("e2", "m1"), ("e2", "m2"),
        ("e3", "m1"), ("e3", "m2"),
        ("m1", "m2"),
    ):
        topo.add_link(a, b, 1000.0)
    topo.attach_port(1, "e1")
    topo.attach_port(2, "e2")
    topo.attach_port(3, "e3")
    topo.validate()
    return topo


def egress_policy():
    """Route on field fa: 0 -> port 1, 1 -> port 2, else port 3."""
    return ast.If(
        ast.Test("fa", 0),
        ast.Mod("outport", 1),
        ast.If(ast.Test("fa", 1), ast.Mod("outport", 2), ast.Mod("outport", 3)),
    )


def stateful_bodies():
    """Small stateful bodies that compose well with the egress policy."""
    idx = st.sampled_from([ast.Field("fb"), ast.Value(0)])
    var = st.sampled_from(STATE_VARS)
    body = st.one_of(
        st.builds(ast.StateIncr, var, idx),
        st.builds(ast.StateMod, var, idx, st.sampled_from(VALUES).map(ast.Value)),
        st.builds(
            lambda v, i, val, wval: ast.If(
                ast.StateTest(v, i, ast.Value(val)),
                ast.StateMod(v, i, ast.Value(wval)),
                ast.StateIncr(v, i),
            ),
            var, idx, st.sampled_from(VALUES), st.sampled_from(VALUES),
        ),
        st.builds(
            lambda v, i, val: ast.If(
                ast.StateTest(v, i, ast.Value(val)), ast.Drop(), ast.Id()
            ),
            var, idx, st.sampled_from(VALUES),
        ),
    )
    return st.lists(body, min_size=1, max_size=2).map(ast.seq_all)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    body=stateful_bodies(),
    arrivals=st.lists(
        st.tuples(packets(), st.sampled_from(PORTS)), min_size=1, max_size=6
    ),
)
def test_distributed_execution_matches_obs_eval(body, arrivals):
    policy = ast.Seq(body, egress_policy())
    reg = registry()
    try:
        deps = analyze_dependencies(policy)
        order = TestOrder(reg, deps.state_rank)
        xfdd = to_xfdd(policy, Composer(order))
    except (RaceConditionError, CompileError):
        assume(False)
        return
    topo = diamond_topology()
    mapping = packet_state_mapping(xfdd, PORTS, PORTS)
    demands = uniform_traffic_matrix(PORTS, 1.0)
    try:
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        routing = extract_paths(solution, topo, mapping, deps)
        validate_solution(routing, topo, mapping, deps)
    except PlacementError:
        assume(False)
        return
    defaults = {var: 0 for var in STATE_VARS}
    net = Network(topo, xfdd, solution.placement, routing, mapping, demands, defaults)

    ref_store = Store(defaults)
    for packet, port in arrivals:
        tagged = packet.modify("inport", port)
        try:
            ref_store, ref_out, _ = eval_policy(policy, ref_store, tagged)
        except InconsistentStateError:
            assume(False)
            return
        records = net.inject(packet, port)
        delivered = frozenset(
            record.packet.without("inport")
            for record in records
            if record.egress is not None
        )
        expected = frozenset(p.without("inport") for p in ref_out)
        assert delivered == expected
        # Delivered egress ports match the packets' outport field.
        for record in records:
            if record.egress is not None:
                assert record.packet.get("outport") == record.egress
    assert net.global_store() == ref_store
