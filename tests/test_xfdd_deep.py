"""Deep corner cases of sequential xFDD composition (Appendix E).

Each case pairs a compile-time structural expectation with a semantic
check against the reference evaluator.
"""

from repro.lang import ast, parse
from repro.lang.packet import make_packet
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import Branch, Leaf, evaluate, iter_paths
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest


def check_equiv(policy, packets, defaults=None):
    defaults = defaults or ast.infer_state_defaults(policy)
    xfdd = build_xfdd(policy)
    ref = Store(defaults)
    got = Store(defaults)
    for pkt in packets:
        ref, out_ref, _ = eval_policy(policy, ref, pkt)
        got, out_got = evaluate(xfdd, pkt, got)
        assert out_ref == out_got
        assert ref == got
    return xfdd


class TestFieldMapThroughState:
    def test_mod_between_state_ops(self):
        # f <- 7 ; s[f] <- 1 ; s[7] = 1   must statically resolve to true.
        policy = ast.seq_all(
            [
                ast.Mod("fa", 7),
                ast.StateMod("s", ast.Field("fa"), ast.Value(1)),
                ast.StateTest("s", ast.Value(7), ast.Value(1)),
            ]
        )
        xfdd = check_equiv(policy, [make_packet(fa=0)])
        assert isinstance(xfdd, Leaf)

    def test_mod_after_state_op_does_not_affect_it(self):
        # s[f] <- 1 with OLD f; then f <- 7; test s[7] = 1 is undecidable
        # unless f was 7 before: expect a field-value test on the old f.
        policy = ast.seq_all(
            [
                ast.StateMod("s", ast.Field("fa"), ast.Value(1)),
                ast.Mod("fa", 7),
                ast.StateTest("s", ast.Value(7), ast.Value(1)),
            ]
        )
        xfdd = check_equiv(
            policy, [make_packet(fa=7), make_packet(fa=3)], {"s": 0}
        )
        assert isinstance(xfdd, Branch)
        assert xfdd.test == FieldValueTest("fa", 7)

    def test_overwritten_mod_uses_latest(self):
        policy = ast.seq_all(
            [
                ast.Mod("fa", 1),
                ast.Mod("fa", 2),
                ast.Test("fa", 2),
            ]
        )
        xfdd = check_equiv(policy, [make_packet(fa=9)])
        assert isinstance(xfdd, Leaf)


class TestWriteChains:
    def test_later_write_shadows_earlier(self):
        # s[0] <- 1 ; s[0] <- 2 ; s[0] = 2 resolves true.
        policy = ast.seq_all(
            [
                ast.StateMod("s", ast.Value(0), ast.Value(1)),
                ast.StateMod("s", ast.Value(0), ast.Value(2)),
                ast.StateTest("s", ast.Value(0), ast.Value(2)),
            ]
        )
        xfdd = check_equiv(policy, [make_packet()])
        assert isinstance(xfdd, Leaf)

    def test_unknown_index_write_splits(self):
        # s[fa] <- 2 ; s[0] = 2: decidable only by comparing fa with 0.
        policy = ast.seq_all(
            [
                ast.StateMod("s", ast.Field("fa"), ast.Value(2)),
                ast.StateTest("s", ast.Value(0), ast.Value(2)),
            ]
        )
        xfdd = check_equiv(
            policy, [make_packet(fa=0), make_packet(fa=5)], {"s": 0}
        )
        assert isinstance(xfdd, Branch)
        assert xfdd.test == FieldValueTest("fa", 0)

    def test_two_unknown_indices_field_field(self):
        # s[fa] <- 2 ; s[fb] = 2 needs the field-field test fa = fb.
        policy = ast.seq_all(
            [
                ast.StateMod("s", ast.Field("fa"), ast.Value(2)),
                ast.StateTest("s", ast.Field("fb"), ast.Value(2)),
            ]
        )
        xfdd = check_equiv(
            policy,
            [make_packet(fa=1, fb=1), make_packet(fa=1, fb=2)],
            {"s": 0},
        )
        assert isinstance(xfdd, Branch)
        assert isinstance(xfdd.test, FieldFieldTest)

    def test_decrement_then_threshold(self):
        # c[0]-- ; c[0] = 0 is the pre-test c[0] = 1.
        policy = ast.seq_all(
            [
                ast.StateDecr("c", ast.Value(0)),
                ast.StateTest("c", ast.Value(0), ast.Value(0)),
            ]
        )
        xfdd = check_equiv(policy, [make_packet()], {"c": 0})
        assert xfdd.test == StateVarTest("c", ast.Value(0), ast.Value(1))

    def test_mixed_incr_decr_cancel(self):
        # c[0]++ ; c[0]-- ; c[0] = 5 tests the original value.
        policy = ast.seq_all(
            [
                ast.StateIncr("c", ast.Value(0)),
                ast.StateDecr("c", ast.Value(0)),
                ast.StateTest("c", ast.Value(0), ast.Value(5)),
            ]
        )
        xfdd = check_equiv(policy, [make_packet()], {"c": 0})
        assert xfdd.test == StateVarTest("c", ast.Value(0), ast.Value(5))


class TestContextPruning:
    def test_same_test_not_repeated_across_seq(self):
        policy = ast.Seq(
            ast.Test("srcport", 53),
            ast.If(ast.Test("srcport", 53), ast.Mod("fa", 1), ast.Mod("fa", 2)),
        )
        xfdd = check_equiv(policy, [make_packet(srcport=53), make_packet(srcport=9)])
        # The inner test is implied by the outer; one test node suffices.
        tests = [t for path, _ in iter_paths(xfdd) for t, _ in path]
        assert tests.count(FieldValueTest("srcport", 53)) <= 2  # ≤ once per path

    def test_state_test_reuse_in_seq(self):
        # Testing s twice in sequence resolves the second occurrence.
        pred = ast.StateTest("s", ast.Value(0), ast.Value(1))
        policy = ast.Seq(pred, ast.If(pred, ast.Mod("fa", 1), ast.Mod("fa", 2)))
        xfdd = check_equiv(policy, [make_packet()], {"s": 0})
        state_tests = {
            t
            for path, _ in iter_paths(xfdd)
            for t, _ in path
            if isinstance(t, StateVarTest)
        }
        assert len(state_tests) == 1

    def test_contradictory_guards_produce_no_dead_writes(self):
        # (srcport=53; s[0]<-1); (srcport!=53; s[0]<-2) sequential: the
        # second write is unreachable — composition yields drop for all.
        policy = ast.Seq(
            ast.Seq(ast.Test("srcport", 53), ast.StateMod("s", ast.Value(0), ast.Value(1))),
            ast.Seq(ast.Not(ast.Test("srcport", 53)), ast.StateMod("s", ast.Value(0), ast.Value(2))),
        )
        xfdd = check_equiv(
            policy, [make_packet(srcport=53), make_packet(srcport=1)], {"s": 0}
        )
        for _path, leaf in iter_paths(xfdd):
            # No leaf may perform the impossible double write.
            for seq in leaf.seqs:
                values = [
                    a.value for a in seq if getattr(a, "var", None) == "s"
                ]
                assert len(values) <= 1


class TestParsedPolicies:
    def test_figure1_composed_with_monitoring(self):
        # §2.1: (DNS-tunnel-detect + count[inport]++); assign-egress
        from repro.apps import assign_egress, default_subnets, dns_tunnel_detect

        detect = dns_tunnel_detect(threshold=2)
        count = parse("count[inport]++")
        policy = ast.Seq(
            ast.Parallel(detect.policy, count),
            assign_egress(default_subnets(6)),
        )
        defaults = dict(detect.state_defaults)
        defaults["count"] = 0
        from repro.util.ipaddr import IPPrefix

        client = IPPrefix("10.0.6.9").network
        packets = [
            make_packet(
                inport=1, srcip=IPPrefix("10.0.1.1").network, dstip=client,
                srcport=53, dstport=9, **{"dns.rdata": 42},
            )
        ] * 3
        xfdd = build_xfdd(policy)
        ref = Store(defaults)
        got = Store(defaults)
        for pkt in packets:
            ref, out_ref, _ = eval_policy(policy, ref, pkt)
            got, out_got = evaluate(xfdd, pkt, got)
            assert out_ref == out_got and ref == got
        assert got.read("count", (1,)) == 3
        assert got.read("blacklist", (client,)) is True
