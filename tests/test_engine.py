"""Tests for the sharded data-plane execution engine (§7.3 / Appendix C).

The load-bearing property: the sharded engine is *delivery-equivalent* to
the sequential engine — same records (packet, egress, hop count) in the
same order, same final state stores, same per-link packet counters — and
both agree with the OBS ``eval`` semantics, on the Table 3 application
traces.  Shards are proven disjoint before any parallelism happens, so
this holds whether lanes run inline or on a thread pool.
"""

import pytest

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
    stateful_firewall,
    syn_flood_detect,
)
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.dataplane.engine import (
    ProcessPoolEngine,
    SequentialEngine,
    ShardedEngine,
    get_engine,
    ingress_state_footprint,
    plan_shards,
)
from repro.lang import ast, make_packet
from repro.lang.errors import DataPlaneError, SnapError
from repro.lang.state import Store
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix
from repro import workloads
from repro.workloads import replay, replay_obs

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PORTS = list(range(1, NUM_PORTS + 1))


def ip(text):
    return IPPrefix(text).network


def compiled(app=None, policy=None, defaults=None, name="case",
             engine="sequential", guard=None):
    if app is not None:
        body = app.policy if guard is None else ast.If(guard, app.policy, ast.Id())
        policy = ast.Seq(body, assign_egress(SUBNETS))
        defaults = app.state_defaults
        name = app.name
    program = Program(
        policy,
        assumption=port_assumption(SUBNETS),
        state_defaults=defaults or {},
        name=name,
    )
    controller = SnapController(
        campus_topology(), program, options=CompilerOptions(engine=engine)
    )
    return controller.submit(), program


def sharded_monitor():
    """§7.3's example: ``count[inport]++`` split into per-port shards."""
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    return compiled(
        policy=shard_by_inport(body, "count", PORTS),
        defaults=shard_defaults({"count": 0}, "count", PORTS),
        name="monitor-sharded",
    )


def record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def assert_engines_equivalent(snapshot, program, trace, sharded=None):
    """Sequential ≡ sharded ≡ OBS eval, field by field."""
    net_seq = snapshot.build_network()
    net_shard = snapshot.build_network()
    arrivals = list(trace)
    seq = SequentialEngine().run(net_seq, arrivals)
    shard = (sharded or ShardedEngine()).run(net_shard, arrivals)

    assert len(seq) == len(shard) == len(arrivals)
    for per_seq, per_shard in zip(seq, shard):
        assert record_view(per_seq) == record_view(per_shard)
    assert net_seq.global_store() == net_shard.global_store()
    assert net_seq.link_packets == net_shard.link_packets
    assert record_view(net_seq.deliveries) == record_view(net_shard.deliveries)

    obs_store, obs_outputs = replay_obs(
        trace, program.full_policy(), Store(program.state_defaults)
    )
    assert net_shard.global_store() == obs_store
    for records, expected in zip(shard, obs_outputs):
        delivered = frozenset(
            r.packet.without("inport") for r in records if r.egress is not None
        )
        assert delivered == frozenset(p.without("inport") for p in expected)


class TestShardPlanning:
    def test_sharded_monitor_gets_one_shard_per_port(self):
        snapshot, _ = sharded_monitor()
        plan = plan_shards(snapshot.build_network())
        assert plan.parallelism == NUM_PORTS
        for shard in plan.shards:
            (port,) = shard.ports
            assert shard.variables == frozenset((f"count@{port}",))

    def test_global_state_collapses_to_single_lane(self):
        """A variable every port can touch serializes everything."""
        snapshot, _ = compiled(app=dns_tunnel_detect())
        plan = plan_shards(snapshot.build_network())
        assert plan.parallelism == 1
        assert plan.shards[0].ports == tuple(PORTS)

    def test_footprint_only_covers_guarded_ports(self):
        """State guarded to one ingress port stays out of the others'
        footprints."""
        body = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("only1", ast.Field("srcip")),
                ast.Id(),
            ),
            assign_egress(SUBNETS),
        )
        snapshot, _ = compiled(
            policy=body, defaults={"only1": 0}, name="guarded"
        )
        footprint = ingress_state_footprint(snapshot.xfdd, PORTS)
        assert "only1" in footprint[1]
        for port in PORTS[1:]:
            assert "only1" not in footprint[port]

    def test_stateless_ports_become_singleton_shards(self):
        body = ast.Seq(
            ast.If(
                ast.Test("inport", 1),
                ast.StateIncr("only1", ast.Field("srcip")),
                ast.Id(),
            ),
            assign_egress(SUBNETS),
        )
        snapshot, _ = compiled(
            policy=body, defaults={"only1": 0}, name="guarded"
        )
        plan = plan_shards(snapshot.build_network())
        assert plan.parallelism == NUM_PORTS  # 1 stateful + 5 stateless
        sizes = sorted(len(s.ports) for s in plan.shards)
        assert sizes == [1] * NUM_PORTS

    def test_plan_cached_per_network(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        engine = ShardedEngine()
        assert engine.plan_for(network) is engine.plan_for(network)

    def test_plan_cache_invalidated_by_xfdd_swap(self):
        """In-place mutation of the network's program never leaves a
        stale plan behind — the cache is keyed on the xFDD root."""
        snap_sharded, _ = sharded_monitor()
        snap_global, _ = compiled(app=dns_tunnel_detect())
        network = snap_sharded.build_network()
        engine = ShardedEngine()
        plan_before = engine.plan_for(network)
        assert plan_before.parallelism == NUM_PORTS
        donor = snap_global.build_network()
        # Graft the global-state program onto the same network object —
        # the shape of a hand-rolled hot swap that reuses the instance.
        network.index = donor.index
        network.switches = donor.switches
        network.placement = donor.placement
        network.mapping = donor.mapping
        plan_after = engine.plan_for(network)
        assert plan_after is not plan_before
        assert plan_after.parallelism == 1  # global state: one lane

    def test_rewired_network_never_replays_against_stale_plan(self):
        _, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program, options=CompilerOptions(engine="sharded")
        )
        controller.submit()
        engine = ShardedEngine()
        plan_cold = engine.plan_for(controller.network())
        controller.fail_link("C1", "C5")
        rewired = controller.network()
        plan_hot = engine.plan_for(rewired)
        # Same xFDD, same ports: the partition is identical, but it was
        # computed for (and cached on) the rewired object.
        assert [s.ports for s in plan_hot.shards] == [
            s.ports for s in plan_cold.shards
        ]
        assert engine.plan_for(rewired) is plan_hot
        trace = workloads.background_traffic(SUBNETS, count=40, seed=2)
        stats = replay(trace, rewired, engine=engine)
        assert stats.sent == 40

    def test_adopted_network_plan_tracks_new_program(self):
        _, monitor_program = sharded_monitor()
        controller = SnapController(
            campus_topology(), monitor_program,
            options=CompilerOptions(engine="sharded"),
        )
        controller.submit()
        engine = ShardedEngine()
        assert engine.plan_for(controller.network()).parallelism == NUM_PORTS
        app = dns_tunnel_detect()
        global_program = Program(
            ast.Seq(app.policy, assign_egress(SUBNETS)),
            assumption=port_assumption(SUBNETS),
            state_defaults=app.state_defaults,
            name=app.name,
        )
        controller.update_policy(global_program)  # rebuild + adopt_state
        assert engine.plan_for(controller.network()).parallelism == 1


def corrupt_shard(network, port):
    """Poison ``count@port`` so its lane's increment raises mid-run."""
    var = f"count@{port}"
    owner = network.placement[var]
    network.switches[owner].store.write(var, (port,), "corrupt")


def one_packet_per_port():
    return [
        (make_packet(srcip=SUBNETS[p].host(1), dstip=SUBNETS[6].host(1)), p)
        for p in PORTS
    ]


class TestLaneFailureContract:
    """A failing lane merges what completed, then raises a wrapped
    DataPlaneError naming the shard — the network is never silently
    half-updated."""

    def test_inline_failure_merges_completed_lanes_only(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        corrupt_shard(network, 3)
        with pytest.raises(DataPlaneError, match=r"shard 2 \(ports \[3\]\)"):
            ShardedEngine(max_workers=1).run(network, one_packet_per_port())
        store = network.global_store()
        # Lanes run in shard order inline: ports 1 and 2 completed and
        # were merged; the failing lane stopped everything after it.
        assert store.read("count@1", (1,)) == 1
        assert store.read("count@2", (2,)) == 1
        assert store.read("count@3", (3,)) == "corrupt"
        assert store.read("count@4", (4,)) == 0
        assert len(network.deliveries) == 2
        assert sum(network.link_packets.values()) > 0

    def test_thread_pool_failure_merges_completed_lanes(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        corrupt_shard(network, 3)
        with pytest.raises(DataPlaneError, match=r"shard 2 \(ports \[3\]\)"):
            ShardedEngine(max_workers=4).run(network, one_packet_per_port())
        store = network.global_store()
        # Submitted lanes all ran to completion except the failing one.
        for port in (1, 2, 4, 5, 6):
            assert store.read(f"count@{port}", (port,)) == 1
        assert store.read("count@3", (3,)) == "corrupt"
        assert len(network.deliveries) == 5

    def test_process_pool_failure_merges_completed_lanes(self):
        snapshot, _ = sharded_monitor()
        network = snapshot.build_network()
        corrupt_shard(network, 3)
        engine = ProcessPoolEngine(max_workers=2)
        try:
            with pytest.raises(DataPlaneError, match=r"shard 2 \(ports \[3\]\)"):
                engine.run(network, one_packet_per_port())
            store = network.global_store()
            # Completed workers' state deltas were merged back; the
            # failing shard's state is untouched (still corrupt).
            for port in (1, 2, 4, 5, 6):
                assert store.read(f"count@{port}", (port,)) == 1
            assert store.read("count@3", (3,)) == "corrupt"
            assert len(network.deliveries) == 5
        finally:
            engine.close()


class TestEngineEquivalence:
    """Sharded ≡ sequential ≡ eval_policy on Table 3 traces."""

    def test_sharded_monitor_background(self):
        snapshot, program = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=300, seed=7)
        assert_engines_equivalent(snapshot, program, trace)

    def test_dns_tunnel_attack_and_benign(self):
        snapshot, program = compiled(app=dns_tunnel_detect(threshold=3))
        attack = workloads.dns_tunnel_attack(
            ip("10.0.6.66"), 6, ip("10.0.1.53"), 1, num_responses=4
        )
        benign = workloads.benign_dns_usage(
            ip("10.0.6.77"), 6, ip("10.0.1.53"), 1,
            servers=[ip("10.0.2.10"), ip("10.0.2.11")], server_port=2,
        )
        trace = attack.interleaved_with(benign, seed=3)
        assert_engines_equivalent(snapshot, program, trace)

    def test_syn_flood_with_sessions(self):
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        snapshot, program = compiled(app=syn_flood_detect(threshold=10), guard=guard)
        flood = workloads.syn_flood(ip("10.0.1.66"), 1, ip("10.0.6.1"), count=15)
        sessions = workloads.tcp_session(ip("10.0.2.5"), ip("10.0.6.1"), 2, 6)
        trace = flood.interleaved_with(sessions, seed=9)
        assert_engines_equivalent(snapshot, program, trace)

    def test_stateful_firewall_background(self):
        snapshot, program = compiled(app=stateful_firewall())
        trace = workloads.background_traffic(SUBNETS, count=200, seed=11)
        assert_engines_equivalent(snapshot, program, trace)

    def test_thread_pool_lanes_match(self):
        """Explicit multi-worker pool: lanes on real threads, same answer."""
        snapshot, program = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=300, seed=5)
        assert_engines_equivalent(
            snapshot, program, trace, sharded=ShardedEngine(max_workers=4)
        )

    def test_sharded_replay_stats_match_sequential(self):
        snapshot, _ = sharded_monitor()
        trace = workloads.background_traffic(SUBNETS, count=200, seed=3)
        stats_seq = replay(trace, snapshot.build_network(), engine="sequential")
        stats_shard = replay(trace, snapshot.build_network(), engine="sharded")
        assert stats_seq.sent == stats_shard.sent
        assert stats_seq.delivered == stats_shard.delivered
        assert stats_seq.dropped == stats_shard.dropped
        assert stats_seq.per_egress == stats_shard.per_egress
        assert stats_seq.total_hops == stats_shard.total_hops


class TestEngineSelection:
    def test_get_engine_resolution(self):
        assert isinstance(get_engine(None), SequentialEngine)
        assert isinstance(get_engine("sequential"), SequentialEngine)
        assert isinstance(get_engine("sharded"), ShardedEngine)
        custom = ShardedEngine(max_workers=2)
        assert get_engine(custom) is custom
        with pytest.raises(SnapError):
            get_engine("warp-drive")

    def test_options_reject_unknown_engine(self):
        with pytest.raises(ValueError):
            CompilerOptions(engine="warp-drive")

    def test_controller_threads_engine_to_live_network(self):
        snapshot_ignored, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program, options=CompilerOptions(engine="sharded")
        )
        controller.submit()
        network = controller.network()
        assert network.default_engine == "sharded"
        trace = workloads.background_traffic(SUBNETS, count=50, seed=1)
        stats = replay(trace, network)  # runs on the sharded engine
        assert stats.sent == 50

    def test_engine_survives_hot_swap(self):
        _, program = sharded_monitor()
        controller = SnapController(
            campus_topology(), program, options=CompilerOptions(engine="sharded")
        )
        controller.submit()
        assert controller.network().default_engine == "sharded"
        controller.fail_link("C1", "C5")
        assert controller.network().default_engine == "sharded"  # rewire path
        controller.update_policy(program)
        assert controller.network().default_engine == "sharded"  # rebuild path

    def test_default_engine_is_sequential(self):
        snapshot, _ = sharded_monitor()
        assert snapshot.build_network().default_engine == "sequential"
        assert CompilerOptions().engine == "sequential"
