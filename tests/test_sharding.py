"""Tests for state sharding by inport (§7.3, Appendix C)."""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.analysis.sharding import shard_by_inport, shard_defaults, shard_name
from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.packet import make_packet
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.milp.placement import build_placement_model
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd


def count_policy():
    """count[inport]++ then forward by a field test."""
    return ast.Seq(
        ast.StateIncr("count", ast.Field("inport")),
        ast.If(ast.Test("fa", 0), ast.Mod("outport", 1), ast.Mod("outport", 2)),
    )


class TestTransformation:
    def test_shards_created_per_port(self):
        sharded = shard_by_inport(count_policy(), "count", [1, 2])
        vars_used = ast.state_variables(sharded)
        assert shard_name("count", 1) in vars_used
        assert shard_name("count", 2) in vars_used
        assert "count" not in vars_used

    def test_semantics_preserved(self):
        original = count_policy()
        sharded = shard_by_inport(original, "count", [1, 2])
        store_orig = Store({"count": 0})
        store_shard = Store(shard_defaults({"count": 0}, "count", [1, 2]))
        for inport in (1, 2, 1, 1):
            pkt = make_packet(inport=inport, fa=0)
            store_orig, out1, _ = eval_policy(original, store_orig, pkt)
            store_shard, out2, _ = eval_policy(sharded, store_shard, pkt)
            assert out1 == out2
        assert store_orig.read("count", (1,)) == store_shard.read(
            shard_name("count", 1), (1,)
        ) == 3
        assert store_orig.read("count", (2,)) == store_shard.read(
            shard_name("count", 2), (2,)
        ) == 1

    def test_unknown_inport_drops(self):
        sharded = shard_by_inport(count_policy(), "count", [1, 2])
        store = Store(shard_defaults({"count": 0}, "count", [1, 2]))
        _, out, _ = eval_policy(sharded, store, make_packet(inport=9, fa=0))
        assert not out

    def test_rejects_non_inport_indexed_var(self):
        policy = ast.StateIncr("c", ast.Field("srcip"))
        with pytest.raises(CompileError):
            shard_by_inport(policy, "c", [1, 2])

    def test_rejects_unused_var(self):
        with pytest.raises(CompileError):
            shard_by_inport(ast.Id(), "ghost", [1])

    def test_vector_index_substituted(self):
        policy = ast.StateMod(
            "s", ast.Vector([ast.Field("inport"), ast.Field("srcip")]), ast.Value(1)
        )
        sharded = shard_by_inport(policy, "s", [1])
        store = Store()
        _, _, _ = eval_policy(sharded, store, make_packet(inport=1, srcip=7))


class TestShardPlacement:
    def test_shards_distribute_across_switches(self):
        """The MILP may place each shard near its own port — the whole
        point of sharding (Appendix C)."""
        topo = Topology("line4")
        for i in range(4):
            topo.add_switch(f"s{i}")
        for i in range(3):
            topo.add_link(f"s{i}", f"s{i+1}", 100.0)
        topo.attach_port(1, "s0")
        topo.attach_port(2, "s3")
        topo.validate()

        policy = ast.Seq(
            ast.StateIncr("count", ast.Field("inport")),
            ast.If(
                ast.Test("inport", 1), ast.Mod("outport", 2), ast.Mod("outport", 1)
            ),
        )
        sharded = shard_by_inport(policy, "count", [1, 2])
        deps = analyze_dependencies(sharded)
        xfdd = build_xfdd(sharded, state_rank=deps.state_rank)
        mapping = packet_state_mapping(xfdd, (1, 2), (1, 2))
        demands = uniform_traffic_matrix((1, 2), 10.0)
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        # Each shard is only needed by one direction of traffic; any
        # placement on that flow's path is feasible — what matters is that
        # the two shards are independent variables the MILP placed.
        assert shard_name("count", 1) in solution.placement
        assert shard_name("count", 2) in solution.placement
