"""Tests for the test order (§4.2) and the paper's Figure 3 xFDD."""

from repro.analysis.dependency import analyze_dependencies
from repro.apps.chimera import dns_tunnel_detect
from repro.lang import ast, parse
from repro.lang.fields import FieldRegistry
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import Branch, Leaf, iter_paths
from repro.xfdd.order import TestOrder as XFDDTestOrder
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest


class TestTestOrder:
    def setup_method(self):
        self.order = XFDDTestOrder(FieldRegistry(), {"a": 0, "b": 1})

    def test_field_value_before_field_field(self):
        fv = FieldValueTest("srcip", 1)
        ff = FieldFieldTest("srcip", "dstip")
        assert self.order.lt(fv, ff)

    def test_field_field_before_state(self):
        ff = FieldFieldTest("srcip", "dstip")
        st = StateVarTest("a", ast.Value(0), ast.Value(1))
        assert self.order.lt(ff, st)

    def test_state_order_follows_dependency_rank(self):
        st_a = StateVarTest("a", ast.Value(0), ast.Value(1))
        st_b = StateVarTest("b", ast.Value(0), ast.Value(1))
        assert self.order.lt(st_a, st_b)

    def test_fields_ordered_by_registry(self):
        # inport is registered first of all fields.
        early = FieldValueTest("inport", 1)
        late = FieldValueTest("dstport", 1)
        assert self.order.lt(early, late)

    def test_unknown_state_vars_sort_after_ranked(self):
        ranked = StateVarTest("a", ast.Value(0), ast.Value(1))
        unranked = StateVarTest("zzz", ast.Value(0), ast.Value(1))
        assert self.order.lt(ranked, unranked)


class TestWellFormedness:
    def _check_path_order(self, xfdd, order):
        """No path may repeat a test or violate the total order badly
        enough to repeat state tests (soft check, see compose.py notes)."""
        for path, _leaf in iter_paths(xfdd):
            tests = [t for t, _ in path]
            assert len(tests) == len(set(tests)), f"duplicate test on path {tests}"

    def test_dns_tunnel_no_duplicate_tests(self):
        program = dns_tunnel_detect().full_policy()
        deps = analyze_dependencies(program)
        xfdd = build_xfdd(program, state_rank=deps.state_rank)
        self._check_path_order(xfdd, deps)


class TestFigure3:
    """Structural checks of the paper's running-example xFDD (Figure 3)."""

    def setup_method(self):
        program = dns_tunnel_detect(threshold=3)
        self.deps = analyze_dependencies(program.policy)
        self.xfdd = build_xfdd(program.policy, state_rank=self.deps.state_rank)

    def test_dependency_chain(self):
        # §4.1: blacklist depends on susp-client, itself dependent on orphan.
        assert ("susp-client", "blacklist") in self.deps.dep
        assert ("orphan", "susp-client") in self.deps.dep
        assert self.deps.state_rank["orphan"] < self.deps.state_rank["susp-client"]
        assert self.deps.state_rank["susp-client"] < self.deps.state_rank["blacklist"]

    def test_threshold_minus_one_test(self):
        # The increment before the threshold test folds into
        # susp-client[dstip] = threshold - 1 (as in Figure 3's node).
        wanted = StateVarTest("susp-client", ast.Field("dstip"), ast.Value(2))
        found = any(
            isinstance(t, StateVarTest) and t == wanted
            for path, _ in iter_paths(self.xfdd)
            for t, _ in path
        )
        assert found

    def test_dns_branch_writes_all_three_vars(self):
        # Some leaf writes orphan, susp-client, and blacklist together.
        leaves = [leaf for _, leaf in iter_paths(self.xfdd)]
        assert any(
            leaf.written_state_vars()
            == frozenset(("orphan", "susp-client", "blacklist"))
            for leaf in leaves
        )

    def test_orphan_test_under_srcip_branch(self):
        # Outgoing packets from the subnet test orphan[srcip][dstip].
        wanted_var = "orphan"
        found = any(
            isinstance(t, StateVarTest) and t.var == wanted_var
            for path, _ in iter_paths(self.xfdd)
            for t, _ in path
        )
        assert found
