"""Integration soak test: the full campus deployment under random traffic.

Compiles DNS-tunnel-detect; assign-egress onto the campus, then streams a
few hundred randomized packets (DNS responses, client connections, plain
transit traffic) through the distributed data plane while mirroring every
packet through the OBS reference semantics.  Outputs and final state must
match exactly; also exercises TE re-optimization mid-stream and the
compilation report.
"""

import numpy as np
import pytest

from repro.core.controller import SnapController
from repro.core.program import Program
from repro.core.report import compilation_report
from repro.apps import assign_egress, default_subnets, dns_tunnel_detect, port_assumption
from repro.lang import ast, make_packet
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix


def build_program():
    subnets = default_subnets(6)
    detect = dns_tunnel_detect(threshold=3)
    return Program(
        ast.Seq(detect.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=detect.state_defaults,
        name="dns-tunnel+egress",
    )


def random_arrivals(rng, count):
    subnets = {p: IPPrefix(f"10.0.{p}.0/24") for p in range(1, 7)}
    arrivals = []
    for _ in range(count):
        src_port = int(rng.integers(1, 7))
        dst_port = int(rng.integers(1, 7))
        srcip = subnets[src_port].host(int(rng.integers(1, 50)))
        dstip = subnets[dst_port].host(int(rng.integers(1, 50)))
        kind = rng.random()
        if kind < 0.4:
            packet = make_packet(
                srcip=srcip, dstip=dstip, srcport=53,
                dstport=int(rng.integers(1024, 2048)),
                **{"dns.rdata": subnets[int(rng.integers(1, 7))].host(
                    int(rng.integers(1, 50)))},
            )
        else:
            packet = make_packet(
                srcip=srcip, dstip=dstip,
                srcport=int(rng.integers(1024, 2048)),
                dstport=int(rng.integers(1, 1024)),
            )
        arrivals.append((packet, src_port))
    return arrivals


@pytest.mark.parametrize("seed", [0, 1])
def test_soak_distributed_equals_obs(seed):
    program = build_program()
    controller = SnapController(campus_topology(), program)
    result = controller.submit()
    network = result.build_network()
    policy = program.full_policy()
    ref_store = Store(program.state_defaults)
    rng = np.random.default_rng(seed)
    for packet, port in random_arrivals(rng, 250):
        tagged = packet.modify("inport", port)
        ref_store, ref_out, _ = eval_policy(policy, ref_store, tagged)
        records = network.inject(packet, port)
        delivered = frozenset(
            r.packet.without("inport") for r in records if r.egress is not None
        )
        expected = frozenset(p.without("inport") for p in ref_out)
        assert delivered == expected
    assert network.global_store() == ref_store


def test_soak_survives_te_reroute():
    """Re-optimize routing mid-stream; state stays put and consistent."""
    program = build_program()
    topology = campus_topology()
    controller = SnapController(topology, program)
    result = controller.submit()
    network = result.build_network()
    policy = program.full_policy()
    ref_store = Store(program.state_defaults)
    rng = np.random.default_rng(42)

    def drive(net, count, store):
        for packet, port in random_arrivals(rng, count):
            tagged = packet.modify("inport", port)
            store, ref_out, _ = eval_policy(policy, store, tagged)
            records = net.inject(packet, port)
            delivered = frozenset(
                r.packet.without("inport") for r in records if r.egress is not None
            )
            assert delivered == frozenset(p.without("inport") for p in ref_out)
        return store

    ref_store = drive(network, 100, ref_store)
    saved_state = {
        name: dict(network.switches[sw].store.variable(name).items())
        for name, sw in result.placement.items()
        for sw in [result.placement[name]]
    }

    degraded = topology.without_link("C1", "C5")
    rerouted = controller.update_topology(degraded)
    assert rerouted.placement == result.placement
    network2 = rerouted.build_network()
    # Carry the state over (placement unchanged, so per-switch state maps 1:1).
    for name, owner in rerouted.placement.items():
        var = network2.switches[owner].store.variable(name)
        for key, value in saved_state[name].items():
            var.set(key, value)
    ref_store = drive(network2, 100, ref_store)
    assert network2.global_store() == ref_store


def test_report_renders():
    program = build_program()
    controller = SnapController(campus_topology(), program)
    result = controller.submit()
    network = result.build_network()
    text = compilation_report(result, network)
    assert "state placement:" in text
    assert "D4" in text
    assert "routing rules" in text
    assert "P5" in text
