"""Tests for fine-grained flow refinement (§4.4)."""

import pytest

from repro.analysis.dependency import DependencyInfo
from repro.analysis.packet_state import PacketStateMapping
from repro.milp.placement import build_placement_model
from repro.milp.refine import PortSplit, split_port
from repro.milp.results import extract_paths
from repro.topology.graph import Topology

import networkx as nx


def detour_topology():
    """port1 -> a; two disjoint routes to b -> port2: a-m-b (short) and
    a-x-y-b (long); the state switch will sit on the long route."""
    topo = Topology("detour")
    for name in ("a", "m", "x", "y", "b"):
        topo.add_switch(name)
    topo.add_link("a", "m", 100.0)
    topo.add_link("m", "b", 100.0)
    topo.add_link("a", "x", 100.0)
    topo.add_link("x", "y", 100.0)
    topo.add_link("y", "b", 100.0)
    topo.attach_port(1, "a")
    topo.attach_port(2, "b")
    topo.validate()
    return topo


def empty_deps():
    graph = nx.DiGraph()
    graph.add_node("s")
    return DependencyInfo(graph)


class TestSplitPort:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            split_port(
                detour_topology(), {}, PacketStateMapping({}, (1, 2), (1, 2)),
                1, [PortSplit("a", 0.5)],
            )

    def test_unknown_port(self):
        from repro.lang.errors import TopologyError

        with pytest.raises(TopologyError):
            split_port(
                detour_topology(), {}, PacketStateMapping({}, (1, 2), (1, 2)),
                9, [PortSplit("all", 1.0)],
            )

    def test_structure(self):
        topo = detour_topology()
        mapping = PacketStateMapping({(1, 2): frozenset(["s"])}, (1, 2), (1, 2))
        demands = {(1, 2): 10.0}
        new_topo, new_demands, new_mapping, port_of = split_port(
            topo, demands, mapping, 1,
            [PortSplit("state", 0.2), PortSplit("bulk", 0.8, states=())],
        )
        assert port_of["state"] == 1
        bulk = port_of["bulk"]
        assert new_topo.port_switch(bulk) == "a"
        assert new_demands[(1, 2)] == pytest.approx(2.0)
        assert new_demands[(bulk, 2)] == pytest.approx(8.0)
        assert new_mapping.states_for(1, 2) == frozenset(["s"])
        assert new_mapping.states_for(bulk, 2) == frozenset()

    def test_refined_flows_take_different_paths(self):
        """The paper's motivating outcome: bulk traffic takes the short
        path, only the state-needing class detours through s's switch."""
        topo = detour_topology()
        mapping = PacketStateMapping({(1, 2): frozenset(["s"])}, (1, 2), (1, 2))
        demands = {(1, 2): 10.0}
        deps = empty_deps()

        # Unsplit baseline: all 10 units must pass s (placed anywhere).
        baseline = build_placement_model(
            topo, demands, mapping, deps, stateful_switches=("y",)
        ).solve()

        new_topo, new_demands, new_mapping, port_of = split_port(
            topo, demands, mapping, 1,
            [PortSplit("state", 0.2), PortSplit("bulk", 0.8, states=())],
        )
        refined = build_placement_model(
            new_topo, new_demands, new_mapping, deps, stateful_switches=("y",)
        ).solve()
        routes = extract_paths(refined, new_topo, new_mapping, deps)
        state_path = routes.path(port_of["state"], 2)
        bulk_path = routes.path(port_of["bulk"], 2)
        assert "y" in state_path       # the class needing s detours
        assert "y" not in bulk_path    # bulk takes the short route
        assert refined.objective < baseline.objective
