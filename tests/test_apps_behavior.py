"""Behavioural tests: each Table 3 application does what its description
says, exercised through the reference semantics (and spot-checked against
the xFDD evaluator)."""

import pytest

from repro import apps
from repro.lang import Store, make_packet
from repro.lang.semantics import eval_policy
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import evaluate


def ip(text):
    return IPPrefix(text).network


class AppDriver:
    """Runs packets through a Program with both evaluators, checking they
    agree, and exposes the evolving store."""

    def __init__(self, program):
        self.policy = program.full_policy()
        self.xfdd = build_xfdd(self.policy, registry=program.registry)
        self.store = Store(program.state_defaults)
        self.mirror = Store(program.state_defaults)

    def send(self, **fields):
        packet = make_packet(**fields)
        self.store, out, _ = eval_policy(self.policy, self.store, packet)
        self.mirror, out2 = evaluate(self.xfdd, packet, self.mirror)
        assert out == out2 and self.store == self.mirror
        return out

    def passed(self, **fields) -> bool:
        return bool(self.send(**fields))

    def state(self, var, *key):
        return self.store.read(var, tuple(key))


class TestDnsTunnelDetect:
    def test_blacklists_after_threshold_unused_responses(self):
        driver = AppDriver(apps.dns_tunnel_detect(threshold=3))
        client = ip("10.0.6.10")
        for k in range(3):
            driver.send(
                dstip=client, srcport=53, **{"dns.rdata": ip(f"10.0.1.{k + 1}")}
            )
        assert driver.state("blacklist", client) is True
        assert driver.state("susp-client", client) == 3

    def test_using_resolved_address_decrements(self):
        driver = AppDriver(apps.dns_tunnel_detect(threshold=3))
        client = ip("10.0.6.10")
        server = ip("10.0.1.1")
        driver.send(dstip=client, srcport=53, **{"dns.rdata": server})
        assert driver.state("susp-client", client) == 1
        driver.send(srcip=client, dstip=server, srcport=999)
        assert driver.state("susp-client", client) == 0
        assert driver.state("blacklist", client) is False


class TestManyIpDomains:
    def test_flags_ip_hosting_many_domains(self):
        driver = AppDriver(apps.many_ip_domains(threshold=2))
        shared_ip = ip("6.6.6.6")
        driver.send(srcport=53, **{"dns.rdata": shared_ip, "dns.qname": "a.com"})
        assert driver.state("mal-ip-list", shared_ip) is False
        driver.send(srcport=53, **{"dns.rdata": shared_ip, "dns.qname": "b.com"})
        assert driver.state("mal-ip-list", shared_ip) is True

    def test_repeated_domain_not_double_counted(self):
        driver = AppDriver(apps.many_ip_domains(threshold=2))
        shared_ip = ip("6.6.6.6")
        for _ in range(3):
            driver.send(srcport=53, **{"dns.rdata": shared_ip, "dns.qname": "a.com"})
        assert driver.state("mal-ip-list", shared_ip) is False


class TestManyDomainIps:
    def test_flags_domain_with_many_ips(self):
        driver = AppDriver(apps.many_domain_ips(threshold=2))
        driver.send(srcport=53, **{"dns.qname": "evil.com", "dns.rdata": ip("1.1.1.1")})
        driver.send(srcport=53, **{"dns.qname": "evil.com", "dns.rdata": ip("2.2.2.2")})
        assert driver.state("mal-domain-list", "evil.com") is True


class TestDnsTtlChange:
    def test_counts_ttl_changes(self):
        driver = AppDriver(apps.dns_ttl_change())
        rdata = ip("9.9.9.9")
        driver.send(srcport=53, **{"dns.rdata": rdata, "dns.ttl": 60})
        driver.send(srcport=53, **{"dns.rdata": rdata, "dns.ttl": 60})
        assert driver.state("ttl-change", rdata) == 0
        driver.send(srcport=53, **{"dns.rdata": rdata, "dns.ttl": 30})
        assert driver.state("ttl-change", rdata) == 1
        assert driver.state("last-ttl", rdata) == 30


class TestSidejack:
    SERVER = ip("10.0.6.80")

    def test_session_bound_to_first_client(self):
        driver = AppDriver(apps.sidejack_detect())
        assert driver.passed(
            dstip=self.SERVER, sid=42, srcip=ip("10.0.1.1"),
            **{"http.user-agent": "firefox"},
        )
        # Same client, same agent: allowed.
        assert driver.passed(
            dstip=self.SERVER, sid=42, srcip=ip("10.0.1.1"),
            **{"http.user-agent": "firefox"},
        )
        # Hijacker with a different address/agent: dropped.
        assert not driver.passed(
            dstip=self.SERVER, sid=42, srcip=ip("10.0.2.2"),
            **{"http.user-agent": "curl"},
        )

    def test_no_session_id_ignored(self):
        driver = AppDriver(apps.sidejack_detect())
        assert driver.passed(dstip=self.SERVER, sid=0, srcip=ip("10.0.2.2"))


class TestSpamDetect:
    def test_new_mta_tracked_then_flagged(self):
        driver = AppDriver(apps.spam_detect(threshold=3))
        for _ in range(2):
            driver.send(**{"smtp.MTA": "mail.example"})
        assert driver.state("MTA-dir", "mail.example") == Symbol("Tracked")
        driver.send(**{"smtp.MTA": "mail.example"})
        assert driver.state("MTA-dir", "mail.example") == Symbol("Spammer")


class TestStatefulFirewall:
    INSIDE = ip("10.0.6.5")
    OUTSIDE = ip("10.0.1.1")

    def test_outside_initiation_blocked(self):
        driver = AppDriver(apps.stateful_firewall())
        assert not driver.passed(srcip=self.OUTSIDE, dstip=self.INSIDE)

    def test_inside_opens_return_path(self):
        driver = AppDriver(apps.stateful_firewall())
        assert driver.passed(srcip=self.INSIDE, dstip=self.OUTSIDE)
        assert driver.passed(srcip=self.OUTSIDE, dstip=self.INSIDE)

    def test_unrelated_traffic_passes(self):
        driver = AppDriver(apps.stateful_firewall())
        assert driver.passed(srcip=ip("10.0.1.1"), dstip=ip("10.0.2.2"))


class TestFtpMonitoring:
    def test_data_channel_requires_announcement(self):
        driver = AppDriver(apps.ftp_monitoring())
        client, server = ip("10.0.1.1"), ip("10.0.2.2")
        # Data packet without a control-channel announcement: dropped.
        assert not driver.passed(
            srcip=server, dstip=client, srcport=20, **{"ftp.PORT": 5050}
        )
        # Control-channel PORT announcement...
        driver.send(srcip=client, dstip=server, dstport=21, **{"ftp.PORT": 5050})
        # ... opens the data channel.
        assert driver.passed(
            srcip=server, dstip=client, srcport=20, **{"ftp.PORT": 5050}
        )


class TestHeavyHitter:
    def test_flags_after_threshold_syns(self):
        driver = AppDriver(apps.heavy_hitter_detect(threshold=3))
        src = ip("10.0.1.1")
        for _ in range(3):
            driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        assert driver.state("heavy-hitter", src) is True

    def test_non_syn_not_counted(self):
        driver = AppDriver(apps.heavy_hitter_detect(threshold=2))
        src = ip("10.0.1.1")
        driver.send(srcip=src, **{"tcp.flags": Symbol("ACK")})
        assert driver.state("hh-counter", src) == 0

    def test_block_composition_drops_flagged(self):
        driver = AppDriver(apps.heavy_hitter_block(threshold=2))
        src = ip("10.0.1.1")
        assert driver.passed(srcip=src, **{"tcp.flags": Symbol("SYN")})
        # Second SYN reaches the threshold; flagged and dropped.
        assert not driver.passed(srcip=src, **{"tcp.flags": Symbol("SYN")})
        assert not driver.passed(srcip=src, **{"tcp.flags": Symbol("ACK")})


class TestSuperSpreader:
    def test_fin_balances_syn(self):
        driver = AppDriver(apps.super_spreader_detect(threshold=2))
        src = ip("10.0.1.1")
        driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        driver.send(srcip=src, **{"tcp.flags": Symbol("FIN")})
        driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        assert driver.state("super-spreader", src) is False
        driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        assert driver.state("super-spreader", src) is True


class TestSampling:
    FLOW = dict(srcip=1, dstip=2, srcport=3, dstport=4, proto=6)

    def test_small_flow_sampled_one_in_period(self):
        driver = AppDriver(apps.sampling_by_flow_size(small_period=3))
        results = [driver.passed(**self.FLOW) for _ in range(6)]
        assert sum(results) == 2  # one in three packets passes

    def test_flow_type_progression(self):
        driver = AppDriver(apps.flow_size_detect())
        key = (1, 2, 3, 4, 6)
        driver.send(**self.FLOW)
        assert driver.state("flow-type", *key) == Symbol("SMALL")
        for _ in range(99):
            driver.send(**self.FLOW)
        assert driver.state("flow-type", *key) == Symbol("MEDIUM")


class TestSelectivePacketDropping:
    def test_b_frames_dropped_after_budget(self):
        driver = AppDriver(apps.selective_packet_dropping(gop=2))
        flow = dict(srcip=1, dstip=2, srcport=3, dstport=4)
        driver.send(**flow, **{"mpeg.frame-type": Symbol("Iframe")})
        assert driver.passed(**flow, **{"mpeg.frame-type": Symbol("Bframe")})
        assert driver.passed(**flow, **{"mpeg.frame-type": Symbol("Bframe")})
        # Budget exhausted: dependent frames dropped until the next I-frame.
        assert not driver.passed(**flow, **{"mpeg.frame-type": Symbol("Bframe")})
        driver.send(**flow, **{"mpeg.frame-type": Symbol("Iframe")})
        assert driver.passed(**flow, **{"mpeg.frame-type": Symbol("Bframe")})


class TestSynFlood:
    def test_unacked_syns_flag_source(self):
        driver = AppDriver(apps.syn_flood_detect(threshold=2))
        src = ip("10.0.1.1")
        driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        driver.send(srcip=src, **{"tcp.flags": Symbol("SYN")})
        assert driver.state("syn-flooder", src) is True


class TestDnsAmplification:
    def test_unsolicited_response_dropped(self):
        driver = AppDriver(apps.dns_amplification_mitigation())
        victim, resolver = ip("10.0.1.1"), ip("8.8.8.8")
        assert not driver.passed(srcip=resolver, dstip=victim, srcport=53)
        # After a real query, the response passes.
        driver.send(srcip=victim, dstip=resolver, dstport=53)
        assert driver.passed(srcip=resolver, dstip=victim, srcport=53)


class TestUdpFlood:
    def test_flooder_flagged_and_dropped(self):
        driver = AppDriver(apps.udp_flood_mitigation(threshold=2))
        src = ip("10.0.1.1")
        assert driver.passed(srcip=src, proto=Symbol("UDP"))
        assert not driver.passed(srcip=src, proto=Symbol("UDP"))  # hits threshold
        assert driver.state("udp-flooder", src) is True
        # Flagged sources short-circuit the counter afterwards.
        assert driver.passed(srcip=src, proto=Symbol("UDP"))
        assert driver.state("udp-counter", src) == 2


class TestTcpStateMachine:
    FWD = dict(srcip=1, dstip=2, srcport=10, dstport=20, proto=6)
    REV = dict(srcip=2, dstip=1, srcport=20, dstport=10, proto=6)
    KEY = (1, 2, 10, 20, 6)

    def _flags(self, name):
        return {"tcp.flags": Symbol(name)}

    def test_three_way_handshake(self):
        driver = AppDriver(apps.tcp_state_machine())
        driver.send(**self.FWD, **self._flags("SYN"))
        assert driver.state("tcp-state", *self.KEY) == Symbol("SYN-SENT")
        driver.send(**self.REV, **self._flags("SYN-ACK"))
        assert driver.state("tcp-state", *self.KEY) == Symbol("SYN-RECEIVED")
        driver.send(**self.FWD, **self._flags("ACK"))
        assert driver.state("tcp-state", *self.KEY) == Symbol("ESTABLISHED")

    def test_teardown(self):
        driver = AppDriver(apps.tcp_state_machine())
        for packet, flag in (
            (self.FWD, "SYN"), (self.REV, "SYN-ACK"), (self.FWD, "ACK"),
            (self.FWD, "FIN"), (self.REV, "FIN-ACK"), (self.FWD, "ACK"),
        ):
            driver.send(**packet, **self._flags(flag))
        assert driver.state("tcp-state", *self.KEY) == Symbol("CLOSED")

    def test_rst_closes(self):
        driver = AppDriver(apps.tcp_state_machine())
        for packet, flag in (
            (self.FWD, "SYN"), (self.REV, "SYN-ACK"), (self.FWD, "ACK"),
            (self.REV, "RST"),
        ):
            driver.send(**packet, **self._flags(flag))
        assert driver.state("tcp-state", *self.KEY) == Symbol("CLOSED")


class TestSnortFlowbits:
    def test_sets_kindle_bit_for_matching_traffic(self):
        driver = AppDriver(apps.snort_flowbits(home_net="10.0.0.0/8"))
        flow = dict(srcip=ip("10.0.1.1"), dstip=ip("93.0.0.1"),
                    srcport=555, dstport=80, proto=6)
        key = (flow["srcip"], flow["dstip"], 555, 80, 6)
        driver.store.write("established", key, True)
        driver.mirror.write("established", key, True)
        driver.send(**flow, content="Kindle/3.0+")
        assert driver.state("kindle", *key) is True

    def test_requires_established(self):
        driver = AppDriver(apps.snort_flowbits(home_net="10.0.0.0/8"))
        flow = dict(srcip=ip("10.0.1.1"), dstip=ip("93.0.0.1"),
                    srcport=555, dstport=80, proto=6)
        out = driver.send(**flow, content="Kindle/3.0+")
        assert not out


class TestConnectionAffinity:
    def test_established_goes_to_lb(self):
        driver = AppDriver(apps.connection_affinity())
        key = (1, 2, 10, 20, 6)
        flow = dict(srcip=1, dstip=2, srcport=10, dstport=20, proto=6)
        out = driver.send(**flow)
        assert all(p.get("outport") is None for p in out)
        driver.store.write("tcp-state", key, Symbol("ESTABLISHED"))
        driver.mirror.write("tcp-state", key, Symbol("ESTABLISHED"))
        out = driver.send(**flow)
        assert any(p.get("outport") == 1 for p in out)


class TestElephantFlows:
    def test_small_flows_all_dropped_large_sampled(self):
        driver = AppDriver(apps.elephant_flow_detect())
        flow = dict(srcip=1, dstip=2, srcport=3, dstport=4, proto=6)
        # flow-size-detect; sample-large: until the large-sampler fires,
        # packets are dropped (sampled out).
        results = [driver.passed(**flow) for _ in range(500)]
        assert sum(results) == 1  # exactly the 500th packet sampled
