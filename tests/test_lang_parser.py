"""Unit tests for the concrete-syntax parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse, parse_predicate
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix


class TestPrimitives:
    def test_id(self):
        assert parse("id") == ast.Id()

    def test_drop(self):
        assert parse("drop") == ast.Drop()

    def test_field_test_int(self):
        assert parse("srcport = 53") == ast.Test("srcport", 53)

    def test_field_test_prefix(self):
        parsed = parse("dstip = 10.0.6.0/24")
        assert parsed == ast.Test("dstip", IPPrefix("10.0.6.0/24"))

    def test_host_ip_becomes_int(self):
        parsed = parse("dstip = 10.0.6.1")
        assert parsed == ast.Test("dstip", IPPrefix("10.0.6.1").network)

    def test_field_test_symbol(self):
        parsed = parse("tcp.flags = SYN")
        assert parsed == ast.Test("tcp.flags", Symbol("SYN"))

    def test_field_test_string(self):
        parsed = parse('content = "Kindle/3.0+"')
        assert parsed == ast.Test("content", "Kindle/3.0+")

    def test_field_mod(self):
        assert parse("outport <- 6") == ast.Mod("outport", 6)

    def test_case_insensitive_fields(self):
        assert parse("DNS.rdata = 5") == ast.Test("dns.rdata", 5)


class TestStateOperations:
    def test_state_test(self):
        parsed = parse("orphan[srcip][dstip] = True")
        assert parsed == ast.StateTest(
            "orphan", ast.Vector([ast.Field("srcip"), ast.Field("dstip")]), True
        )

    def test_state_test_boolean_sugar(self):
        assert parse("orphan[srcip][dstip]") == parse("orphan[srcip][dstip] = True")

    def test_state_mod(self):
        parsed = parse("blacklist[dstip] <- True")
        assert parsed == ast.StateMod("blacklist", ast.Field("dstip"), True)

    def test_state_mod_field_value(self):
        parsed = parse("hon-ip[inport] <- srcip")
        assert parsed == ast.StateMod(
            "hon-ip", ast.Field("inport"), ast.Field("srcip")
        )

    def test_increment(self):
        assert parse("susp-client[dstip]++") == ast.StateIncr(
            "susp-client", ast.Field("dstip")
        )

    def test_decrement(self):
        assert parse("susp-client[srcip]--") == ast.StateDecr(
            "susp-client", ast.Field("srcip")
        )

    def test_increment_without_index_rejected(self):
        with pytest.raises(ParseError):
            parse("counter++")

    def test_hyphenated_state_names(self):
        parsed = parse("MTA-dir[smtp.MTA] = Unknown")
        assert isinstance(parsed, ast.StateTest)
        assert parsed.var == "MTA-dir"


class TestComposition:
    def test_seq_binds_tighter_than_par(self):
        parsed = parse("id; drop + id")
        assert isinstance(parsed, ast.Parallel)
        assert isinstance(parsed.left, ast.Seq)

    def test_parens_override(self):
        parsed = parse("id; (drop + id)")
        assert isinstance(parsed, ast.Seq)
        assert isinstance(parsed.right, ast.Parallel)

    def test_conjunction(self):
        parsed = parse("dstip = 10.0.6.0/24 & srcport = 53")
        assert isinstance(parsed, ast.And)

    def test_disjunction(self):
        parsed = parse("srcport = 53 | dstport = 53")
        assert isinstance(parsed, ast.Or)

    def test_negation_bang(self):
        assert parse("!heavy-hitter[srcip]") == ast.Not(
            ast.StateTest("heavy-hitter", ast.Field("srcip"), True)
        )

    def test_negation_unicode(self):
        assert parse("¬heavy-hitter[srcip]") == parse("!heavy-hitter[srcip]")

    def test_negation_keyword(self):
        assert parse("not heavy-hitter[srcip]") == parse("!heavy-hitter[srcip]")

    def test_and_tighter_than_or(self):
        parsed = parse("srcport = 1 | srcport = 2 & dstport = 3")
        assert isinstance(parsed, ast.Or)
        assert isinstance(parsed.right, ast.And)

    def test_atomic(self):
        parsed = parse("atomic(s[srcip] <- True; t[srcip] <- False)")
        assert isinstance(parsed, ast.Atomic)
        assert isinstance(parsed.body, ast.Seq)


class TestConditional:
    def test_basic(self):
        parsed = parse("if srcport = 53 then id else drop")
        assert parsed == ast.If(ast.Test("srcport", 53), ast.Id(), ast.Drop())

    def test_then_branch_takes_sequence(self):
        parsed = parse("if srcport = 53 then s[srcip] <- 1; t[srcip] <- 2 else id")
        assert isinstance(parsed.then, ast.Seq)

    def test_else_binds_single_statement(self):
        parsed = parse("if srcport = 1 then id else id; drop")
        # '; drop' continues the outer sequence, not the else branch.
        assert isinstance(parsed, ast.Seq)
        assert isinstance(parsed.left, ast.If)

    def test_nested_else_if(self):
        parsed = parse(
            "if srcport = 1 then id else if srcport = 2 then id else drop"
        )
        assert isinstance(parsed.orelse, ast.If)

    def test_missing_else_rejected(self):
        with pytest.raises(ParseError):
            parse("if srcport = 53 then id")


class TestResolution:
    def test_params(self):
        parsed = parse("s[srcip] = threshold", params={"threshold": 7})
        assert parsed == ast.StateTest("s", ast.Field("srcip"), 7)

    def test_definitions(self):
        inner = ast.Mod("outport", 2)
        parsed = parse("id; lb", definitions={"lb": inner})
        assert parsed == ast.Seq(ast.Id(), inner)

    def test_unknown_bare_name_rejected(self):
        with pytest.raises(ParseError):
            parse("no-such-policy")

    def test_unknown_field_in_mod_rejected(self):
        with pytest.raises(ParseError):
            parse("nonfield <- 3")

    def test_field_field_test_rejected(self):
        with pytest.raises(ParseError):
            parse("srcip = dstip")

    def test_comments(self):
        parsed = parse("id # trailing comment\n; drop // another")
        assert parsed == ast.Seq(ast.Id(), ast.Drop())

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as err:
            parse("id;\n  @bad")
        assert "line 2" in str(err.value)


class TestParsePredicate:
    def test_accepts_predicate(self):
        pred = parse_predicate("srcip = 10.0.1.0/24 & inport = 1")
        assert isinstance(pred, ast.And)

    def test_plus_over_predicates_becomes_or(self):
        pred = parse_predicate("(inport = 1) + (inport = 2)")
        assert isinstance(pred, ast.Or)

    def test_rejects_effects(self):
        with pytest.raises(ParseError):
            parse_predicate("outport <- 1")
