"""Tests for the static state-effect analyzer (``repro.analysis.effects``).

Four load-bearing properties:

* every state write in every Table-3 application classifies into the
  update-kind lattice — no UNKNOWNs, and the per-variable joins match a
  hand-checked table;
* seeded ``Parallel`` races are flagged with the right severity:
  conflicting constant writes are order-dependent (SNAP-E001), parallel
  increments are benign-commutative (SNAP-W101), read/write overlaps
  warn (SNAP-W102) — and none of the shard-safe apps report an
  order-dependent race;
* the analyzer's safety verdict is *sound*: whenever
  ``interleaving_safe`` holds, every adversarial interleaving of
  concurrent in-flight packets lands on a store some serial (OBS) order
  also produces (hypothesis property over random policies);
* shard-collapse reasons (SNAP-W104) surface through ``plan_for``,
  engine ``last_run_stats``, and lane-failure messages.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.effects import (
    EffectKind,
    analyze_effects,
    commutative_delta_vars,
    xfdd_effects,
)
from repro.apps import ALL_APPS, assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import (
    ShardedEngine,
    _raise_lane_failure,
    plan_for,
)
from repro.dataplane.network import Network
from repro.lang import ast
from repro.lang.errors import (
    CompileError,
    DataPlaneError,
    InconsistentStateError,
    PlacementError,
    RaceConditionError,
)
from repro.lang.semantics import eval_policy
from repro.lang.state import Store
from repro.milp.placement import build_placement_model
from repro.milp.results import extract_paths, validate_solution
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd
from repro import workloads

from tests.strategies import STATE_VARS, VALUES, packets, registry
from tests.test_property_network import diamond_topology, egress_policy

K = EffectKind

# Hand-checked per-app expectations: written variable -> joined kind.
# Apps listed in SAFE_APPS have no transaction hazard (at most one
# order-sensitive atomic group); HAZARD_APPS carry exactly one SNAP-W103
# finding.  *No* Table-3 app has a Parallel-arm race.
SAFE_APPS = {
    "spam-detect": {"MTA-dir": K.CONST_WRITE, "mail-counter": K.GENERAL_RMW},
    "stateful-firewall": {"established": K.IDEMPOTENT_INSERT},
    "ftp-monitoring": {"ftp-data-chan": K.IDEMPOTENT_INSERT},
    "heavy-hitter": {
        "heavy-hitter": K.IDEMPOTENT_INSERT,
        "hh-counter": K.INCREMENT,
    },
    "global-heavy-hitter": {"global-hh": K.INCREMENT},
    "super-spreader": {
        "spreader": K.INCREMENT,
        "super-spreader": K.IDEMPOTENT_INSERT,
    },
    "selective-packet-dropping": {"dep-count": K.GENERAL_RMW},
    "connection-affinity": {},
    "syn-flood": {
        "syn-count": K.INCREMENT,
        "syn-flooder": K.IDEMPOTENT_INSERT,
    },
    "dns-amplification": {"benign-request": K.IDEMPOTENT_INSERT},
    "udp-flood": {
        "udp-counter": K.INCREMENT,
        "udp-flooder": K.IDEMPOTENT_INSERT,
    },
    "tcp-state-machine": {"tcp-state": K.CONST_WRITE},
    "snort-flowbits": {"kindle": K.IDEMPOTENT_INSERT},
}
HAZARD_APPS = (
    "many-ip-domains",
    "many-domain-ips",
    "dns-ttl-change",
    "dns-tunnel-detect",
    "sidejack-detect",
    "sampling-by-flow-size",
    "elephant-flows",
    "flow-size-detect",
)


# -- Table-3 classification ---------------------------------------------------


class TestTableThreeClassification:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_every_write_classified_no_parallel_races(self, name):
        report = analyze_effects(ALL_APPS[name]().policy)
        for effect in report.variables.values():
            assert isinstance(effect.kind, EffectKind)
        # No Table-3 app composes conflicting writes in Parallel.
        assert report.races == ()
        assert report.order_dependent_races == ()

    @pytest.mark.parametrize("name", sorted(SAFE_APPS))
    def test_safe_app_kinds(self, name):
        report = analyze_effects(ALL_APPS[name]().policy)
        written = {
            var: effect.kind
            for var, effect in report.variables.items()
            if effect.sites
        }
        assert written == SAFE_APPS[name]
        assert report.hazards == ()
        assert report.interleaving_safe

    @pytest.mark.parametrize("name", HAZARD_APPS)
    def test_hazard_app_flags_one_transaction_hazard(self, name):
        report = analyze_effects(ALL_APPS[name]().policy)
        assert len(report.hazards) == 1
        finding = report.hazards[0]
        assert finding.code == "SNAP-W103"
        assert finding.category == "transaction"
        assert not report.interleaving_safe
        # ... but still no Parallel-arm race: shard-level replay of these
        # apps stays sound, only cross-variable atomicity is at risk.
        assert report.order_dependent_races == ()

    def test_dns_tunnel_kinds(self):
        report = analyze_effects(ALL_APPS["dns-tunnel-detect"]().policy)
        assert report.kind("blacklist") is K.IDEMPOTENT_INSERT
        assert report.kind("orphan") is K.CONST_WRITE
        assert report.kind("susp-client") is K.INCREMENT
        assert report.mergeable_vars >= {"blacklist", "susp-client"}


# -- seeded races -------------------------------------------------------------


def _idx():
    return ast.Value(0)


class TestSeededRaces:
    def test_conflicting_const_writes_are_order_dependent(self):
        policy = ast.Parallel(
            ast.StateMod("s", _idx(), ast.Value(1)),
            ast.StateMod("s", _idx(), ast.Value(2)),
        )
        report = analyze_effects(policy)
        assert len(report.order_dependent_races) == 1
        finding = report.order_dependent_races[0]
        assert finding.code == "SNAP-E001"
        assert finding.variable == "s"
        assert finding.severity == "order-dependent"
        assert not report.interleaving_safe

    def test_parallel_increments_are_benign(self):
        policy = ast.Parallel(
            ast.StateIncr("s", _idx()), ast.StateIncr("s", _idx())
        )
        report = analyze_effects(policy)
        assert report.order_dependent_races == ()
        codes = [f.code for f in report.races]
        assert codes == ["SNAP-W101"]
        assert report.races[0].severity == "benign-commutative"
        assert report.kind("s") is K.INCREMENT

    def test_parallel_read_write_warns(self):
        policy = ast.Parallel(
            ast.If(
                ast.StateTest("s", (_idx(),), ast.Value(1)),
                ast.Drop(),
                ast.Id(),
            ),
            ast.StateIncr("s", _idx()),
        )
        report = analyze_effects(policy)
        codes = sorted(f.code for f in report.races)
        assert "SNAP-W102" in codes
        assert report.order_dependent_races == ()

    def test_same_literal_parallel_insert_is_benign(self):
        policy = ast.Parallel(
            ast.StateMod("s", _idx(), ast.Value(1)),
            ast.StateMod("s", _idx(), ast.Value(1)),
        )
        report = analyze_effects(policy)
        assert report.kind("s") is K.IDEMPOTENT_INSERT
        assert report.order_dependent_races == ()


# -- lattice joins ------------------------------------------------------------


class TestLatticeJoins:
    def test_watermark_is_monotone(self):
        level = lambda v: ast.StateTest("level", ast.Field("fa"), ast.Value(v))
        step = lambda v: ast.StateMod("level", ast.Field("fa"), ast.Value(v))
        policy = ast.If(
            level(0), step(1), ast.If(level(1), step(2), ast.Id())
        )
        report = analyze_effects(policy)
        effect = report.variables["level"]
        assert effect.kind is K.MONOTONE
        assert effect.direction == +1
        assert effect.mergeable
        assert not effect.order_independent  # interleavings can skip rungs

    def test_downward_watermark_direction(self):
        level = lambda v: ast.StateTest("level", ast.Field("fa"), ast.Value(v))
        step = lambda v: ast.StateMod("level", ast.Field("fa"), ast.Value(v))
        policy = ast.If(
            level(2), step(1), ast.If(level(1), step(0), ast.Id())
        )
        effect = analyze_effects(policy).variables["level"]
        assert effect.kind is K.MONOTONE
        assert effect.direction == -1

    def test_unguarded_multi_literal_is_const_write(self):
        policy = ast.If(
            ast.Test("fa", 0),
            ast.StateMod("s", _idx(), ast.Value(1)),
            ast.StateMod("s", _idx(), ast.Value(2)),
        )
        effect = analyze_effects(policy).variables["s"]
        assert effect.kind is K.CONST_WRITE
        assert not effect.mergeable

    def test_field_valued_write_is_general_rmw(self):
        policy = ast.StateMod("s", _idx(), ast.Field("fa"))
        assert analyze_effects(policy).kind("s") is K.GENERAL_RMW

    def test_mixed_incr_and_assign_is_general_rmw(self):
        policy = ast.Seq(
            ast.StateIncr("s", _idx()),
            ast.StateMod("s", _idx(), ast.Value(0)),
        )
        assert analyze_effects(policy).kind("s") is K.GENERAL_RMW

    def test_read_only_variable_reported(self):
        policy = ast.If(
            ast.StateTest("s", (_idx(),), ast.Value(1)), ast.Drop(), ast.Id()
        )
        effect = analyze_effects(policy).variables["s"]
        assert effect.sites == ()
        assert effect.read


# -- xFDD-level effects and the commutative set -------------------------------


def _build(policy):
    deps = analyze_dependencies(policy)
    return build_xfdd(policy, state_rank=deps.state_rank)


class TestXfddEffects:
    def test_delta_only_is_increment(self):
        root = _build(
            ast.Seq(ast.StateIncr("c", _idx()), ast.Mod("outport", 2))
        )
        kinds = xfdd_effects(root)
        assert kinds["c"] is K.INCREMENT
        assert commutative_delta_vars(root) == frozenset({"c"})

    def test_single_literal_assign_is_idempotent_insert(self):
        root = _build(
            ast.Seq(
                ast.StateMod("m", _idx(), ast.Value(1)),
                ast.Mod("outport", 2),
            )
        )
        assert xfdd_effects(root)["m"] is K.IDEMPOTENT_INSERT
        assert commutative_delta_vars(root) == frozenset()

    def test_tested_delta_var_is_not_commutative(self):
        root = _build(
            ast.Seq(
                ast.StateIncr("c", _idx()),
                ast.If(
                    ast.StateTest("c", (_idx(),), ast.Value(3)),
                    ast.Drop(),
                    ast.Mod("outport", 2),
                ),
            )
        )
        assert xfdd_effects(root)["c"] is K.INCREMENT
        assert commutative_delta_vars(root) == frozenset()


# -- shard-collapse reasons ---------------------------------------------------


def _tiny_topology() -> Topology:
    topo = Topology("tiny")
    topo.add_switch("A")
    topo.add_switch("B")
    topo.add_link("A", "B", 1000.0)
    topo.attach_port(1, "A")
    topo.attach_port(2, "A")
    topo.attach_port(3, "B")
    topo.validate()
    return topo


def _mixed_snapshot():
    """Ports 1 and 2 share ``v`` (increment at 1, test at 2): the plan
    must collapse them onto one lane and say why."""
    subnets = default_subnets(3)
    policy = ast.Seq(
        ast.If(
            ast.Test("inport", 1),
            ast.StateIncr("v", ast.Value(0)),
            ast.Id(),
        ),
        ast.Seq(
            ast.If(
                ast.And(
                    ast.Test("inport", 2),
                    ast.StateTest("v", (ast.Value(0),), ast.Value(3)),
                ),
                ast.Drop(),
                ast.Id(),
            ),
            assign_egress(subnets),
        ),
    )
    program = Program(
        policy, assumption=port_assumption(subnets),
        state_defaults={"v": 0}, name="collapse-tiny",
    )
    return SnapController(_tiny_topology(), program).submit()


class TestCollapseReasons:
    def test_plan_carries_reasons(self):
        plan = plan_for(_mixed_snapshot().build_network())
        assert "v" in plan.collapse_reasons
        reason = plan.collapse_reasons["v"]
        assert reason.startswith("SNAP-W104")
        assert "'v'" in reason
        assert "[1, 2]" in reason
        assert "replica-mergeable" in reason  # INCREMENT commutes
        assert plan.summary()["collapse_reasons"] == plan.collapse_reasons

    def test_non_commuting_kind_gets_serialize_remedy(self):
        from tests.test_engine import compiled
        from repro.apps.chimera import dns_tunnel_detect

        snapshot, _ = compiled(app=dns_tunnel_detect(threshold=3))
        plan = plan_for(snapshot.build_network())
        reasons = plan.collapse_reasons
        assert reasons  # dns-tunnel shares state across many ports
        assert all(r.startswith("SNAP-W104") for r in reasons.values())
        assert "do not commute" in reasons["orphan"]
        assert "replica-mergeable" in reasons["susp-client"]

    def test_sharded_engine_last_run_stats(self):
        snapshot = _mixed_snapshot()
        net = snapshot.build_network()
        subnets = default_subnets(3)
        trace = list(
            workloads.background_traffic(subnets, count=40, seed=11)
        )
        engine = ShardedEngine()
        engine.run(net, trace)
        stats = engine.last_run_stats
        assert stats["lanes"] >= 1
        assert stats["parallelism"] >= 1
        assert "v" in stats["collapse_reasons"]

    def test_lane_failure_names_collapse_reason(self):
        plan = plan_for(_mixed_snapshot().build_network())
        index = next(
            i for i, s in enumerate(plan.shards) if "v" in s.variables
        )
        with pytest.raises(DataPlaneError) as excinfo:
            _raise_lane_failure(plan, index, RuntimeError("boom"))
        assert "lane collapse" in str(excinfo.value)
        assert "SNAP-W104" in str(excinfo.value)


# -- soundness: analyzer-safe => adversarial schedules serialize --------------


def _concurrent_bodies():
    """Stateful bodies that stress the safety verdict: increments,
    idempotent inserts, guarded RMWs, parallel arms, atomic pairs."""
    idx = st.sampled_from([ast.Field("fb"), ast.Value(0)])
    var = st.sampled_from(STATE_VARS)
    incr = st.builds(ast.StateIncr, var, idx)
    insert = st.builds(
        ast.StateMod, var, idx, st.just(ast.Value(1))
    )
    rmw = st.builds(
        lambda v, i, val, wval: ast.If(
            ast.StateTest(v, i, ast.Value(val)),
            ast.StateMod(v, i, ast.Value(wval)),
            ast.StateIncr(v, i),
        ),
        var, idx, st.sampled_from(VALUES), st.sampled_from(VALUES),
    )
    par = st.builds(ast.Parallel, incr, st.one_of(incr, insert))
    atomic_pair = st.builds(
        lambda a, b: ast.Atomic(ast.Seq(a, b)),
        st.one_of(insert, rmw),
        st.one_of(incr, insert),
    )
    body = st.one_of(incr, insert, rmw, par, atomic_pair)
    return st.lists(body, min_size=1, max_size=2).map(ast.seq_all)


def _obs_serializations(policy, arrivals, defaults):
    """Final OBS stores of every serial order of the arrivals."""
    from itertools import permutations

    stores = []
    for order in permutations(arrivals):
        store = Store(dict(defaults))
        for packet, port in order:
            tagged = packet.modify("inport", port)
            store, _, _ = eval_policy(policy, store, tagged)
        stores.append(store)
    return stores


class TestInterleavingSoundness:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
            HealthCheck.data_too_large,
        ],
    )
    @given(
        body=_concurrent_bodies(),
        arrivals=st.lists(
            st.tuples(packets(), st.sampled_from((1, 2, 3))),
            min_size=2,
            max_size=3,
        ),
        picks=st.lists(
            st.integers(min_value=0, max_value=7), max_size=30
        ),
    )
    def test_safe_policies_serialize_under_adversarial_schedules(
        self, body, arrivals, picks
    ):
        policy = ast.Seq(body, egress_policy())
        report = analyze_effects(policy)
        assume(report.interleaving_safe)

        reg = registry()
        try:
            deps = analyze_dependencies(policy)
            xfdd = build_xfdd(policy, registry=reg, state_rank=deps.state_rank)
        except (RaceConditionError, CompileError):
            assume(False)
            return
        topo = diamond_topology()
        from repro.analysis.packet_state import packet_state_mapping

        ports = (1, 2, 3)
        mapping = packet_state_mapping(xfdd, ports, ports)
        demands = uniform_traffic_matrix(ports, 1.0)
        try:
            solution = build_placement_model(
                topo, demands, mapping, deps
            ).solve()
            routing = extract_paths(solution, topo, mapping, deps)
            validate_solution(routing, topo, mapping, deps)
        except PlacementError:
            assume(False)
            return
        defaults = {v: 0 for v in STATE_VARS}
        net = Network(
            topo, xfdd, solution.placement, routing, mapping, demands,
            defaults,
        )

        choices = iter(picks)

        def scheduler(pending):
            return next(choices, 0) % len(pending)

        try:
            net.inject_concurrent(list(arrivals), scheduler=scheduler)
            serializations = _obs_serializations(policy, arrivals, defaults)
        except InconsistentStateError:
            assume(False)
            return
        assert net.global_store() in serializations
