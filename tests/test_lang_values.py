"""Unit tests for the value model (Symbols, matching, disjointness)."""

from repro.lang.values import (
    Symbol,
    matches,
    value_implies,
    value_sort_key,
    values_disjoint,
)
from repro.util.ipaddr import IPPrefix


class TestSymbol:
    def test_interned(self):
        assert Symbol("SYN") is Symbol("SYN")

    def test_equality(self):
        assert Symbol("SYN") == Symbol("SYN")
        assert Symbol("SYN") != Symbol("FIN")

    def test_str(self):
        assert str(Symbol("ESTABLISHED")) == "ESTABLISHED"

    def test_not_equal_to_string(self):
        assert Symbol("SYN") != "SYN"


class TestMatches:
    def test_plain_equality(self):
        assert matches(53, 53)
        assert not matches(53, 80)

    def test_prefix_contains_int(self):
        p = IPPrefix("10.0.6.0/24")
        assert matches(IPPrefix("10.0.6.7").network, p)
        assert not matches(IPPrefix("10.0.7.7").network, p)

    def test_prefix_vs_prefix(self):
        assert matches(IPPrefix("10.0.6.0/25"), IPPrefix("10.0.6.0/24"))
        assert not matches(IPPrefix("10.0.0.0/16"), IPPrefix("10.0.6.0/24"))

    def test_bool_never_matches_prefix(self):
        assert not matches(True, IPPrefix("0.0.0.0/0"))

    def test_none_field(self):
        assert not matches(None, 53)

    def test_symbol_match(self):
        assert matches(Symbol("SYN"), Symbol("SYN"))


class TestValuesDisjoint:
    def test_distinct_ints(self):
        assert values_disjoint(1, 2)
        assert not values_disjoint(1, 1)

    def test_prefix_vs_contained_int(self):
        p = IPPrefix("10.0.6.0/24")
        assert not values_disjoint(p, IPPrefix("10.0.6.1").network)
        assert values_disjoint(p, IPPrefix("10.0.7.1").network)

    def test_disjoint_prefixes(self):
        assert values_disjoint(IPPrefix("10.0.6.0/24"), IPPrefix("10.0.7.0/24"))
        assert not values_disjoint(IPPrefix("10.0.0.0/16"), IPPrefix("10.0.6.0/24"))

    def test_symbols(self):
        assert values_disjoint(Symbol("SYN"), Symbol("FIN"))
        assert not values_disjoint(Symbol("SYN"), Symbol("SYN"))


class TestValueImplies:
    def test_same_value(self):
        assert value_implies(5, 5)

    def test_int_in_prefix(self):
        assert value_implies(IPPrefix("10.0.6.1").network, IPPrefix("10.0.6.0/24"))

    def test_narrower_prefix(self):
        assert value_implies(IPPrefix("10.0.6.0/25"), IPPrefix("10.0.6.0/24"))
        assert not value_implies(IPPrefix("10.0.6.0/24"), IPPrefix("10.0.6.0/25"))

    def test_unrelated(self):
        assert not value_implies(5, 6)


class TestValueSortKey:
    def test_total_order_over_mixed_types(self):
        values = [True, 3, IPPrefix("10.0.0.0/8"), "abc", Symbol("SYN"), (1, 2)]
        ordered = sorted(values, key=value_sort_key)
        assert len(ordered) == len(values)

    def test_bools_before_ints(self):
        assert value_sort_key(True) < value_sort_key(0)
