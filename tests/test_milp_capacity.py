"""Tests for the §7.3 resource-constraints extension (switch memory caps)."""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.lang import ast
from repro.lang.errors import PlacementError
from repro.milp.placement import build_placement_model
from repro.topology.campus import campus_topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd
from repro.apps.chimera import dns_tunnel_detect


def campus_case():
    subnets = default_subnets(6)
    program = ast.Seq(
        port_assumption(subnets),
        ast.Seq(dns_tunnel_detect().policy, assign_egress(subnets)),
    )
    deps = analyze_dependencies(program)
    xfdd = build_xfdd(program, state_rank=deps.state_rank)
    mapping = packet_state_mapping(xfdd, range(1, 7), range(1, 7))
    demands = uniform_traffic_matrix(range(1, 7), 1.0)
    return campus_topology(), demands, mapping, deps


class TestStateCapacity:
    def test_unconstrained_colocates_on_d4(self):
        topo, demands, mapping, deps = campus_case()
        solution = build_placement_model(topo, demands, mapping, deps).solve()
        assert set(solution.placement.values()) == {"D4"}

    def test_capacity_one_spreads_state(self):
        topo, demands, mapping, deps = campus_case()
        solution = build_placement_model(
            topo, demands, mapping, deps, state_capacity=1
        ).solve()
        switches = list(solution.placement.values())
        # Three variables, at most one per switch -> three distinct switches.
        assert len(set(switches)) == 3

    def test_capacity_two(self):
        topo, demands, mapping, deps = campus_case()
        solution = build_placement_model(
            topo, demands, mapping, deps, state_capacity=2
        ).solve()
        from collections import Counter

        per_switch = Counter(solution.placement.values())
        assert max(per_switch.values()) <= 2

    def test_per_switch_dict_capacity(self):
        topo, demands, mapping, deps = campus_case()
        # D4 may hold nothing; everything must go elsewhere.
        capacity = {n: 3 for n in topo.switches()}
        capacity["D4"] = 0
        solution = build_placement_model(
            topo, demands, mapping, deps, state_capacity=capacity
        ).solve()
        assert "D4" not in set(solution.placement.values())

    def test_capacity_still_respects_ordering(self):
        from repro.milp.results import extract_paths, validate_solution

        topo, demands, mapping, deps = campus_case()
        solution = build_placement_model(
            topo, demands, mapping, deps, state_capacity=1
        ).solve()
        routing = extract_paths(solution, topo, mapping, deps)
        validate_solution(routing, topo, mapping, deps)

    def test_infeasible_when_total_capacity_too_small(self):
        topo, demands, mapping, deps = campus_case()
        capacity = {n: 0 for n in topo.switches()}
        model = build_placement_model(
            topo, demands, mapping, deps, state_capacity=capacity
        )
        with pytest.raises(PlacementError):
            model.solve()
