"""Tests for the workload generators and detection-quality integration.

Beyond checking the generators themselves, these drive attack/benign
traces through *compiled, distributed* deployments and assert the
applications detect what they should and spare what they should not.
"""

import pytest

from repro import workloads
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
    selective_packet_dropping,
    syn_flood_detect,
    tcp_state_machine,
)
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.lang import ast, make_packet
from repro.lang.values import Symbol
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix
from repro.workloads import replay, replay_obs


def ip(text):
    return IPPrefix(text).network


SUBNETS = default_subnets(6)


def compiled_network(app, guard=None):
    policy = app.policy if guard is None else ast.If(guard, app.policy, ast.Id())
    program = Program(
        ast.Seq(policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    result = SnapController(campus_topology(), program).submit()
    return result.build_network(), program


class TestGenerators:
    def test_trace_concat_and_len(self):
        a = workloads.syn_flood(ip("10.0.1.1"), 1, ip("10.0.6.1"), count=3)
        b = workloads.udp_flood(ip("10.0.2.2"), 2, ip("10.0.6.1"), count=2)
        combined = a + b
        assert len(combined) == 5

    def test_interleave_preserves_relative_order(self):
        a = workloads.syn_flood(ip("10.0.1.1"), 1, ip("10.0.6.1"), count=4)
        b = workloads.udp_flood(ip("10.0.2.2"), 2, ip("10.0.6.1"), count=4)
        merged = a.interleaved_with(b, seed=1)
        only_a = [p for p, _ in merged if p.get("tcp.flags") == Symbol("SYN")]
        assert only_a == [p for p, _ in a]

    def test_interleave_contract(self):
        """The full merge contract: every arrival of both traces appears
        exactly once, each trace's internal order is preserved, the input
        traces are not consumed, and a seed fully determines the result."""
        a = workloads.syn_flood(ip("10.0.1.1"), 1, ip("10.0.6.1"), count=37)
        b = workloads.udp_flood(ip("10.0.2.2"), 2, ip("10.0.6.1"), count=23)
        a_before, b_before = list(a), list(b)
        merged = a.interleaved_with(b, seed=5)
        assert len(merged) == len(a) + len(b)
        # Source traces untouched (the old pop(0) merge copied first, but
        # the contract should not depend on that accident).
        assert list(a) == a_before and list(b) == b_before
        # Stability: each trace's arrivals appear in their original order.
        arrivals = list(merged)
        only_a = [x for x in arrivals if x in a_before]
        only_b = [x for x in arrivals if x in b_before]
        assert only_a == a_before
        assert only_b == b_before
        # Determinism: same seed, same interleaving; the seed matters.
        assert list(a.interleaved_with(b, seed=5)) == arrivals
        assert list(a.interleaved_with(b, seed=6)) != arrivals

    def test_interleave_with_empty_trace(self):
        a = workloads.syn_flood(ip("10.0.1.1"), 1, ip("10.0.6.1"), count=3)
        empty = workloads.Trace("empty", [])
        assert list(a.interleaved_with(empty, seed=0)) == list(a)
        assert list(empty.interleaved_with(a, seed=0)) == list(a)

    def test_deterministic(self):
        t1 = workloads.background_traffic(SUBNETS, count=10, seed=5)
        t2 = workloads.background_traffic(SUBNETS, count=10, seed=5)
        assert [p for p, _ in t1] == [p for p, _ in t2]

    def test_tcp_session_shape(self):
        trace = workloads.tcp_session(ip("10.0.1.1"), ip("10.0.6.1"), 1, 6)
        flags = [p.get("tcp.flags").name for p, _ in trace]
        assert flags[:3] == ["SYN", "SYN-ACK", "ACK"]
        assert flags[-3:] == ["FIN", "FIN-ACK", "ACK"]

    def test_mpeg_lost_iframe(self):
        trace = workloads.mpeg_stream(
            ip("10.0.1.1"), ip("10.0.6.1"), 1, gop=2, groups=2,
            lose_iframe_group=1,
        )
        kinds = [p.get("mpeg.frame-type").name for p, _ in trace]
        assert kinds.count("Iframe") == 1
        assert kinds.count("Bframe") == 4


class TestDetectionQuality:
    def test_tunnel_detected_benign_spared(self):
        app = dns_tunnel_detect(threshold=3)
        network, _program = compiled_network(app)
        attacker_client = ip("10.0.6.66")
        benign_client = ip("10.0.6.77")
        attack = workloads.dns_tunnel_attack(
            attacker_client, 6, ip("10.0.1.53"), 1, num_responses=4
        )
        benign = workloads.benign_dns_usage(
            benign_client, 6, ip("10.0.1.53"), 1,
            servers=[ip("10.0.2.10"), ip("10.0.2.11")], server_port=2,
        )
        replay(attack.interleaved_with(benign, seed=3), network)
        store = network.global_store()
        assert store.read("blacklist", (attacker_client,)) is True
        assert store.read("blacklist", (benign_client,)) is False

    def test_syn_flood_flagged_sessions_spared(self):
        app = syn_flood_detect(threshold=10)
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        network, _ = compiled_network(app, guard=guard)
        flood = workloads.syn_flood(ip("10.0.1.66"), 1, ip("10.0.6.1"), count=12)
        sessions = workloads.Trace("sessions", [])
        for k in range(3):
            sessions = sessions + workloads.tcp_session(
                ip("10.0.2.5"), ip("10.0.6.1"), 2, 6, sport=40000 + k
            )
        replay(flood.interleaved_with(sessions, seed=9), network)
        store = network.global_store()
        assert store.read("syn-flooder", (ip("10.0.1.66"),)) is True
        assert store.read("syn-flooder", (ip("10.0.2.5"),)) is False

    def test_mpeg_selective_dropping_rate(self):
        app = selective_packet_dropping(gop=4)
        guard = ast.Test("dstip", SUBNETS[6])
        network, _ = compiled_network(app, guard=guard)
        healthy = workloads.mpeg_stream(
            ip("10.0.1.1"), ip("10.0.6.1"), 1, gop=4, groups=2
        )
        stats = replay(healthy, network)
        assert stats.dropped == 0
        # A lost I-frame makes its dependent B-frames worthless: dropped.
        network2, _ = compiled_network(
            selective_packet_dropping(gop=4), guard=ast.Test("dstip", SUBNETS[6])
        )
        lossy = workloads.mpeg_stream(
            ip("10.0.1.2"), ip("10.0.6.1"), 1, gop=4, groups=2,
            lose_iframe_group=0,
        )
        stats2 = replay(lossy, network2)
        assert stats2.dropped == 4  # group 0's orphaned B-frames... minus budget
        # default counter starts at 0, so all 4 B-frames of group 0 drop.

    def test_tcp_state_machine_tracks_sessions_end_to_end(self):
        app = tcp_state_machine()
        guard = ast.Or(
            ast.Test("dstip", SUBNETS[6]), ast.Test("srcip", SUBNETS[6])
        )
        network, program = compiled_network(app, guard=guard)
        session = workloads.tcp_session(ip("10.0.1.1"), ip("10.0.6.1"), 1, 6)
        replay(session, network)
        store = network.global_store()
        key = (ip("10.0.1.1"), ip("10.0.6.1"), 40000, 80, 6)
        assert store.read("tcp-state", key) == Symbol("CLOSED")

    def test_replay_obs_matches_network(self):
        app = dns_tunnel_detect(threshold=3)
        network, program = compiled_network(app)
        trace = workloads.background_traffic(SUBNETS, count=40, seed=11)
        obs_store, _ = replay_obs(
            trace, program.full_policy(),
            __import__("repro.lang.state", fromlist=["Store"]).Store(
                program.state_defaults
            ),
        )
        replay(trace, network)
        assert network.global_store() == obs_store


class TestReplayStats:
    def test_counts(self):
        app = dns_tunnel_detect()
        network, _ = compiled_network(app)
        trace = workloads.background_traffic(SUBNETS, count=30, seed=2)
        stats = replay(trace, network)
        assert stats.sent == 30
        assert stats.delivered + stats.dropped >= 30
        assert 0.0 <= stats.delivery_rate <= 1.0
        assert stats.mean_hops > 0
        assert sum(stats.per_egress.values()) == stats.delivered

    def test_multicast_with_drops_distinguishes_the_two_rates(self):
        """Per-copy and per-packet delivery rates diverge under multicast
        with partial drops; ``delivery_rate`` is the packet-level one."""
        policy = ast.If(
            ast.Test("dstport", 99),
            ast.Parallel(
                ast.Mod("outport", 2),
                ast.If(ast.Test("srcport", 7), ast.Drop(), ast.Mod("outport", 3)),
            ),
            ast.If(ast.Test("dstport", 88), ast.Drop(), assign_egress(SUBNETS)),
        )
        program = Program(
            policy, assumption=port_assumption(SUBNETS),
            state_defaults={}, name="multicast-with-drops",
        )
        network = SnapController(campus_topology(), program).submit().build_network()

        def pkt(srcport, dstport):
            return (
                make_packet(
                    srcip=SUBNETS[1].host(2), dstip=SUBNETS[6].host(2),
                    srcport=srcport, dstport=dstport,
                ),
                1,
            )

        trace = workloads.Trace("multicast", [
            pkt(40000, 99), pkt(40000, 99),          # full multicast: 2 copies
            pkt(7, 99), pkt(7, 99), pkt(7, 99),      # partial: 1 copy survives
            pkt(40000, 88),                          # dropped outright
        ])
        stats = replay(trace, network)
        assert stats.sent == 6
        assert stats.delivered == 7       # 2*2 + 3*1 copies
        assert stats.dropped == 1
        assert stats.packets_delivered == 5
        assert stats.delivery_rate == pytest.approx(5 / 6)
        assert stats.copy_delivery_rate == pytest.approx(7 / 8)
        assert stats.delivery_rate != stats.copy_delivery_rate
        # __repr__ reports both rates, honestly labelled.
        text = repr(stats)
        assert "delivery_rate=0.83" in text
        assert "copy_delivery_rate=0.88" in text
        assert "7 copies" in text
