"""State-compute replication (`repro.dataplane.replication`).

Covers the replica planner (which variables lift, which stay collapsed),
the per-kind merge determinism (two runs leave byte-identical stores,
both identical to a sequential run), the epoch-stamped reconciliation
guard, the lane-failure contract with partial logs, and the plan-cache
reuse across TE rewires.
"""

from __future__ import annotations

import pytest

from repro.analysis.effects import EffectKind
from repro.apps import global_heavy_hitter
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.dataplane.engine import (
    ProcessPoolEngine,
    SequentialEngine,
    ShardedEngine,
    plan_for,
)
from repro.dataplane import replication
from repro.dataplane.replication import (
    DELTA,
    INSERT,
    WATERMARK,
    ReplicaVar,
    apply_replica_log,
    replica_log,
    replica_plan_for,
)
from repro.lang import ast, make_packet
from repro.lang.errors import DataPlaneError
from repro.topology.campus import campus_topology

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PORTS = list(range(1, NUM_PORTS + 1))


def compiled(app=None, policy=None, defaults=None, name="case", **options):
    if app is not None:
        policy = ast.Seq(app.policy, assign_egress(SUBNETS))
        defaults = app.state_defaults
        name = app.name
    else:
        policy = ast.Seq(policy, assign_egress(SUBNETS))
    program = Program(
        policy,
        assumption=port_assumption(SUBNETS),
        state_defaults=defaults or {},
        name=name,
    )
    controller = SnapController(
        campus_topology(), program, options=CompilerOptions(**options)
    )
    return controller.submit()


def global_counter_snapshot():
    return compiled(app=global_heavy_hitter())


def one_packet_per_port(host=1):
    """One guard-matching packet per ingress port; each increments
    ``global-hh`` under a distinct source key."""
    return [
        (make_packet(srcip=SUBNETS[p].host(host), dstip=SUBNETS[6].host(1)), p)
        for p in PORTS
    ]


def record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def store_of(network, var="global-hh"):
    owner = network.placement[var]
    return network.switches[owner].store.variable(var)


# -- the replica planner ------------------------------------------------------


class TestReplicaPlanning:
    def test_global_counter_recovers_parallelism(self):
        net = global_counter_snapshot().build_network()
        base = plan_for(net)
        assert base.parallelism == 1
        assert "global-hh" in base.collapse_reasons
        assert base.collapse_reasons["global-hh"].startswith("SNAP-W104")

        rplan = replica_plan_for(net, True)
        assert rplan.plan.parallelism == NUM_PORTS
        assert rplan.recovered == NUM_PORTS - 1
        assert rplan.replicated == {
            "global-hh": ReplicaVar("global-hh", DELTA)
        }

    def test_w104_downgraded_to_i402_when_replicated(self):
        net = global_counter_snapshot().build_network()
        rplan = replica_plan_for(net, True)
        # The collapse no longer exists in the plan the engines run...
        assert "global-hh" not in rplan.plan.collapse_reasons
        # ...and the diagnostic downgraded from remedy to confirmation.
        reason = rplan.replica_reasons["global-hh"]
        assert reason.startswith("SNAP-I402")
        assert "replicated across those lanes" in reason
        assert "delta" in reason

    def test_disabled_flag_keeps_owner_lane(self):
        net = global_counter_snapshot().build_network()
        rplan = replica_plan_for(net, False)
        assert rplan.plan is rplan.base
        assert rplan.replicated == {}
        assert rplan.plan.parallelism == 1

    def test_network_flag_is_the_default(self):
        net = global_counter_snapshot().build_network()
        net.replicate_state = False
        assert replica_plan_for(net, None).replicated == {}
        net.replicate_state = True
        assert replica_plan_for(net, None).replicated != {}

    def test_non_mergeable_variable_stays_owner_laned(self):
        # Two distinct literals -> CONST_WRITE: last-writer-wins does
        # not commute, so the variable must keep its serialized lane.
        policy = ast.If(
            ast.Test("dstip", SUBNETS[6]),
            ast.If(
                ast.Test("srcport", 7),
                ast.StateMod("mode", ast.Field("srcip"), ast.Value(1)),
                ast.StateMod("mode", ast.Field("srcip"), ast.Value(2)),
            ),
            ast.Id(),
        )
        net = compiled(policy=policy, defaults={"mode": 0}).build_network()
        rplan = replica_plan_for(net, True)
        assert rplan.replicated == {}
        assert rplan.plan.parallelism == 1
        assert "do not commute" in rplan.plan.collapse_reasons["mode"]

    def test_tested_counter_stays_owner_laned(self):
        # An increment that is also state-tested influences forwarding,
        # so replicating it would change per-packet records: ineligible.
        policy = ast.If(
            ast.Test("dstip", SUBNETS[6]),
            ast.Seq(
                ast.StateIncr("glob", ast.Field("srcip")),
                ast.If(
                    ast.StateTest("glob", ast.Field("srcip"), ast.Value(3)),
                    ast.Test("srcport", 7),  # filters: the test matters
                    ast.Id(),
                ),
            ),
            ast.Id(),
        )
        net = compiled(policy=policy, defaults={"glob": 0}).build_network()
        rplan = replica_plan_for(net, True)
        assert rplan.replicated == {}
        assert rplan.plan.parallelism == 1

    def test_single_port_variable_not_replicated(self):
        # Only collapse-causing variables lift; a per-port counter
        # reachable from one ingress stays sharded with zero overhead.
        policy = ast.If(
            ast.Test("inport", 1),
            ast.StateIncr("only1", ast.Field("srcip")),
            ast.Id(),
        )
        net = compiled(policy=policy, defaults={"only1": 0}).build_network()
        rplan = replica_plan_for(net, True)
        assert rplan.replicated == {}
        assert rplan.plan is rplan.base

    def test_rewire_reuses_cached_plans(self):
        net = global_counter_snapshot().build_network()
        plan = plan_for(net)
        rplan = replica_plan_for(net, True)
        rewired = net.rewire(net.topology, net.routing)
        assert plan_for(rewired) is plan
        assert replica_plan_for(rewired, True) is rplan


# -- per-kind merge semantics (unit level) ------------------------------------


class TestLogMerge:
    def _one_var_network(self, kind, default=0):
        net = global_counter_snapshot().build_network()
        return net, {"global-hh": ReplicaVar("global-hh", kind)}

    def test_delta_log_diffs_only_changed_keys(self):
        lane_vars = {"c": ReplicaVar("c", DELTA)}
        seed = {"c": (0, {(1,): 5, (2,): "corrupt"})}
        final = {"c": (0, {(1,): 8, (2,): "corrupt", (3,): 2})}
        log = replica_log(lane_vars, seed, final, epoch=7)
        assert log == {"epoch": 7, "vars": {"c": {(1,): 3, (3,): 2}}}

    def test_delta_log_rejects_non_integer_changes(self):
        lane_vars = {"c": ReplicaVar("c", DELTA)}
        seed = {"c": (0, {})}
        final = {"c": (0, {(1,): 1.5})}
        with pytest.raises(DataPlaneError, match="'c'"):
            replica_log(lane_vars, seed, final, epoch=1)

    def test_delta_merge_is_order_free(self):
        logs = [
            {"epoch": 5, "vars": {"global-hh": {(1,): 2, (2,): 1}}},
            {"epoch": 5, "vars": {"global-hh": {(1,): 3}}},
            {"epoch": 5, "vars": {"global-hh": {(2,): 4, (3,): 1}}},
        ]
        tables = []
        for ordering in (logs, logs[::-1], [logs[1], logs[2], logs[0]]):
            net, replicated = self._one_var_network(DELTA)
            for log in ordering:
                apply_replica_log(net, replicated, log, epoch=5)
            tables.append(store_of(net).snapshot())
        assert tables[0] == tables[1] == tables[2]
        assert tables[0] == {(1,): 5, (2,): 5, (3,): 1}

    def test_insert_merge_is_idempotent(self):
        net, replicated = self._one_var_network(INSERT)
        log = {"epoch": 2, "vars": {"global-hh": {(9,): True}}}
        apply_replica_log(net, replicated, log, epoch=2)
        apply_replica_log(net, replicated, log, epoch=2)
        assert store_of(net).snapshot() == {(9,): True}

    def test_watermark_merge_keeps_directional_extreme(self):
        for direction, expected in ((1, 9), (-1, 2)):
            net = global_counter_snapshot().build_network()
            replicated = {
                "global-hh": ReplicaVar("global-hh", WATERMARK, direction)
            }
            logs = [
                {"epoch": 3, "vars": {"global-hh": {(1,): 7}}},
                {"epoch": 3, "vars": {"global-hh": {(1,): 9}}},
                {"epoch": 3, "vars": {"global-hh": {(1,): 2}}},
            ]
            for ordering in (logs, logs[::-1]):
                for log in ordering:
                    apply_replica_log(net, replicated, log, epoch=3)
            assert store_of(net).snapshot() == {(1,): expected}, direction

    def test_stale_epoch_is_refused(self):
        net, replicated = self._one_var_network(DELTA)
        log = {"epoch": 4, "vars": {"global-hh": {(1,): 1}}}
        with pytest.raises(DataPlaneError, match="stale replica log"):
            apply_replica_log(net, replicated, log, epoch=5)

    def test_unplanned_variable_is_refused(self):
        net, replicated = self._one_var_network(DELTA)
        log = {"epoch": 1, "vars": {"rogue": {(1,): 1}}}
        with pytest.raises(DataPlaneError, match="rogue"):
            apply_replica_log(net, replicated, log, epoch=1)


# -- runtime determinism across engines ---------------------------------------


class TestRuntimeDeterminism:
    def _arrivals(self):
        # Three guard-matching packets per port (two distinct hosts, one
        # repeat) so every lane both creates and re-increments keys.
        return (
            one_packet_per_port(1)
            + one_packet_per_port(2)
            + one_packet_per_port(1)
        )

    def test_two_replicated_runs_and_sequential_agree(self):
        snapshot = global_counter_snapshot()
        arrivals = self._arrivals()
        seq_net = snapshot.build_network()
        seq = SequentialEngine().run(seq_net, list(arrivals))
        stores, views = [], []
        for _ in range(2):
            net = snapshot.build_network()
            engine = ShardedEngine(max_workers=2, replicate_state=True)
            results = engine.run(net, list(arrivals))
            assert engine.last_run_stats["lanes"] == NUM_PORTS
            stores.append(net.global_store())
            views.append([record_view(r) for r in results])
        assert stores[0] == stores[1] == seq_net.global_store()
        assert views[0] == views[1] == [record_view(r) for r in seq]
        # Every key counted exactly once per matching packet.
        assert store_of(seq_net).snapshot() == {
            (SUBNETS[p].host(1),): 2 for p in PORTS
        } | {(SUBNETS[p].host(2),): 1 for p in PORTS}

    def test_insert_kind_replicates_byte_identically(self):
        policy = ast.If(
            ast.Test("dstip", SUBNETS[6]),
            ast.StateMod("seen", ast.Field("srcip"), ast.Value(True)),
            ast.Id(),
        )
        snapshot = compiled(policy=policy, defaults={"seen": False})
        arrivals = self._arrivals()
        seq_net = snapshot.build_network()
        SequentialEngine().run(seq_net, list(arrivals))
        net = snapshot.build_network()
        engine = ShardedEngine(max_workers=2, replicate_state=True)
        engine.run(net, list(arrivals))
        assert engine.last_run_stats["replicated_vars"] == ["seen"]
        assert replica_plan_for(net, True).replicated["seen"].kind == INSERT
        assert net.global_store() == seq_net.global_store()

    def test_process_engine_replicates_byte_identically(self):
        snapshot = global_counter_snapshot()
        arrivals = self._arrivals()
        seq_net = snapshot.build_network()
        seq = SequentialEngine().run(seq_net, list(arrivals))
        engine = ProcessPoolEngine(max_workers=2, replicate_state=True)
        try:
            net = snapshot.build_network()
            results = engine.run(net, list(arrivals))
            stats = engine.last_run_stats
            assert stats["lanes"] == NUM_PORTS
            assert stats["replicated_vars"] == ["global-hh"]
            assert stats["replica_log_entries"] > 0
            assert stats["replica_log_bytes"] > 0
            assert net.global_store() == seq_net.global_store()
            assert [record_view(r) for r in results] == [
                record_view(r) for r in seq
            ]
        finally:
            engine.close()

    def test_replication_stats_and_reasons(self):
        net = global_counter_snapshot().build_network()
        engine = ShardedEngine(max_workers=2, replicate_state=True)
        engine.run(net, self._arrivals())
        stats = engine.last_run_stats
        assert stats["replicated_vars"] == ["global-hh"]
        assert "global-hh" not in stats["collapse_reasons"]
        assert stats["replica_reasons"]["global-hh"].startswith("SNAP-I402")
        # 12 distinct (srcip) keys changed across 6 lanes.
        assert stats["replica_log_entries"] == 2 * NUM_PORTS
        assert stats["replica_log_bytes"] > 0

    def test_replication_off_keeps_w104_and_one_lane(self):
        net = global_counter_snapshot().build_network()
        engine = ShardedEngine(max_workers=2, replicate_state=False)
        engine.run(net, self._arrivals())
        stats = engine.last_run_stats
        assert stats["lanes"] == 1
        assert stats["replicated_vars"] == []
        assert stats["collapse_reasons"]["global-hh"].startswith("SNAP-W104")


# -- lane failure with partial logs -------------------------------------------


class TestLaneFailureWithPartialLogs:
    def test_completed_lanes_merge_before_named_error(self):
        snapshot = global_counter_snapshot()
        net = snapshot.build_network()
        # Poison port 3's key: its lane's increment raises mid-run.
        poison_key = (SUBNETS[3].host(1),)
        store_of(net).set(poison_key, "corrupt")
        engine = ShardedEngine(max_workers=1, replicate_state=True)
        with pytest.raises(DataPlaneError) as err:
            engine.run(net, one_packet_per_port(1))
        # Inline lanes run in shard (port) order and stop at the failure:
        # lanes 1-2 completed, their logs merged; 4-6 never started.
        table = store_of(net).snapshot()
        assert table[(SUBNETS[1].host(1),)] == 1
        assert table[(SUBNETS[2].host(1),)] == 1
        assert table[poison_key] == "corrupt"
        for p in (4, 5, 6):
            assert (SUBNETS[p].host(1),) not in table
        assert "failed" in str(err.value)

    def test_parallel_failure_still_merges_completed_lanes(self):
        snapshot = global_counter_snapshot()
        net = snapshot.build_network()
        poison_key = (SUBNETS[3].host(1),)
        store_of(net).set(poison_key, "corrupt")
        engine = ShardedEngine(max_workers=4, replicate_state=True)
        with pytest.raises(DataPlaneError):
            engine.run(net, one_packet_per_port(1))
        table = store_of(net).snapshot()
        # Every lane but the poisoned one completed and merged its log.
        for p in (1, 2, 4, 5, 6):
            assert table[(SUBNETS[p].host(1),)] == 1, p
        assert table[poison_key] == "corrupt"


# -- analyzer agreement -------------------------------------------------------


class TestAnalyzerAgreement:
    def test_replicated_kind_matches_effect_report(self):
        snapshot = global_counter_snapshot()
        report = snapshot.model_stats["effects"]
        assert report.kind("global-hh") is EffectKind.INCREMENT
        assert "global-hh" in report.mergeable_vars
        net = snapshot.build_network()
        assert replica_plan_for(net, True).replicated["global-hh"].kind \
            == DELTA

    def test_vector_commute_set_matches_replica_eligibility(self):
        from repro.dataplane.vector import _commutable_vars

        net = global_counter_snapshot().build_network()
        assert _commutable_vars(net) == frozenset(
            replication.replicable_delta_vars(
                net.index.root, net.state_defaults
            )
        )
        assert "global-hh" in _commutable_vars(net)
