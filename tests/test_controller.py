"""Tests for the SnapController session API (snapshots, events, hot swap)."""

import dataclasses

import pytest

from repro.apps.chimera import dns_tunnel_detect
from repro.apps.fast import stateful_firewall
from repro.apps.routing import assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.pipeline import Compiler
from repro.core.result import EVENT_SCENARIOS, SCENARIO_PHASES, Snapshot
from repro.core.program import Program
from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.packet import make_packet
from repro.milp.backends import GreedyBackend, MilpBackend, get_backend
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix


def campus_program(app_program=None, num_ports=6, threshold=3):
    subnets = default_subnets(num_ports)
    app = app_program or dns_tunnel_detect(threshold=threshold)
    policy = ast.Seq(app.policy, assign_egress(subnets))
    return Program(
        policy,
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        name=f"{app.name}+egress",
    )


def dns_response(client, k):
    ip = lambda s: IPPrefix(s).network
    return make_packet(
        srcip=ip("10.0.1.1"), dstip=client, srcport=53, dstport=9999,
        **{"dns.rdata": ip(f"10.0.1.{50 + k}")},
    )


@pytest.fixture(scope="module")
def session():
    """One controller driven through the full Table 4 event sequence."""
    controller = SnapController(campus_topology(), campus_program())
    snapshots = [
        controller.submit(),
        controller.update_policy(campus_program(threshold=5)),
        controller.fail_link("C1", "C5"),
        controller.restore_link("C1", "C5"),
        controller.set_demands(
            {k: v * 2 for k, v in controller.demands.items()}
        ),
    ]
    return controller, snapshots


class TestSnapshotImmutability:
    def test_attribute_assignment_raises(self, session):
        _, snapshots = session
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshots[0].objective = 0.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshots[0].generation = 99

    def test_mapping_fields_are_read_only(self, session):
        _, snapshots = session
        snap = snapshots[0]
        with pytest.raises(TypeError):
            snap.placement["blacklist"] = "C1"
        with pytest.raises(TypeError):
            snap.demands[(1, 6)] = 1.0
        with pytest.raises(TypeError):
            snap.model_stats["variables"] = -1

    def test_snapshot_detached_from_session_demands(self, session):
        controller, snapshots = session
        # The demand-change snapshot froze its own copy: it is not a view
        # of the controller's (mutable, session-internal) matrix.
        assert dict(snapshots[2].demands) != dict(snapshots[4].demands)
        assert dict(snapshots[4].demands) == dict(controller.demands)


class TestEventSequence:
    def test_generations_are_monotonic(self, session):
        _, snapshots = session
        assert [s.generation for s in snapshots] == [0, 1, 2, 3, 4]

    def test_event_provenance(self, session):
        _, snapshots = session
        assert [s.event for s in snapshots] == [
            "cold_start", "policy_change", "link_failure", "link_restore",
            "demand_change",
        ]
        assert all(s.scenario == EVENT_SCENARIOS[s.event] for s in snapshots)

    def test_phase_sets_follow_table4(self, session):
        _, snapshots = session
        assert set(snapshots[0].timer.durations) == set(
            SCENARIO_PHASES["cold_start"]
        )
        for snap in snapshots[2:]:
            assert set(snap.timer.durations) == {"P5", "P6"}

    def test_link_events_reroute(self, session):
        _, snapshots = session
        failed = snapshots[2].routing.path(1, 6)
        assert ("C1", "C5") not in set(zip(failed, failed[1:]))
        assert snapshots[3].routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        # Placement is fixed across all TE events.
        assert all(
            dict(s.placement) == dict(snapshots[1].placement)
            for s in snapshots[2:]
        )

    def test_standing_te_model_reused(self, session):
        """§6.2.2: the three TE events share ONE standing model build."""
        controller, _ = session
        calls = controller.backend.calls
        assert calls["te_model_builds"] == 1
        assert calls["te_solves"] == 3
        # submit only: the update_policy edit (a threshold tweak) leaves
        # S_uv, the dependency constraints, and the demands unchanged, so
        # the incremental solve memo reuses the cold solution instead of
        # re-running the MILP.
        assert calls["st_solves"] == 1

    def test_effective_topology_threads_failures(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        snap = controller.fail_link("C1", "C5")
        # The snapshot's topology is the degraded one the solve saw...
        assert ("C1", "C5") not in {
            tuple(sorted((a, b))) for a, b, _ in snap.topology.links()
        }
        # ...while the session's base topology is never mutated.
        assert ("C1", "C5") in {
            tuple(sorted((a, b))) for a, b, _ in controller.topology.links()
        }
        restored = controller.restore_link("C1", "C5")
        assert restored.topology.num_directed_edges() == (
            controller.topology.num_directed_edges()
        )

    def test_policy_change_invalidates_standing_model(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        controller.fail_link("C1", "C5")
        assert controller.backend.calls["te_model_builds"] == 1
        controller.update_policy(campus_program(stateful_firewall()))
        controller.fail_link("C3", "C5")
        # New placement -> the old standing model could not be patched.
        assert controller.backend.calls["te_model_builds"] == 2

    def test_events_require_submit(self):
        controller = SnapController(campus_topology(), campus_program())
        for call in (
            lambda: controller.update_policy(),
            lambda: controller.fail_link("C1", "C5"),
            lambda: controller.restore_link("C1", "C5"),
            lambda: controller.set_demands({}),
            lambda: controller.update_topology(campus_topology()),
            lambda: controller.network(),
        ):
            with pytest.raises(RuntimeError):
                call()

    def test_submit_requires_program(self):
        with pytest.raises(SnapError):
            SnapController(campus_topology()).submit()

    def test_failed_event_rolls_session_inputs_back(self):
        """An infeasible event must not desynchronize the session."""
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        controller.fail_link("C1", "C5")
        # C1-C5 + C1-C3 disconnects ports 1/3: the solve is infeasible.
        with pytest.raises(Exception):
            controller.fail_link("C1", "C3")
        # The failure set reverted to what `current` describes...
        assert controller.failed_links == frozenset({("C1", "C5")})
        assert controller.current.event == "link_failure"
        assert controller.generation == 1
        # ...and the session keeps working (model rebuilt on demand).
        restored = controller.restore_link("C1", "C5")
        assert restored.routing.path(1, 6) == ("I1", "C1", "C5", "D4")

    def test_failed_policy_update_keeps_previous_program(self):
        controller = SnapController(campus_topology(), campus_program())
        good = controller.submit()
        # A counter every flow must visit is unplaceable on the campus
        # graph (see examples/middlebox_consolidation.py): infeasible ST.
        subnets = default_subnets(6)
        monitor = ast.StateIncr("count", ast.Field("inport"))
        bad = Program(
            ast.Seq(ast.Parallel(monitor, ast.Id()), assign_egress(subnets)),
            assumption=port_assumption(subnets),
            state_defaults={"count": 0},
            name="unplaceable-monitor",
        )
        with pytest.raises(Exception):
            controller.update_policy(bad)
        # Rolled back: the session still describes the good program.
        assert controller.program is good.program
        assert controller.generation == 0
        follow_up = controller.fail_link("C1", "C5")
        assert follow_up.generation == 1
        assert dict(follow_up.placement) == dict(good.placement)

    def test_reroute_rejects_foreign_events_before_mutating(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        demands_before = dict(controller.demands)
        with pytest.raises(SnapError):
            controller.reroute(
                failed_links=[("C1", "C5")],
                demands={k: v * 2 for k, v in demands_before.items()},
                event="maintenance",
            )
        # The rejected event left no trace on the session.
        assert controller.failed_links == frozenset()
        assert dict(controller.demands) == demands_before
        assert controller.generation == 0

    def test_history_records_every_snapshot(self, session):
        controller, snapshots = session
        assert controller.history() == tuple(snapshots)
        assert controller.current is snapshots[-1]
        assert controller.generation == 4

    def test_history_is_bounded(self):
        controller = SnapController(
            campus_topology(), campus_program(), history_limit=2
        )
        controller.submit()
        controller.fail_link("C1", "C5")
        last = controller.restore_link("C1", "C5")
        kept = controller.history()
        assert len(kept) == 2
        assert [s.generation for s in kept] == [1, 2]
        assert controller.current is last

    def test_snapshots_hash_by_identity(self, session):
        _, snapshots = session
        assert len({*snapshots}) == len(snapshots)
        assert snapshots[0] != snapshots[1]


class TestHotSwap:
    def test_update_policy_preserves_state(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        network = controller.network()
        client = IPPrefix("10.0.6.10").network
        for k in range(2):
            network.inject(dns_response(client, k), 1)
        assert network.global_store().read("susp-client", (client,)) == 2

        # Live policy update: raise the threshold; same state variables.
        controller.update_policy(campus_program(threshold=5))
        swapped = controller.network()
        assert swapped is not network
        store = swapped.global_store()
        assert store.read("susp-client", (client,)) == 2
        assert store.read("blacklist", (client,)) is False

        # The carried-over counter keeps counting where it left off.
        for k in range(2, 4):
            swapped.inject(dns_response(client, k), 1)
        assert swapped.global_store().read("susp-client", (client,)) == 4

    def test_retired_variables_dropped_new_ones_fresh(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        network = controller.network()
        client = IPPrefix("10.0.6.10").network
        network.inject(dns_response(client, 0), 1)
        controller.update_policy(campus_program(stateful_firewall()))
        swapped = controller.network()
        assert "susp-client" not in dict(controller.current.placement)
        assert swapped.global_store().read("established", (client, client)) is False

    def test_link_events_hot_swap_too(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        network = controller.network()
        client = IPPrefix("10.0.6.10").network
        network.inject(dns_response(client, 0), 1)
        controller.fail_link("C1", "C5")
        swapped = controller.network()
        assert swapped is not network
        # Same xFDD + placement: the swap rewires routing but shares the
        # compiled switch programs (and so the state stores) — no
        # per-switch recompilation on a TE event.
        assert swapped.switches is network.switches
        assert swapped.global_store().read("susp-client", (client,)) == 1
        records = swapped.inject(dns_response(client, 1), 1)
        assert records and records[0].egress == 6

    def test_resubmit_is_a_genuine_cold_start(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        network = controller.network()
        client = IPPrefix("10.0.6.10").network
        network.inject(dns_response(client, 0), 1)
        assert network.global_store().read("susp-client", (client,)) == 1
        controller.submit()  # cold restart: state must NOT carry over
        cold = controller.network()
        assert cold is not network
        assert cold.global_store().read("susp-client", (client,)) == 0

    def test_update_topology_with_new_switches_recompiles(self):
        """The rewire fast path must not smuggle an old switch set past a
        replacement topology that changed the graph's nodes."""
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        network = controller.network()
        client = IPPrefix("10.0.6.10").network
        network.inject(dns_response(client, 0), 1)
        bigger = campus_topology()
        bigger.add_switch("CX")
        bigger.add_link("C5", "CX", 1000.0)
        controller.update_topology(bigger)
        swapped = controller.network()
        assert swapped.switches is not network.switches
        assert "CX" in swapped.switches
        # State still carried over via adopt_state on the rebuild path.
        assert swapped.global_store().read("susp-client", (client,)) == 1

    def test_no_network_until_asked(self):
        controller = SnapController(campus_topology(), campus_program())
        controller.submit()
        assert controller._network is None
        net = controller.network()
        assert controller.network() is net


class TestBackends:
    def test_greedy_backend_matches_heuristic_flag(self):
        controller = SnapController(
            campus_topology(), campus_program(), solver="greedy"
        )
        snap = controller.submit()
        assert set(snap.placement.values()) == {"D4"}
        assert isinstance(controller.backend, GreedyBackend)

    def test_unknown_solver_rejected(self):
        with pytest.raises(SnapError):
            SnapController(campus_topology(), campus_program(), solver="simplex")
        with pytest.raises(SnapError):
            get_backend(42)

    def test_backend_instance_is_pluggable(self):
        backend = MilpBackend()
        controller = SnapController(
            campus_topology(), campus_program(),
            options=CompilerOptions(solver=backend),
        )
        controller.submit()
        assert controller.backend is backend
        assert backend.calls["st_solves"] == 1

    def test_greedy_te_events_share_standing_lp(self):
        controller = SnapController(
            campus_topology(), campus_program(), solver="greedy"
        )
        controller.submit()
        controller.fail_link("C1", "C5")
        snap = controller.restore_link("C1", "C5")
        assert controller.backend.calls["te_model_builds"] == 1
        assert snap.routing.path(1, 6)[0] == "I1"


class TestOptions:
    def test_options_frozen(self):
        options = CompilerOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.solver = "greedy"

    def test_stateful_switches_coerced_to_tuple(self):
        options = CompilerOptions(stateful_switches=["D4", "C1"])
        assert options.stateful_switches == ("D4", "C1")

    def test_keyword_overrides_build_options(self):
        controller = SnapController(
            campus_topology(), campus_program(), validate=False,
            solver_time_limit=30.0,
        )
        assert controller.options == CompilerOptions(
            validate=False, solver_time_limit=30.0
        )


class TestCompilerShim:
    def test_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning):
            compiler = Compiler(campus_topology(), campus_program())
        assert isinstance(compiler.controller, SnapController)

    def test_shim_equivalent_to_controller(self):
        with pytest.warns(DeprecationWarning):
            compiler = Compiler(campus_topology(), campus_program())
        old = compiler.cold_start()
        new = SnapController(campus_topology(), campus_program()).submit()
        assert dict(old.placement) == dict(new.placement)
        assert old.objective == pytest.approx(new.objective)
        assert old.routing.path(1, 6) == new.routing.path(1, 6)
        assert isinstance(old, Snapshot)

    def test_shim_policy_change_works_as_first_compilation(self):
        """Legacy Compiler.policy_change had no cold-start precondition."""
        with pytest.warns(DeprecationWarning):
            compiler = Compiler(campus_topology(), campus_program())
        result = compiler.policy_change()
        assert result.scenario == "policy_change"
        assert result.generation == 0
        assert "susp-client" in dict(result.placement)

    def test_shim_keeps_legacy_attributes(self):
        with pytest.warns(DeprecationWarning):
            compiler = Compiler(
                campus_topology(), campus_program(), solver_time_limit=60.0
            )
        assert compiler.validate is True
        assert compiler.solver_time_limit == 60.0
        assert compiler.mip_rel_gap is None
        assert compiler.stateful_switches is None
        assert compiler.use_heuristic is False
        # Legacy mutation patterns: assign, then run a scenario.
        compiler.cold_start()
        compiler.program = campus_program(stateful_firewall())
        result = compiler.policy_change()
        assert "established" in dict(result.placement)
        compiler.demands = {k: v * 0.5 for k, v in compiler.demands.items()}
        compiler.demands[(1, 6)] *= 1.5  # legacy in-place mutation pattern
        compiler.topology = campus_topology().without_link("C1", "C5")
        rerouted = compiler.topology_change()
        path = rerouted.routing.path(1, 6)
        assert ("C1", "C5") not in set(zip(path, path[1:]))
        assert rerouted.demands[(1, 6)] == compiler.demands[(1, 6)]

    def test_shim_topology_change_maps_onto_events(self):
        with pytest.warns(DeprecationWarning):
            compiler = Compiler(campus_topology(), campus_program())
        compiler.cold_start()
        failed = compiler.topology_change(failed_links=[("C1", "C5")])
        assert failed.event == "topology_change"
        assert compiler._te_failed == {("C1", "C5")}
        restored = compiler.topology_change(failed_links=[])
        assert compiler._te_failed == set()
        assert restored.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        # The legacy no-failed-links demand change resets failures (old
        # `wanted = failed_links or ()` semantics), unlike set_demands.
        compiler.topology_change(failed_links=[("C1", "C5")])
        shifted = compiler.topology_change(
            new_demands={k: v * 2 for k, v in compiler.demands.items()}
        )
        assert compiler._te_failed == set()
        assert shifted.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
