"""Tests for trie-structured leaf execution in the data plane.

The leaf ``{p·q1, p·q2}`` (from ``p; (q1 + q2)``) must execute the shared
prefix p exactly once — both in direct xFDD evaluation and in the compiled
NetASM programs, including when the prefix pauses for a remote variable.
"""

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.dataplane.header import ROOT_TAG, SNAP_NODE
from repro.dataplane.netasm import IFork, IJump, compile_switch
from repro.dataplane.network import Network
from repro.dataplane.split import NodeIndex, leaf_groups
from repro.lang import ast
from repro.lang.packet import make_packet
from repro.lang.state import Store
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology
from repro.topology.traffic import uniform_traffic_matrix
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import evaluate, iter_leaves


def shared_prefix_policy():
    """c[0]++; (outport <- 2 + (f <- 1; outport <- 2))."""
    return ast.Seq(
        ast.StateIncr("c", ast.Value(0)),
        ast.Parallel(
            ast.Mod("outport", 2),
            ast.Seq(ast.Mod("f", 1), ast.Mod("outport", 2)),
        ),
    )


class TestLeafGroups:
    def test_shared_prefix_single_group(self):
        xfdd = build_xfdd(shared_prefix_policy())
        leaf = next(iter(iter_leaves(xfdd)))
        groups = list(leaf_groups(leaf))
        # The first group (the shared increment) contains both sequences.
        roots = [g for g in groups if g[1] == 0]
        assert len(roots) == 1
        assert len(roots[0][0]) == 2

    def test_divergence_splits_groups(self):
        xfdd = build_xfdd(shared_prefix_policy())
        leaf = next(iter(iter_leaves(xfdd)))
        depth1 = [g for g in groups_at(leaf, 1)]
        assert len(depth1) == 2


def groups_at(leaf, depth):
    return [g for g in leaf_groups(leaf) if g[1] == depth]


class TestEvaluateTrie:
    def test_prefix_executes_once(self):
        xfdd = build_xfdd(shared_prefix_policy())
        store, out = evaluate(xfdd, make_packet(), Store({"c": 0}))
        assert store.read("c", (0,)) == 1  # not 2!
        # Two copies diverge on field f.
        assert {p.get("f") for p in out} == {None, 1}

    def test_fork_after_shared_pause(self):
        """When the shared prefix's state write is remote, the packet
        pauses once, resumes at the owner, and only then forks."""
        policy = shared_prefix_policy()
        topo = Topology("line")
        for name in ("a", "b", "c"):
            topo.add_switch(name)
        topo.add_link("a", "b", 100.0)
        topo.add_link("b", "c", 100.0)
        topo.attach_port(1, "a")
        topo.attach_port(2, "c")
        deps = analyze_dependencies(policy)
        xfdd = build_xfdd(policy, state_rank=deps.state_rank)
        mapping = packet_state_mapping(xfdd, (1, 2), (1, 2))
        routing = RoutingPaths(
            {(1, 2): ("a", "b", "c"), (2, 1): ("c", "b", "a")}, {"c": "b"}
        )
        net = Network(topo, xfdd, {"c": "b"}, routing, mapping,
                      uniform_traffic_matrix((1, 2), 1.0), {"c": 0})
        records = net.inject(make_packet(), 1)
        delivered = [r for r in records if r.egress == 2]
        assert len(delivered) == 2  # the two parallel copies
        assert net.global_store().read("c", (0,)) == 1  # prefix ran once


class TestNetAsmStructure:
    def test_fork_and_jump_instructions_present(self):
        xfdd = build_xfdd(shared_prefix_policy())
        index = NodeIndex(xfdd)
        program = compile_switch("sw", xfdd, index, {"c": "sw"}, {"c": 0}, True)
        kinds = {type(instr).__name__ for instr in program.instructions}
        assert "IFork" in kinds
        assert "IJump" in kinds

    def test_listing_shows_entries(self):
        xfdd = build_xfdd(shared_prefix_policy())
        index = NodeIndex(xfdd)
        program = compile_switch("sw", xfdd, index, {"c": "sw"}, {"c": 0}, True)
        text = program.to_text()
        assert "NetASM program for switch sw" in text
        assert "STDELTA" in text

    def test_jump_targets_valid(self):
        xfdd = build_xfdd(shared_prefix_policy())
        index = NodeIndex(xfdd)
        program = compile_switch("sw", xfdd, index, {"c": "sw"}, {"c": 0}, True)
        for instr in program.instructions:
            if isinstance(instr, IJump):
                assert 0 <= instr.target < len(program.instructions)
            if isinstance(instr, IFork):
                for target in instr.targets:
                    assert 0 <= target < len(program.instructions)
