"""Tests for incremental MILP updates (§6.2.2)."""

import pytest

from repro.core.controller import SnapController
from repro.lang.errors import PlacementError
from repro.milp.placement import build_placement_model
from repro.milp.te import build_te_model
from repro.milp.results import extract_paths, validate_solution
from repro.topology.campus import campus_topology

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
from workloads import dns_tunnel_program  # noqa: E402


@pytest.fixture(scope="module")
def compiled():
    controller = SnapController(campus_topology(), dns_tunnel_program(6))
    cold = controller.submit()
    return controller, cold


class TestIncrementalFailure:
    def test_failed_link_avoided(self, compiled):
        controller, cold = compiled
        assert cold.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        result = controller.reroute(failed_links=[("C1", "C5")])
        path = result.routing.path(1, 6)
        assert ("C1", "C5") not in set(zip(path, path[1:]))
        assert result.placement == cold.placement

    def test_restore_after_failure(self, compiled):
        controller, _ = compiled
        controller.reroute(failed_links=[("C1", "C5")])
        result = controller.reroute(failed_links=[])
        # The optimal path through C1-C5 is available again.
        assert result.routing.path(1, 6) == ("I1", "C1", "C5", "D4")

    def test_sequential_failures(self, compiled):
        controller, _ = compiled
        result = controller.reroute(
            failed_links=[("C1", "C5"), ("C3", "C5")]
        )
        path = result.routing.path(1, 6)
        used = set(zip(path, path[1:]))
        assert ("C1", "C5") not in used and ("C3", "C5") not in used
        # I1 hangs off C1, so the path must still start I1 -> C1.
        assert path[0] == "I1" and path[1] == "C1"
        controller.reroute(failed_links=[])  # restore for other tests

    def test_disconnecting_failures_are_infeasible(self, compiled):
        # C1's only non-edge neighbours are C3 and C5; failing both cuts
        # ports 1 and 3 off from the rest of the network.
        controller, _ = compiled
        with pytest.raises(PlacementError):
            controller.reroute(failed_links=[("C1", "C5"), ("C1", "C3")])
        controller.reroute(failed_links=[])  # restore

    def test_incremental_matches_full_rebuild(self, compiled):
        controller, cold = compiled
        incremental = controller.reroute(failed_links=[("C1", "C5")])
        rebuilt = controller.update_topology(
            campus_topology().without_link("C1", "C5")
        )
        assert incremental.objective == pytest.approx(rebuilt.objective, rel=1e-6)
        controller.update_topology(campus_topology())

    def test_repeated_fail_restore_cycles_are_idempotent(self, compiled):
        """Each fail/restore cycle patches the *same* standing model and
        lands on the same answer: restore reinstates the original variable
        bounds it recorded, instead of resetting them wholesale."""
        controller, _ = compiled
        controller.reroute(failed_links=[])  # ensure a standing model
        builds_before = controller.backend.calls["te_model_builds"]
        baseline = controller.reroute(failed_links=[])
        failed_objectives, restored_objectives = [], []
        for _ in range(3):
            failed = controller.fail_link("C1", "C5")
            failed_objectives.append(failed.objective)
            assert ("C1", "C5") not in set(
                zip(failed.routing.path(1, 6), failed.routing.path(1, 6)[1:])
            )
            restored = controller.restore_link("C1", "C5")
            restored_objectives.append(restored.objective)
            assert restored.routing.path(1, 6) == baseline.routing.path(1, 6)
        assert all(
            obj == pytest.approx(failed_objectives[0], rel=1e-9)
            for obj in failed_objectives
        )
        assert all(
            obj == pytest.approx(baseline.objective, rel=1e-9)
            for obj in restored_objectives
        )
        # The whole sequence patched one standing model — never a rebuild.
        assert controller.backend.calls["te_model_builds"] == builds_before


class TestIncrementalDemands:
    def test_demand_shift_changes_objective(self, compiled):
        controller, cold = compiled
        base = controller.reroute(failed_links=[])
        shifted = dict(controller.demands)
        for u in range(1, 6):
            shifted[(u, 6)] = shifted[(u, 6)] * 4
        result = controller.reroute(demands=shifted)
        assert result.objective > base.objective
        controller.reroute(demands=dict(cold.demands))  # restore

    def test_new_flow_set_rejected(self, compiled):
        controller, cold = compiled
        controller.reroute(failed_links=[])  # ensure standing model
        bad = dict(controller.demands)
        bad.pop(sorted(bad)[0])
        with pytest.raises(PlacementError):
            controller._te_model.set_demands(bad)


class TestModelPatchingDirect:
    def _model(self, compiled):
        controller, cold = compiled
        return build_te_model(
            campus_topology(), dict(controller.demands), cold.mapping,
            cold.dependencies, dict(cold.placement),
        )

    def test_fail_and_restore_roundtrip(self, compiled):
        model = self._model(compiled)
        before = model.solve().objective
        model.fail_link("C1", "C5")
        degraded = model.solve().objective
        assert degraded >= before - 1e-9
        model.restore_link("C1", "C5")
        assert model.solve().objective == pytest.approx(before, rel=1e-6)

    def test_patched_solution_validates(self, compiled):
        _, cold = compiled
        model = self._model(compiled)
        model.fail_link("C1", "C5")
        solution = model.solve()
        degraded = campus_topology().without_link("C1", "C5")
        routing = extract_paths(solution, degraded, cold.mapping, cold.dependencies)
        validate_solution(routing, degraded, cold.mapping, cold.dependencies)

    def test_restore_of_never_failed_link_is_a_noop(self, compiled):
        """Restoring a healthy link must not touch bounds the model never
        changed — previously it reset every route variable to [0, 1]."""
        model = self._model(compiled)
        flow = model.inputs.flows[0]
        target = next(
            var for (f, link), var in model.route_vars.items()
            if f == flow and link == ("C1", "C5")
        )
        # A caller-customized bound (e.g. a pinned route) survives a
        # restore of a link that was never failed.
        model.model.set_var_bounds(target, 0.0, 0.5)
        model.restore_link("C1", "C5")
        assert (target.lower, target.upper) == (0.0, 0.5)

    def test_restore_reinstates_recorded_bounds(self, compiled):
        """fail/restore reinstates exactly the pre-failure bounds, and a
        double failure doesn't overwrite the recording with zeros."""
        model = self._model(compiled)
        flow = model.inputs.flows[0]
        target = next(
            var for (f, link), var in model.route_vars.items()
            if f == flow and link == ("C1", "C5")
        )
        model.model.set_var_bounds(target, 0.0, 0.5)
        model.fail_link("C1", "C5")
        model.fail_link("C1", "C5")  # repeated failure: still recorded once
        assert (target.lower, target.upper) == (0.0, 0.0)
        model.restore_link("C1", "C5")
        assert (target.lower, target.upper) == (0.0, 0.5)
        # A second restore is a no-op, not another reset.
        model.model.set_var_bounds(target, 0.0, 0.25)
        model.restore_link("C1", "C5")
        assert (target.lower, target.upper) == (0.0, 0.25)
