"""Tests for incremental MILP updates (§6.2.2)."""

import pytest

from repro.core.pipeline import Compiler
from repro.lang.errors import PlacementError
from repro.milp.placement import build_placement_model
from repro.milp.te import build_te_model
from repro.milp.results import extract_paths, validate_solution
from repro.topology.campus import campus_topology

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))
from workloads import dns_tunnel_program  # noqa: E402


@pytest.fixture(scope="module")
def compiled():
    compiler = Compiler(campus_topology(), dns_tunnel_program(6))
    cold = compiler.cold_start()
    return compiler, cold


class TestIncrementalFailure:
    def test_failed_link_avoided(self, compiled):
        compiler, cold = compiled
        assert cold.routing.path(1, 6) == ("I1", "C1", "C5", "D4")
        result = compiler.topology_change(failed_links=[("C1", "C5")])
        path = result.routing.path(1, 6)
        assert ("C1", "C5") not in set(zip(path, path[1:]))
        assert result.placement == cold.placement

    def test_restore_after_failure(self, compiled):
        compiler, _ = compiled
        compiler.topology_change(failed_links=[("C1", "C5")])
        result = compiler.topology_change(failed_links=[])
        # The optimal path through C1-C5 is available again.
        assert result.routing.path(1, 6) == ("I1", "C1", "C5", "D4")

    def test_sequential_failures(self, compiled):
        compiler, _ = compiled
        result = compiler.topology_change(
            failed_links=[("C1", "C5"), ("C3", "C5")]
        )
        path = result.routing.path(1, 6)
        used = set(zip(path, path[1:]))
        assert ("C1", "C5") not in used and ("C3", "C5") not in used
        # I1 hangs off C1, so the path must still start I1 -> C1.
        assert path[0] == "I1" and path[1] == "C1"
        compiler.topology_change(failed_links=[])  # restore for other tests

    def test_disconnecting_failures_are_infeasible(self, compiled):
        # C1's only non-edge neighbours are C3 and C5; failing both cuts
        # ports 1 and 3 off from the rest of the network.
        compiler, _ = compiled
        with pytest.raises(PlacementError):
            compiler.topology_change(failed_links=[("C1", "C5"), ("C1", "C3")])
        compiler.topology_change(failed_links=[])  # restore

    def test_incremental_matches_full_rebuild(self, compiled):
        compiler, cold = compiled
        incremental = compiler.topology_change(failed_links=[("C1", "C5")])
        rebuilt = compiler.topology_change(
            new_topology=campus_topology().without_link("C1", "C5")
        )
        assert incremental.objective == pytest.approx(rebuilt.objective, rel=1e-6)
        compiler.topology_change(new_topology=campus_topology())


class TestIncrementalDemands:
    def test_demand_shift_changes_objective(self, compiled):
        compiler, cold = compiled
        base = compiler.topology_change(failed_links=[])
        shifted = dict(compiler.demands)
        for u in range(1, 6):
            shifted[(u, 6)] = shifted[(u, 6)] * 4
        result = compiler.topology_change(new_demands=shifted)
        assert result.objective > base.objective

    def test_new_flow_set_rejected(self, compiled):
        compiler, cold = compiled
        compiler.topology_change(failed_links=[])  # ensure standing model
        bad = dict(compiler.demands)
        bad.pop(sorted(bad)[0])
        with pytest.raises(PlacementError):
            compiler._te_model.set_demands(bad)


class TestModelPatchingDirect:
    def test_fail_and_restore_roundtrip(self, compiled):
        compiler, cold = compiled
        model = build_te_model(
            campus_topology(), compiler.demands, cold.mapping,
            cold.dependencies, cold.placement,
        )
        before = model.solve().objective
        model.fail_link("C1", "C5")
        degraded = model.solve().objective
        assert degraded >= before - 1e-9
        model.restore_link("C1", "C5")
        assert model.solve().objective == pytest.approx(before, rel=1e-6)

    def test_patched_solution_validates(self, compiled):
        compiler, cold = compiled
        model = build_te_model(
            campus_topology(), compiler.demands, cold.mapping,
            cold.dependencies, cold.placement,
        )
        model.fail_link("C1", "C5")
        solution = model.solve()
        degraded = campus_topology().without_link("C1", "C5")
        routing = extract_paths(solution, degraded, cold.mapping, cold.dependencies)
        validate_solution(routing, degraded, cold.mapping, cold.dependencies)
