"""The benchmark trajectory file tolerates concurrent writers.

``benchmarks/conftest.merge_bench_results`` writes through a temp file
plus an atomic rename, so simultaneous bench invocations can lose a
race (last merge of a key wins) but can never produce a torn or
unparsable ``BENCH_xfdd.json`` — which is what used to happen with
plain read-modify-``write_text``.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

WRITER = """
import sys
sys.path.insert(0, {bench_dir!r})
from pathlib import Path
from conftest import merge_bench_results
path = Path({target!r})
for i in range(15):
    merge_bench_results({key!r}, {{"round": i, "payload": "x" * 2048}}, path=path)
"""


def test_merge_bench_results_concurrent_writers(tmp_path):
    target = tmp_path / "BENCH_xfdd.json"
    target.write_text(json.dumps({"seed": {"kept": True}}) + "\n")
    writers = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                WRITER.format(
                    bench_dir=str(REPO / "benchmarks"),
                    target=str(target),
                    key=f"writer{i}",
                ),
            ]
        )
        for i in range(3)
    ]
    # Read continuously while the writers race: every observation must
    # be complete, valid JSON.
    while any(w.poll() is None for w in writers):
        data = json.loads(target.read_text())
        assert isinstance(data, dict)
    assert all(w.wait() == 0 for w in writers)
    final = json.loads(target.read_text())
    # Whatever survived the races is well-formed; each key's last write
    # is the whole value, never a fragment.
    for key, value in final.items():
        if key.startswith("writer"):
            assert value["payload"] == "x" * 2048
    # No temp files left behind.
    assert list(tmp_path.glob("*.tmp")) == []


def _conftest():
    sys.path.insert(0, str(REPO / "benchmarks"))
    try:
        import conftest
    finally:
        sys.path.pop(0)
    return conftest


def test_merge_bench_results_recovers_from_corrupt_file(tmp_path):
    merge_bench_results = _conftest().merge_bench_results
    target = tmp_path / "BENCH_xfdd.json"
    target.write_text('{"torn": ')  # a pre-atomic-rename casualty
    merge_bench_results("fresh", {"ok": 1}, path=target)
    merged = json.loads(target.read_text())
    assert merged["fresh"]["ok"] == 1
    # Every merged value carries the measurement environment.
    assert set(merged["fresh"]["env"]) == {"cpus", "python", "numpy"}


def test_merge_bench_results_stamps_environment_uniformly(tmp_path):
    conftest = _conftest()
    target = tmp_path / "BENCH_xfdd.json"
    conftest.merge_bench_results("table", {"pps": 5}, path=target)
    conftest.merge_bench_results("rows", [{"app": "a"}, {"app": "b"}], path=target)
    merged = json.loads(target.read_text())
    env = conftest.bench_environment()
    assert merged["table"]["env"] == env
    # List-shaped results are wrapped so the stamp has somewhere to live.
    assert merged["rows"]["env"] == env
    assert merged["rows"]["rows"] == [{"app": "a"}, {"app": "b"}]
    assert env["cpus"] >= 1 and env["python"].count(".") == 2
    # A bench that records its own environment is left alone.
    conftest.merge_bench_results("own", {"env": {"cpus": -1}}, path=target)
    assert json.loads(target.read_text())["own"]["env"] == {"cpus": -1}
