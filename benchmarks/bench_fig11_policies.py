"""Figure 11 — compilation time vs number of composed policies.

The paper composes the Table 3 applications one by one with ``+`` on a
50-switch IGen network; each component affects traffic to a separate
egress port.  Cost grows with the number of components (xFDD composition
dominating), with a visible jump when the TCP state machine joins at 18
components.  We regenerate the series (a subset of k values keeps the
bench laptop-sized) and assert the growth.
"""

import pytest

from repro.core.controller import SnapController
from repro.topology.igen import igen_topology

from workloads import composed_program, print_table

NUM_SWITCHES = 50
NUM_PORTS = 20
KS = (1, 4, 8, 12, 16, 18, 20)

_RESULTS = []


@pytest.mark.parametrize("num_apps", KS)
def test_composed_policies(benchmark, num_apps):
    topology = igen_topology(NUM_SWITCHES, num_ports=NUM_PORTS, seed=0)

    def run_all():
        program = composed_program(num_apps, NUM_PORTS)
        controller = SnapController(topology, program, mip_rel_gap=0.02)
        cold = controller.submit()
        tm = controller.reroute()
        return cold, tm

    cold, tm = benchmark.pedantic(run_all, iterations=1, rounds=1)
    state_count = len(cold.placement)
    spread = len(set(cold.placement.values()))
    _RESULTS.append(
        (
            num_apps,
            state_count,
            spread,
            f"{cold.scenario_time('cold_start'):.2f}",
            f"{cold.scenario_time('policy_change'):.2f}",
            f"{tm.scenario_time('topology_change'):.2f}",
        )
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(KS)
    print_table(
        f"Figure 11: compilation time (s) vs #composed Table 3 policies "
        f"({NUM_SWITCHES}-switch IGen)",
        ("#policies", "#state vars", "#switches used", "cold start",
         "policy change", "topo/TM change"),
        _RESULTS,
    )
    assert float(_RESULTS[-1][3]) > float(_RESULTS[0][3])
