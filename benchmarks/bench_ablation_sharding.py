"""Ablation — state sharding (§7.3 / Appendix C).

Per-ingress counting (``count[inport]++``) funnels every flow through one
switch when the counter is a single variable; sharding it per inport lets
the MILP place each shard on its own switch.  Report the congestion
objective and solve time for both, over two ISP stand-ins.
"""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.lang import ast
from repro.topology.synthetic import table5_topology

from workloads import print_table

NUM_PORTS = 8
TOPOLOGIES = ("AS1755", "AS1221")

_RESULTS = []


def monitor_programs():
    subnets = default_subnets(NUM_PORTS)
    monitor = ast.StateIncr("count", ast.Field("inport"))
    body = ast.Seq(ast.Parallel(monitor, ast.Id()), assign_egress(subnets))
    assumption = port_assumption(subnets)
    ports = list(range(1, NUM_PORTS + 1))
    unsharded = Program(
        body, assumption=assumption, state_defaults={"count": 0},
        name="monitor",
    )
    sharded = Program(
        shard_by_inport(body, "count", ports),
        assumption=assumption,
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    return unsharded, sharded


@pytest.mark.parametrize("name", TOPOLOGIES)
@pytest.mark.parametrize("variant", ("single", "sharded"))
def test_sharding(benchmark, name, variant):
    topology = table5_topology(name, num_ports=NUM_PORTS, seed=0)
    unsharded, sharded = monitor_programs()
    program = unsharded if variant == "single" else sharded

    def run():
        return SnapController(topology, program).submit()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    spread = len(set(result.placement.values()))
    _RESULTS.append(
        (name, variant, f"{result.objective:.3f}", spread,
         f"{result.scenario_time():.2f}s")
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 2 * len(TOPOLOGIES)
    print_table(
        "Ablation: sharding count[inport] (Appendix C)",
        ("topology", "variant", "objective", "#switches holding state", "time"),
        sorted(_RESULTS),
    )
    by_key = {(row[0], row[1]): float(row[2]) for row in _RESULTS}
    for name in TOPOLOGIES:
        # Sharding can only help the congestion objective.
        assert by_key[(name, "sharded")] <= by_key[(name, "single")] + 1e-6
