"""Table 4 — compiler phases per scenario.

Checks which phases execute for each scenario (the checkmarks of Table 4)
and benchmarks each scenario on the running example.
"""

import pytest

from repro.core.controller import SnapController
from repro.core.result import SCENARIO_PHASES
from repro.topology.campus import campus_topology

from workloads import dns_tunnel_program, print_table

_RESULTS = []


@pytest.fixture(scope="module")
def warm_controller():
    controller = SnapController(campus_topology(), dns_tunnel_program(6))
    controller.submit()
    return controller


def test_cold_start(benchmark):
    def run():
        controller = SnapController(campus_topology(), dns_tunnel_program(6))
        return controller.submit()

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    assert set(result.timer.durations) == set(SCENARIO_PHASES["cold_start"])
    _RESULTS.append(("cold start", "P1-P6", f"{result.scenario_time():.3f}s"))


def test_policy_change(benchmark, warm_controller):
    result = benchmark.pedantic(
        lambda: warm_controller.update_policy(dns_tunnel_program(6)),
        iterations=1,
        rounds=1,
    )
    phases = SCENARIO_PHASES["policy_change"]
    measured = result.scenario_time("policy_change")
    assert all(p in result.timer.durations for p in phases)
    _RESULTS.append(("policy change", "P1,P2,P3,P5(ST),P6", f"{measured:.3f}s"))


def test_topology_tm_change(benchmark, warm_controller):
    result = benchmark.pedantic(
        lambda: warm_controller.reroute(), iterations=1, rounds=1
    )
    assert set(result.timer.durations) == set(SCENARIO_PHASES["topology_change"])
    _RESULTS.append(
        ("topology/TM change", "P5(TE),P6", f"{result.scenario_time():.3f}s")
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 3
    print_table(
        "Table 4: phases executed per scenario (campus, DNS-tunnel-detect)",
        ("scenario", "phases", "time"),
        _RESULTS,
    )
