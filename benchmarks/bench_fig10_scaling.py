"""Figure 10 — compilation time vs topology size (IGen networks).

The paper sweeps 10-180 switches (70% edges) and shows near-exponential
growth of cold start, dominated by MILP creation and solving; we regenerate
the series and assert monotone growth from the smallest to largest size.
"""

import pytest

from repro.core.controller import SnapController
from repro.topology.igen import igen_topology

from workloads import DEFAULT_PORTS, dns_tunnel_program, print_table

SIZES = (10, 30, 50, 80, 120, 180)

_RESULTS = []


@pytest.mark.parametrize("num_switches", SIZES)
def test_scaling(benchmark, num_switches):
    topology = igen_topology(num_switches, num_ports=DEFAULT_PORTS, seed=0)
    program = dns_tunnel_program(DEFAULT_PORTS)

    def run_all():
        controller = SnapController(topology, program)
        cold = controller.submit()
        policy = controller.update_policy(dns_tunnel_program(DEFAULT_PORTS))
        tm = controller.reroute()
        return cold, policy, tm

    cold, policy, tm = benchmark.pedantic(run_all, iterations=1, rounds=1)
    _RESULTS.append(
        (
            num_switches,
            f"{cold.scenario_time('cold_start'):.2f}",
            f"{policy.scenario_time('policy_change'):.2f}",
            f"{tm.scenario_time('topology_change'):.2f}",
        )
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(SIZES)
    print_table(
        f"Figure 10: compilation time (s) vs IGen topology size "
        f"({DEFAULT_PORTS} OBS ports)",
        ("#switches", "cold start", "policy change", "topo/TM change"),
        _RESULTS,
    )
    # Growth shape: the largest topology costs more than the smallest.
    first = float(_RESULTS[0][1])
    last = float(_RESULTS[-1][1])
    assert last > first
