"""Ad-hoc before/after measurement for the perf PR (not a pytest bench).

Usage: PYTHONPATH=src python benchmarks/_measure_perf.py <label>
Prints P1+P2+P3 analysis time at 120 switches and replay throughput.
"""

import sys
import time

sys.path.insert(0, "benchmarks")

from repro.core.controller import SnapController
from repro.topology.igen import igen_topology
from repro.util.timer import PhaseTimer

from workloads import DEFAULT_PORTS, dns_tunnel_program

label = sys.argv[1] if len(sys.argv) > 1 else "run"

# -- analysis time (P1+P2+P3) at 120 switches ------------------------------
topology = igen_topology(120, num_ports=DEFAULT_PORTS, seed=0)
program = dns_tunnel_program(DEFAULT_PORTS)
controller = SnapController(topology, program)
best = float("inf")
for _ in range(7):
    timer = PhaseTimer()
    controller._analysis(program, topology, timer)
    best = min(best, timer.total(("P1", "P2", "P3")))
print(f"[{label}] analysis P1+P2+P3 @120sw (best of 7): {best * 1000:.1f}ms")

# -- data-plane replay throughput ------------------------------------------
from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
)
from repro.core.program import Program
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic, replay

SUBNETS = default_subnets(6)
app = dns_tunnel_detect()
prog = Program(
    ast.Seq(app.policy, assign_egress(SUBNETS)),
    assumption=port_assumption(SUBNETS),
    state_defaults=app.state_defaults,
    name=app.name,
)
result = SnapController(campus_topology(), prog).submit()
trace = background_traffic(SUBNETS, count=400, seed=7)
best = float("inf")
for _ in range(7):
    network = result.build_network()
    t0 = time.perf_counter()
    stats = replay(trace, network)
    t1 = time.perf_counter()
    best = min(best, t1 - t0)
pps = stats.sent / best
print(f"[{label}] replay (best of 7): {stats.sent} pkts in {best * 1000:.1f}ms "
      f"= {pps:,.0f} pkt/s (delivered {stats.delivery_rate * 100:.0f}%)")
