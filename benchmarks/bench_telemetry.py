"""Telemetry overhead: replay throughput with the layer off, on, and
sampling postcards.

Three configurations replay the same sharded-monitor trace on the
sequential and thread-lane engines:

* ``off``   — ``configure(False)``: registry and tracer disabled, no
  sampler.  This is the instrumented code's cheapest path (one branch
  per run, zero per-packet work) and the baseline row.
* ``on``    — the default: metrics + tracing enabled, sampling off.
  What every run pays unless it opts out.
* ``postcards`` — metrics + tracing + 1-in-``SAMPLE_EVERY`` postcard
  sampling, the most expensive configuration.

Each measured run is byte-identity-checked against a sequential
reference — final stores and per-packet records equal — so the numbers
can never come from a run that silently diverged (the sampled walk must
execute the identical opcode effects).

Honest numbers: single-shot Python timings on shared CI hosts jitter
well past the ~2 % telemetry budget, so the bench *records* the
overhead percentages (best-of-``ROUNDS`` each) for the trajectory file
and asserts only a loose sanity bound; the tight reading belongs to the
merged ``BENCH_xfdd.json`` rows, env-stamped per host.

Results merge into ``BENCH_xfdd.json`` under ``telemetry``.  Smoke mode
for CI: ``TELEMETRY_SMOKE=1`` shrinks the trace and rounds.
"""

import gc
import os
import time

from repro import obs
from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import SequentialEngine, ShardedEngine
from repro.lang import ast
from repro.obs import postcards
from repro.obs.tracing import TRACER
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("TELEMETRY_SMOKE") == "1"

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PORTS = list(range(1, NUM_PORTS + 1))
PACKETS = 1500 if SMOKE else 10000
ROUNDS = 3 if SMOKE else 5
SAMPLE_EVERY = 32

#: (name, telemetry source for configure(), postcard_every)
CONFIGS = (
    ("off", False, 0),
    ("on", True, 0),
    ("postcards", True, SAMPLE_EVERY),
)

_RESULTS = []
_SUMMARY = {
    "packets": PACKETS,
    "sample_every": SAMPLE_EVERY,
    "cpus": os.cpu_count(),
    "smoke": SMOKE,
    "engines": {},
}


def monitor_snapshot():
    """The §7.3 per-port monitor — shardable, one state op per packet."""
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    program = Program(
        shard_by_inport(body, "count", PORTS),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", PORTS),
        name="telemetry-monitor",
    )
    return SnapController(campus_topology(), program).submit()


def _record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def _best_time(engine, snapshot, trace):
    best = float("inf")
    records = network = None
    for _ in range(ROUNDS):
        network = snapshot.build_network()
        TRACER.reset()
        postcards.reset()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        records = engine.run(network, trace)
        elapsed = time.perf_counter() - start
        gc.enable()
        best = min(best, elapsed)
    return best, records, network


def test_telemetry_overhead(benchmark):
    """pkt/s per engine with telemetry off / on / sampling postcards."""
    snapshot = monitor_snapshot()
    trace = list(background_traffic(SUBNETS, count=PACKETS, seed=13))

    # The byte-identity reference: sequential, telemetry fully off.
    obs.configure(False)
    seq_time, seq_records, seq_net = _best_time(
        SequentialEngine(), snapshot, trace
    )

    def run():
        rows = {}
        for engine_name, make_engine in (
            ("sequential", SequentialEngine),
            ("sharded", ShardedEngine),
        ):
            for config_name, source, every in CONFIGS:
                obs.configure(obs.resolve_config(source))
                postcards.configure_sampling(every)
                elapsed, records, net = _best_time(
                    make_engine(), snapshot, trace
                )
                assert net.global_store() == seq_net.global_store(), (
                    engine_name, config_name,
                )
                for a, b in zip(seq_records, records):
                    assert _record_view(a) == _record_view(b)
                sampled = len(postcards.postcards())
                rows[(engine_name, config_name)] = {
                    "pps": round(PACKETS / elapsed),
                    "seconds": round(elapsed, 4),
                    "postcards": sampled,
                }
        obs.configure(obs.TelemetryConfig())
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    for engine_name in ("sequential", "sharded"):
        base = rows[(engine_name, "off")]
        sweep = []
        for config_name, _, every in CONFIGS:
            row = rows[(engine_name, config_name)]
            overhead = (
                (base["seconds"] - row["seconds"]) / row["seconds"] * -100
                if row["seconds"] else 0.0
            )
            sweep.append({
                "config": config_name,
                "postcard_every": every,
                "pps": row["pps"],
                "overhead_pct": round(overhead, 2),
                "postcards": row["postcards"],
            })
            _RESULTS.append((
                engine_name, config_name, f"{row['pps']:,}",
                f"{overhead:+.1f}%", row["postcards"],
            ))
        _SUMMARY["engines"][engine_name] = sweep

        # Structural claims, immune to host jitter: sampling actually
        # sampled the deterministic 1-in-N set, and the disabled run
        # recorded nothing at all.
        assert rows[(engine_name, "off")]["postcards"] == 0
        assert rows[(engine_name, "postcards")]["postcards"] == len(
            range(0, PACKETS, SAMPLE_EVERY)
        )
        # Loose sanity bound on the full stack (tight numbers live in
        # the merged rows): telemetry can't be order-of-magnitude slow.
        assert rows[(engine_name, "on")]["pps"] > 0
        assert (
            rows[(engine_name, "postcards")]["seconds"]
            < max(base["seconds"], 1e-3) * 10
        )

    _SUMMARY["sequential_off_pps"] = round(PACKETS / seq_time)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert _RESULTS
    print_table(
        f"Telemetry overhead ({os.cpu_count()} CPUs, {PACKETS} packets, "
        f"postcards 1-in-{SAMPLE_EVERY})",
        ("engine", "telemetry", "pkt/s", "overhead", "postcards"),
        _RESULTS,
    )
    merge_bench_results("telemetry", _SUMMARY)
