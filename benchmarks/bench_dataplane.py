"""Supplemental — simulated data-plane throughput and ruleset sizes.

Not a paper table: the paper's data plane ran on the NetASM software
switch under Mininet.  This bench measures our simulator replaying traffic
through three compiled deployments, and reports the per-switch footprint
(routing rules, NetASM instructions) that §4.5/§5's rule generation
produced.
"""

import pytest

from repro.apps import (
    assign_egress,
    default_subnets,
    dns_tunnel_detect,
    port_assumption,
    stateful_firewall,
)
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic, replay

from workloads import print_table

SUBNETS = default_subnets(6)
_RESULTS = []


def deployment(app):
    program = Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    result = SnapController(campus_topology(), program).submit()
    return result.build_network()


def _egress_only():
    program = Program(
        assign_egress(SUBNETS),
        assumption=port_assumption(SUBNETS),
        name="egress-only",
    )
    result = SnapController(campus_topology(), program).submit()
    return result.build_network()


CASES = {
    "dns-tunnel-detect": lambda: deployment(dns_tunnel_detect()),
    "stateful-firewall": lambda: deployment(stateful_firewall()),
    "egress-only": _egress_only,
}


@pytest.mark.parametrize("case", list(CASES))
def test_replay_throughput(benchmark, case):
    network = CASES[case]()
    trace = background_traffic(SUBNETS, count=400, seed=7)

    stats = benchmark.pedantic(
        lambda: replay(trace, network), iterations=1, rounds=1
    )
    seconds = benchmark.stats.stats.mean
    pps = stats.sent / seconds if seconds else float("inf")
    instr_total = sum(network.instruction_counts().values())
    _RESULTS.append(
        (
            case,
            stats.sent,
            f"{stats.delivery_rate * 100:.0f}%",
            f"{stats.mean_hops:.2f}",
            network.rules.total_rules(),
            instr_total,
            f"{pps:,.0f}",
        )
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(CASES)
    print_table(
        "Supplemental: simulated data-plane replay (campus, 400 packets)",
        ("deployment", "packets", "delivered", "mean hops", "routing rules",
         "NetASM instrs", "packets/s"),
        _RESULTS,
    )
