"""Table 3 — language expressiveness.

The paper's claim is that all twenty applications (Chimera, FAST, Bohatei,
Snort/TCP) are expressible in SNAP: they parse, pass the race checks, and
translate to xFDDs.  Each benchmark (i) builds the standalone application's
xFDD — the expressiveness claim itself — and (ii) compiles the application
scoped to the protected subnet onto the campus network for end-to-end
placement/routing timing.

(Scoping mirrors the paper's own usage: its placement experiments always
compile *guarded* policies such as DNS-tunnel-detect on 10.0.6.0/24.
A variable touched by literally every flow has no feasible single-switch
placement on a topology with stub pairs — see
tests/test_milp.py::TestKnownLimits.)
"""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.apps import ALL_APPS, assign_egress, default_subnets, port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.util.ipaddr import IPPrefix
from repro.xfdd.build import build_xfdd
from repro.xfdd.diagram import size

from workloads import print_table

_RESULTS = []

PROTECTED = IPPrefix("10.0.6.0/24")


def scoped(policy: ast.Policy) -> ast.Policy:
    """The application applied to traffic touching the protected subnet."""
    guard = ast.Or(ast.Test("srcip", PROTECTED), ast.Test("dstip", PROTECTED))
    return ast.If(guard, policy, ast.Id())


@pytest.mark.parametrize("app_name", list(ALL_APPS))
def test_app_compiles(benchmark, app_name):
    subnets = default_subnets(6)
    topology = campus_topology()

    def compile_app():
        app = ALL_APPS[app_name]()
        # (i) Expressiveness: the standalone application translates.
        standalone_xfdd = build_xfdd(app.policy, registry=app.registry)
        # (ii) End-to-end compilation of the subnet-scoped deployment.
        program = Program(
            ast.Seq(scoped(app.policy), assign_egress(subnets)),
            assumption=port_assumption(subnets),
            state_defaults=app.state_defaults,
            name=app.name,
        )
        controller = SnapController(topology, program)
        return app, standalone_xfdd, controller.submit()

    app, standalone_xfdd, result = benchmark.pedantic(
        compile_app, iterations=1, rounds=1
    )
    xfdd_size = size(standalone_xfdd)
    state_vars = analyze_dependencies(app.policy).order
    benchmark.extra_info["xfdd_size"] = xfdd_size
    benchmark.extra_info["state_vars"] = len(state_vars)
    assert result.placement.keys() >= set(state_vars)
    _RESULTS.append(
        (app_name, len(state_vars), xfdd_size, f"{result.scenario_time():.3f}s")
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    """Print the Table 3 summary (runs after the per-app benchmarks)."""
    assert len(_RESULTS) == len(ALL_APPS)
    print_table(
        "Table 3: applications written in SNAP (all compile)",
        ("application", "#state vars", "xFDD size", "compile time"),
        _RESULTS,
    )
