"""Cluster data-plane engine vs sequential, on two localhost daemons.

The campus sharded workload (§7.3 / Appendix C) replayed on
``ClusterEngine``: disjoint-state shards shipped over the length-prefixed
TCP wire protocol to two ``repro.cluster.worker`` daemons spawned on this
machine, merged back in deterministic arrival order.  Localhost daemons
are the honest floor for this engine — the wire cost is real, the
parallelism is bounded by this machine — so the headline numbers are the
*wire accounting*: program/network spec bytes ship once per worker (and
zero program bytes after a TE rewire), per-run payloads carry only
batches plus footprint-restricted state slices.

Equivalence is asserted on the measured runs themselves (records, final
stores, link counters).  Results merge into ``BENCH_xfdd.json`` under
``cluster_engine`` with the worker count and bytes shipped.

Smoke mode for CI: ``CLUSTER_ENGINE_SMOKE=1`` shrinks the trace.
"""

import gc
import os
import time

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.cluster import ClusterEngine
from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.dataplane.engine import SequentialEngine, plan_for
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic, replay

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("CLUSTER_ENGINE_SMOKE") == "1"

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PACKETS = 1200 if SMOKE else 6000
ROUNDS = 2 if SMOKE else 4
WORKERS = 2

_SUMMARY = {
    "packets": PACKETS,
    "workers": WORKERS,
    "cpus": os.cpu_count(),
    "smoke": SMOKE,
    "workloads": {},
}
_RESULTS = []


def sharded_monitor_controller():
    ports = list(range(1, NUM_PORTS + 1))
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    program = Program(
        shard_by_inport(body, "count", ports),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    controller = SnapController(
        campus_topology(), program, options=CompilerOptions(engine="cluster")
    )
    controller.submit()
    return controller


def _record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def _best_time(engine, snapshot, trace):
    best = float("inf")
    records = network = None
    for _ in range(ROUNDS):
        network = snapshot.build_network()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        records = engine.run(network, trace)
        elapsed = time.perf_counter() - start
        gc.enable()
        best = min(best, elapsed)
    return best, records, network


def test_campus_sharded_cluster(benchmark):
    """Headline: six disjoint lanes on two localhost worker daemons."""
    controller = sharded_monitor_controller()
    snapshot = controller.current
    trace = list(background_traffic(SUBNETS, count=PACKETS, seed=7))
    plan = plan_for(snapshot.build_network())
    engine = ClusterEngine(workers=WORKERS)

    def run():
        try:
            seq_time, seq_records, seq_net = _best_time(
                SequentialEngine(), snapshot, trace
            )
            clu_time, clu_records, clu_net = _best_time(
                engine, snapshot, trace
            )
            cold_stats = dict(engine.last_run_stats)
            # Equivalence, asserted on the measured runs themselves.
            assert len(seq_records) == len(clu_records) == PACKETS
            for a, b in zip(seq_records, clu_records):
                assert _record_view(a) == _record_view(b)
            assert seq_net.global_store() == clu_net.global_store()
            assert seq_net.link_packets == clu_net.link_packets
            return seq_time, clu_time, cold_stats
        except BaseException:
            engine.close()
            raise

    seq_time, clu_time, shipped = benchmark.pedantic(
        run, iterations=1, rounds=1
    )

    # TE rewire on the session's live data plane: the daemons stay warm
    # and the re-shipped bytes must contain *zero* program bytes.
    try:
        controller.network().default_engine = engine
        replay(trace, controller.network(), engine=engine)
        controller.fail_link("C1", "C5")
        rewired = controller.network()
        replay(trace, rewired, engine=engine)
        rewire_stats = dict(engine.last_run_stats)
        assert rewire_stats["program_bytes"] == 0, rewire_stats
    finally:
        engine.close()
        controller.close()

    row = {
        "packets": PACKETS,
        "shards": plan.parallelism,
        "workers": shipped.get("workers", WORKERS),
        "sequential_pps": round(PACKETS / seq_time),
        "cluster_pps": round(PACKETS / clu_time),
        "cluster_vs_sequential": round(seq_time / clu_time, 2),
        "bytes_shipped": {
            "program": shipped.get("program_bytes", 0),
            "network": shipped.get("network_bytes", 0),
            "payload_per_run": shipped.get("payload_bytes", 0),
            "rewire_program": rewire_stats.get("program_bytes", 0),
            "rewire_network": rewire_stats.get("network_bytes", 0),
        },
    }
    _SUMMARY["workloads"]["monitor-sharded"] = row
    _RESULTS.append(
        (
            "monitor-sharded",
            plan.parallelism,
            f"{row['sequential_pps']:,}",
            f"{row['cluster_pps']:,}",
            f"{row['cluster_vs_sequential']:.2f}x",
            f"{row['bytes_shipped']['payload_per_run']:,}",
        )
    )
    assert row["cluster_pps"] > 0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert _RESULTS
    print_table(
        f"Cluster engine ({WORKERS} localhost daemons, {os.cpu_count()} "
        f"CPUs, {PACKETS} packets)",
        ("workload", "shards", "sequential pkt/s", "cluster pkt/s",
         "cluster/seq", "payload bytes/run"),
        _RESULTS,
    )
    shipped = _SUMMARY["workloads"]["monitor-sharded"]["bytes_shipped"]
    print(
        f"\nWire accounting: program spec {shipped['program']:,} B (cold), "
        f"network spec {shipped['network']:,} B, payloads "
        f"{shipped['payload_per_run']:,} B/run; after TE rewire: "
        f"{shipped['rewire_program']:,} B program (zero by design), "
        f"{shipped['rewire_network']:,} B network"
    )
    merge_bench_results("cluster_engine", _SUMMARY)
