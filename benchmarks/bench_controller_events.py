"""Controller event-sequence throughput (the Table 4 scenarios, live).

Drives one long-lived :class:`SnapController` session through a cold
start followed by alternating policy and topology/TM events — the
steady-state workload of a production controller — and reports per-event
latency plus aggregate events/s.  Verifies along the way that the
standing TE model really is built once per placement (§6.2.2) and that
every snapshot's generation advances.

Results are merged into ``BENCH_xfdd.json`` under ``controller_events``
so the trajectory is tracked next to the composition-engine numbers.
"""

import os
import time

from repro.apps.chimera import dns_tunnel_detect
from repro.apps.fast import stateful_firewall
from repro.core.controller import SnapController
from repro.lang import ast
from repro.topology.campus import campus_topology

from conftest import merge_bench_results
from workloads import composed_program, dns_tunnel_program, print_table

#: (label, event callable) — the repeating post-cold-start event mix.
NUM_PORTS = 6
EVENT_ROUNDS = 5

#: ``INCREMENTAL_SMOKE=1`` shrinks the incremental cold-vs-warm study to
#: a CI-sized smoke run (fewer rounds, looser speedup floor — CI boxes
#: are noisy; the full run must meet the ROADMAP-grade floor).
INCREMENTAL_SMOKE = os.environ.get("INCREMENTAL_SMOKE") == "1"
INC_APPS = 6
INC_ROUNDS = 3 if INCREMENTAL_SMOKE else 8
INC_SPEEDUP_FLOOR = 2.0 if INCREMENTAL_SMOKE else 5.0


def _alt_program():
    from repro.apps.routing import assign_egress, default_subnets, port_assumption
    from repro.core.program import Program
    from repro.lang import ast

    subnets = default_subnets(NUM_PORTS)
    app = stateful_firewall()
    return Program(
        ast.Seq(app.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        name=f"{app.name}+egress",
    )


def test_event_sequence_throughput(benchmark):
    # Unbounded history: the run asserts over every generation produced.
    controller = SnapController(
        campus_topology(), dns_tunnel_program(NUM_PORTS), history_limit=None
    )
    alt = _alt_program()
    base = dns_tunnel_program(NUM_PORTS)
    durations: dict[str, list] = {}

    def timed(label, fn):
        t0 = time.perf_counter()
        snapshot = fn()
        durations.setdefault(label, []).append(time.perf_counter() - t0)
        return snapshot

    def run():
        timed("cold_start", controller.submit)
        for round_ in range(EVENT_ROUNDS):
            timed("fail_link", lambda: controller.fail_link("C1", "C5"))
            timed("restore_link", lambda: controller.restore_link("C1", "C5"))
            timed("set_demands", lambda: controller.set_demands(
                {k: v * (1.0 + 0.1 * (round_ + 1))
                 for k, v in controller.demands.items()}
            ))
            timed("update_policy", lambda: controller.update_policy(
                alt if round_ % 2 == 0 else base
            ))
        return controller

    benchmark.pedantic(run, iterations=1, rounds=1)

    events = 1 + 4 * EVENT_ROUNDS
    total = sum(sum(times) for times in durations.values())
    generations = [s.generation for s in controller.history()]
    assert generations == list(range(events))
    # One standing-model build per placement epoch that sees a TE event:
    # the three TE events of a round share a single build, re-built only
    # after the round's policy change invalidates it.
    calls = dict(controller.backend.calls)
    assert calls["te_model_builds"] == EVENT_ROUNDS
    assert calls["te_solves"] == 3 * EVENT_ROUNDS

    rows = []
    summary = {}
    for label, times in durations.items():
        mean_ms = sum(times) / len(times) * 1000
        rows.append((label, len(times), f"{mean_ms:.1f}ms",
                     f"{min(times) * 1000:.1f}ms"))
        summary[label] = {
            "count": len(times),
            "mean_ms": round(mean_ms, 3),
            "best_ms": round(min(times) * 1000, 3),
        }
    print_table(
        "SnapController event sequence (campus, dns-tunnel + firewall)",
        ("event", "count", "mean", "best"),
        rows,
    )
    throughput = events / total
    print(f"\n{events} events in {total:.2f}s = {throughput:.1f} events/s "
          f"(standing TE model builds: {calls['te_model_builds']}, "
          f"re-solves: {calls['te_solves']})")

    merge_bench_results("controller_events", {
        "events": events,
        "total_s": round(total, 4),
        "events_per_s": round(throughput, 2),
        "backend_calls": calls,
        "per_event": summary,
    })


def _flatten_parallel(policy):
    if isinstance(policy, ast.Parallel):
        return _flatten_parallel(policy.left) + _flatten_parallel(policy.right)
    return [policy]


def _single_app_edit(base, k, salt):
    """Edit one app of the composite: guard arm ``k`` against one extra
    srcport.  State reads/writes are untouched, so S_uv and the
    dependency constraints — everything the MILP sees — are unchanged."""
    from repro.core.program import Program

    par, egress = base.policy.left, base.policy.right
    arms = _flatten_parallel(par)
    arms[k] = ast.Seq(ast.Not(ast.Test("srcport", 40000 + salt)), arms[k])
    return Program(
        ast.Seq(ast.par_all(arms), egress),
        assumption=base.assumption,
        state_defaults=dict(base.state_defaults),
        name=base.name,
    )


def test_incremental_single_app_edit(benchmark):
    """Cold vs warm ``update_policy`` for single-app edits (ROADMAP:
    incremental compilation).  Each round edits one app of a 6-app
    composite, compiles it twice — forced from-scratch, then through the
    persistent session — and asserts the snapshots agree."""
    base = composed_program(INC_APPS, NUM_PORTS)
    controller = SnapController(campus_topology(), base)
    controller.submit()
    cold_times: list = []
    warm_times: list = []
    reused = recompiled = solve_reused = 0

    def run():
        nonlocal reused, recompiled, solve_reused
        for round_ in range(INC_ROUNDS):
            edited = _single_app_edit(base, round_ % INC_APPS, round_)
            t0 = time.perf_counter()
            cold = controller.update_policy(edited, incremental=False)
            cold_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            warm = controller.update_policy(edited)
            warm_times.append(time.perf_counter() - t0)
            assert dict(warm.placement) == dict(cold.placement)
            assert dict(warm.mapping.items()) == dict(cold.mapping.items())
            assert warm.routing.paths == cold.routing.paths
            reused += warm.model_stats["incremental_reused"]
            recompiled += warm.model_stats["incremental_recompiled"]
            solve_reused += 1 if warm.model_stats["solve_reused"] else 0

    benchmark.pedantic(run, iterations=1, rounds=1)

    # Every warm round: the edited arm recompiles, everything else —
    # the assumption segment, the 5 untouched arms, the egress segment —
    # splices from the previous generation.  The solve memo always hits
    # (the edit preserves every MILP input).
    assert recompiled == INC_ROUNDS
    assert reused == INC_ROUNDS * (INC_APPS + 1)
    assert solve_reused == INC_ROUNDS

    cold_mean = sum(cold_times) / len(cold_times) * 1000
    warm_mean = sum(warm_times) / len(warm_times) * 1000
    speedup = cold_mean / warm_mean
    print_table(
        f"Incremental update_policy (campus, {INC_APPS}-app composite, "
        f"{INC_ROUNDS} single-app edits)",
        ("path", "mean", "best"),
        [
            ("cold (from scratch)", f"{cold_mean:.1f}ms",
             f"{min(cold_times) * 1000:.1f}ms"),
            ("warm (incremental)", f"{warm_mean:.1f}ms",
             f"{min(warm_times) * 1000:.1f}ms"),
        ],
    )
    print(f"\nspeedup: {speedup:.1f}x (floor {INC_SPEEDUP_FLOOR}x"
          f"{', smoke' if INCREMENTAL_SMOKE else ''})")
    assert speedup >= INC_SPEEDUP_FLOOR

    merge_bench_results("incremental", {
        "apps": INC_APPS,
        "rounds": INC_ROUNDS,
        "smoke": INCREMENTAL_SMOKE,
        "cold_mean_ms": round(cold_mean, 3),
        "warm_mean_ms": round(warm_mean, 3),
        "speedup": round(speedup, 2),
        "arms_reused": reused,
        "arms_recompiled": recompiled,
        "solve_reused_rounds": solve_reused,
    })
