"""Controller event-sequence throughput (the Table 4 scenarios, live).

Drives one long-lived :class:`SnapController` session through a cold
start followed by alternating policy and topology/TM events — the
steady-state workload of a production controller — and reports per-event
latency plus aggregate events/s.  Verifies along the way that the
standing TE model really is built once per placement (§6.2.2) and that
every snapshot's generation advances.

Results are merged into ``BENCH_xfdd.json`` under ``controller_events``
so the trajectory is tracked next to the composition-engine numbers.
"""

import time

from repro.apps.chimera import dns_tunnel_detect
from repro.apps.fast import stateful_firewall
from repro.core.controller import SnapController
from repro.topology.campus import campus_topology

from conftest import merge_bench_results
from workloads import dns_tunnel_program, print_table

#: (label, event callable) — the repeating post-cold-start event mix.
NUM_PORTS = 6
EVENT_ROUNDS = 5


def _alt_program():
    from repro.apps.routing import assign_egress, default_subnets, port_assumption
    from repro.core.program import Program
    from repro.lang import ast

    subnets = default_subnets(NUM_PORTS)
    app = stateful_firewall()
    return Program(
        ast.Seq(app.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        name=f"{app.name}+egress",
    )


def test_event_sequence_throughput(benchmark):
    # Unbounded history: the run asserts over every generation produced.
    controller = SnapController(
        campus_topology(), dns_tunnel_program(NUM_PORTS), history_limit=None
    )
    alt = _alt_program()
    base = dns_tunnel_program(NUM_PORTS)
    durations: dict[str, list] = {}

    def timed(label, fn):
        t0 = time.perf_counter()
        snapshot = fn()
        durations.setdefault(label, []).append(time.perf_counter() - t0)
        return snapshot

    def run():
        timed("cold_start", controller.submit)
        for round_ in range(EVENT_ROUNDS):
            timed("fail_link", lambda: controller.fail_link("C1", "C5"))
            timed("restore_link", lambda: controller.restore_link("C1", "C5"))
            timed("set_demands", lambda: controller.set_demands(
                {k: v * (1.0 + 0.1 * (round_ + 1))
                 for k, v in controller.demands.items()}
            ))
            timed("update_policy", lambda: controller.update_policy(
                alt if round_ % 2 == 0 else base
            ))
        return controller

    benchmark.pedantic(run, iterations=1, rounds=1)

    events = 1 + 4 * EVENT_ROUNDS
    total = sum(sum(times) for times in durations.values())
    generations = [s.generation for s in controller.history()]
    assert generations == list(range(events))
    # One standing-model build per placement epoch that sees a TE event:
    # the three TE events of a round share a single build, re-built only
    # after the round's policy change invalidates it.
    calls = dict(controller.backend.calls)
    assert calls["te_model_builds"] == EVENT_ROUNDS
    assert calls["te_solves"] == 3 * EVENT_ROUNDS

    rows = []
    summary = {}
    for label, times in durations.items():
        mean_ms = sum(times) / len(times) * 1000
        rows.append((label, len(times), f"{mean_ms:.1f}ms",
                     f"{min(times) * 1000:.1f}ms"))
        summary[label] = {
            "count": len(times),
            "mean_ms": round(mean_ms, 3),
            "best_ms": round(min(times) * 1000, 3),
        }
    print_table(
        "SnapController event sequence (campus, dns-tunnel + firewall)",
        ("event", "count", "mean", "best"),
        rows,
    )
    throughput = events / total
    print(f"\n{events} events in {total:.2f}s = {throughput:.1f} events/s "
          f"(standing TE model builds: {calls['te_model_builds']}, "
          f"re-solves: {calls['te_solves']})")

    merge_bench_results("controller_events", {
        "events": events,
        "total_s": round(total, 4),
        "events_per_s": round(throughput, 2),
        "backend_calls": calls,
        "per_event": summary,
    })
