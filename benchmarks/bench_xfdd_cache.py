"""xFDD apply-cache micro-benchmark (Table 3 applications).

For every Table 3 application (composed with assign-egress, as deployed),
measures xFDD composition time with the operation cache on vs. off and
reports the hit rate and intern-table size.  Writes a machine-readable
``BENCH_xfdd.json`` next to this file so future PRs can track the
trajectory of the composition engine.
"""

import time

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.apps import ALL_APPS, assign_egress, default_subnets, port_assumption
from repro.core.program import Program
from repro.lang import ast
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DiagramFactory, size
from repro.xfdd.order import TestOrder

from conftest import merge_bench_results
from workloads import print_table

_RESULTS = []
_ROUNDS = 3


def _deployed_program(app) -> Program:
    subnets = default_subnets(6)
    return Program(
        ast.Seq(app.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=app.state_defaults,
        registry=app.registry,
        name=app.name,
    )


def _compose_time(policy, registry, state_rank, use_cache: bool):
    """Best-of-N wall time of a full fresh-session composition."""
    best, composer = float("inf"), None
    for _ in range(_ROUNDS):
        order = TestOrder(registry, state_rank)
        composer = Composer(order, factory=DiagramFactory(), use_cache=use_cache)
        t0 = time.perf_counter()
        xfdd = to_xfdd(policy, composer)
        best = min(best, time.perf_counter() - t0)
    return best, composer, xfdd


@pytest.mark.parametrize("app_name", list(ALL_APPS))
def test_compose_cache(benchmark, app_name):
    app = ALL_APPS[app_name]()
    program = _deployed_program(app)
    policy = program.full_policy()
    state_rank = analyze_dependencies(policy).state_rank

    def run():
        return _compose_time(policy, program.registry, state_rank, True)

    cached_s, composer, xfdd = benchmark.pedantic(run, iterations=1, rounds=1)
    uncached_s, _, _ = _compose_time(policy, program.registry, state_rank, False)
    stats = composer.cache_stats()
    speedup = uncached_s / cached_s if cached_s else float("inf")
    _RESULTS.append({
        "app": app_name,
        "xfdd_size": size(xfdd),
        "cached_ms": round(cached_s * 1000, 3),
        "uncached_ms": round(uncached_s * 1000, 3),
        "speedup": round(speedup, 2),
        "hit_rate": round(stats["cache_hit_rate"], 4),
        "bypassed": stats["cache_bypassed"],
        "cache_entries": stats["cache_entries"],
        "intern_size": stats["intern_size"],
    })


def test_cache_key_mode_study(benchmark):
    """Apply-cache key study: ``id`` operand keys vs structural keys.

    Two candidate keys for the ``(op, operands, ctx)`` apply-cache entry:
    the production ``id()`` key (injective per factory thanks to
    interning; one C call to compute) and the content ``structural_key``
    (a cached blake2b digest of the sub-diagram; identity-insensitive,
    so equal diagrams from different sessions would share entries).
    Within one factory the two are *logically equivalent* — interning
    makes equal diagrams the same object — so hit rates must match and
    the only difference is key-construction cost.  The study pins that
    reasoning with numbers; the conclusion (keep ``id``) is recorded in
    ``docs/performance.md``.
    """
    rows = []
    for app_name in ALL_APPS:
        app = ALL_APPS[app_name]()
        program = _deployed_program(app)
        policy = program.full_policy()
        state_rank = analyze_dependencies(policy).state_rank
        per_mode = {}
        for mode in ("id", "structural"):
            best, composer = float("inf"), None
            for _ in range(_ROUNDS):
                order = TestOrder(program.registry, state_rank)
                composer = Composer(
                    order, factory=DiagramFactory(), key_mode=mode
                )
                t0 = time.perf_counter()
                to_xfdd(policy, composer)
                best = min(best, time.perf_counter() - t0)
            stats = composer.cache_stats()
            per_mode[mode] = {
                "ms": round(best * 1000, 3),
                "hit_rate": round(stats["cache_hit_rate"], 4),
                "hits": stats["cache_hits"],
            }
        rows.append({
            "app": app_name,
            "id": per_mode["id"],
            "structural": per_mode["structural"],
            "overhead": round(
                per_mode["structural"]["ms"] / per_mode["id"]["ms"], 2
            ) if per_mode["id"]["ms"] else 1.0,
        })
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print_table(
        "apply-cache key study: id vs structural operand keys",
        ("application", "id", "structural", "id hit%", "struct hit%",
         "struct/id"),
        [
            (
                row["app"],
                f"{row['id']['ms']:.1f}ms",
                f"{row['structural']['ms']:.1f}ms",
                f"{row['id']['hit_rate'] * 100:.0f}%",
                f"{row['structural']['hit_rate'] * 100:.0f}%",
                f"{row['overhead']:.2f}x",
            )
            for row in rows
        ],
    )
    # Interning makes the keys equivalent within a factory: identical
    # hit *counts*, not merely similar rates.  A divergence here means
    # structural_key collides or interning broke — both are bugs.
    for row in rows:
        assert row["id"]["hits"] == row["structural"]["hits"], row["app"]
    merge_bench_results("cache_key_study", rows)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(ALL_APPS)
    print_table(
        "xFDD composition: apply-cache on vs off (Table 3 apps + egress)",
        ("application", "xFDD size", "cached", "uncached", "speedup",
         "hit rate", "bypass", "intern"),
        [
            (
                row["app"],
                row["xfdd_size"],
                f"{row['cached_ms']:.1f}ms",
                f"{row['uncached_ms']:.1f}ms",
                f"{row['speedup']:.2f}x",
                f"{row['hit_rate'] * 100:.0f}%",
                "yes" if row["bypassed"] else "-",
                row["intern_size"],
            )
            for row in _RESULTS
        ],
    )
    # Merge: other benches (e.g. bench_controller_events) own other keys.
    merge_bench_results("apps", _RESULTS)
    # The engine must be caching *something* on every app.
    assert all(row["hit_rate"] > 0 for row in _RESULTS)
    # The adaptive bypass must keep every app near parity with the
    # uncached reference.  Before it, the TCP state machine composed at
    # 0.62x (the cache paid key construction on ~9k lookups whose
    # windowed hit rate had collapsed to ~1%); with it, the bypassed
    # apps measure 0.73-1.01x run to run — the pre-trip prefix still
    # pays cache overhead, and these are millisecond-scale best-of-3
    # wall-clock measurements on a shared host (healthy apps themselves
    # jitter in the 0.85-1.1x band).  The floor separates that noise
    # from the old pathology.
    assert all(row["speedup"] >= 0.7 for row in _RESULTS), [
        (row["app"], row["speedup"]) for row in _RESULTS
    ]
