"""Vectorized batch tier (columnar NetASM kernels) vs scalar engines.

The campus sharded workload (§7.3 / Appendix C) replayed on four
engines — sequential, thread lanes (``ShardedEngine``), the columnar
interpreter (``engine="vector"``), and the generated-kernel variant
(``engine="vector-jit"``) — plus the dns-tunnel control whose state
tests demote the whole batch to the scalar fallback (vector must track
the scalar lane at parity there, not win).

Methodology: kernels are cached by ``_exec_program_key`` and
``build_network()`` mints fresh keys per build, so each engine builds
**one** network, pays planning/codegen on a warm-up run (whose records
seed the equivalence check — every engine starts from default state),
and is then timed best-of-N on the warm network.  That is the deployed
shape: a controller session replays many batches against one compiled
network, re-planning only on policy rebuild.

The batch-size sweep shows where the columnar tier pays: per-batch
fixed costs (mask partitioning, LUT growth) amortize as the batch
grows, while per-row record materialization bounds the single-core
ceiling (Amdahl).  Honest numbers: this records ``cpus`` — on a 1-CPU
container the vector tier's ~4-5x is pure interpreter removal; the
>=10x Table-3 target composes it with multi-core lanes (cluster
workers opt in via ``ClusterEngine(lane="vector-jit")``).

Smoke mode for CI: ``VECTOR_ENGINE_SMOKE=1`` shrinks the trace and sweep.
"""

import gc
import os
import time

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.apps.chimera import dns_tunnel_detect
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import SequentialEngine, ShardedEngine
from repro.dataplane.vector import (
    VectorEngine,
    VectorJitEngine,
    kernel_cache_stats,
    reset_kernel_stats,
)
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("VECTOR_ENGINE_SMOKE") == "1"

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PACKETS = 1200 if SMOKE else 8000
ROUNDS = 2 if SMOKE else 5
BATCH_SWEEP = (300, 1200) if SMOKE else (1000, 8000, 32000)

ENGINES = (
    ("sequential", SequentialEngine),
    ("sharded", ShardedEngine),
    ("vector", VectorEngine),
    ("vector-jit", VectorJitEngine),
)

_RESULTS = []
_SWEEP_ROWS = []
_SUMMARY = {
    "packets": PACKETS,
    "smoke": SMOKE,
    "workloads": {},
    "batch_sweep": [],
}


def sharded_monitor_snapshot():
    """The vectorizable headline workload: per-port counters, six lanes."""
    ports = list(range(1, NUM_PORTS + 1))
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    program = Program(
        shard_by_inport(body, "count", ports),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    return SnapController(campus_topology(), program).submit()


def dns_tunnel_snapshot():
    """Scalar-fallback control: state tests demote the whole batch."""
    app = dns_tunnel_detect()
    program = Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    return SnapController(campus_topology(), program).submit()


def _warm_best(engine, snapshot, trace):
    """Warm-up once (plans + codegen), then best-of-N on the warm network.

    Returns ``(best_seconds, warmup_records, network)``; the warm-up
    records come from default state, so they are comparable across
    engines even though the timed rounds accumulate counter state.
    """
    network = snapshot.build_network()
    warmup_records = engine.run(network, trace)
    best = float("inf")
    for _ in range(ROUNDS):
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        engine.run(network, trace)
        best = min(best, time.perf_counter() - start)
        gc.enable()
    return best, warmup_records, network


def _record_view(records):
    """Per-arrival views: ``run`` returns one record list per input packet."""
    return [[(r.egress, r.hops, r.packet) for r in per_arrival]
            for per_arrival in records]


def _compare(snapshot, packets):
    trace = list(background_traffic(SUBNETS, count=packets, seed=7))
    reset_kernel_stats()
    rows = {}
    baseline = None
    for engine_name, engine_cls in ENGINES:
        before = kernel_cache_stats()
        best, records, network = _warm_best(engine_cls(), snapshot, trace)
        after = kernel_cache_stats()
        rows[engine_name] = {
            "pps": packets / best,
            "seconds": best,
            "kernel_calls": after["kernel_calls"] - before["kernel_calls"],
            "kernel_compiles": after["compiles"] - before["compiles"],
            "kernel_cache_hits": after["cache_hits"] - before["cache_hits"],
        }
        view = _record_view(records)
        if baseline is None:
            baseline = (view, network.global_store(), network.link_packets)
            continue
        # Byte-identical delivery on the warm-up run (default state on
        # every engine); the timed rounds advance counters identically
        # on each engine's private network, so final stores agree too.
        assert len(view) == packets and view == baseline[0]
        assert network.global_store() == baseline[1]
        assert network.link_packets == baseline[2]
    return rows


def test_monitor_sharded(benchmark):
    """Headline: columnar kernels vs the per-packet interpreter."""
    snapshot = sharded_monitor_snapshot()
    rows = benchmark.pedantic(
        lambda: _compare(snapshot, PACKETS),
        iterations=1, rounds=1,
    )
    seq_pps = rows["sequential"]["pps"]
    for engine_name, row in rows.items():
        row["ratio_vs_sequential"] = round(row["pps"] / seq_pps, 2)
        _RESULTS.append((
            "monitor-sharded", engine_name, PACKETS,
            f"{row['pps']:,.0f}", f"{row['ratio_vs_sequential']:.2f}x",
            row["kernel_compiles"], row["kernel_cache_hits"],
        ))
        row["pps"] = round(row["pps"])
        del row["seconds"]
    _SUMMARY["workloads"]["monitor-sharded"] = rows
    # The jit tier re-execs nothing after warm-up: every timed round is
    # a cache hit on the generated kernels.
    assert rows["vector-jit"]["kernel_compiles"] > 0
    assert rows["vector-jit"]["kernel_cache_hits"] > 0
    # Honest single-core floor (tracked at ~4-5x warm on 1 CPU; the
    # >=10x Table-3 target needs multi-core lanes on top — see docs).
    best_ratio = max(
        rows["vector"]["ratio_vs_sequential"],
        rows["vector-jit"]["ratio_vs_sequential"],
    )
    _SUMMARY["workloads"]["monitor-sharded"]["best_vector_ratio"] = best_ratio
    assert best_ratio >= 2.0


def test_dns_tunnel_fallback_parity(benchmark):
    """Unvectorizable program: the vector tier must not tax the fallback."""
    snapshot = dns_tunnel_snapshot()
    rows = benchmark.pedantic(
        lambda: _compare(snapshot, PACKETS),
        iterations=1, rounds=1,
    )
    seq_pps = rows["sequential"]["pps"]
    for engine_name, row in rows.items():
        row["ratio_vs_sequential"] = round(row["pps"] / seq_pps, 2)
        _RESULTS.append((
            "dns-tunnel-detect", engine_name, PACKETS,
            f"{row['pps']:,.0f}", f"{row['ratio_vs_sequential']:.2f}x",
            row["kernel_compiles"], row["kernel_cache_hits"],
        ))
        row["pps"] = round(row["pps"])
        del row["seconds"]
    _SUMMARY["workloads"]["dns-tunnel-detect"] = rows
    # Whole-batch scalar demotion: no kernels execute, and throughput
    # tracks the scalar lane (generous noise floor on ms-scale runs).
    assert rows["vector"]["kernel_calls"] == 0
    assert rows["vector"]["ratio_vs_sequential"] >= 0.5


def test_batch_size_sweep(benchmark):
    """Columnar payoff vs batch size: fixed costs amortize as N grows."""
    snapshot = sharded_monitor_snapshot()

    def sweep():
        out = []
        for packets in BATCH_SWEEP:
            rows = _compare(snapshot, packets)
            seq = rows["sequential"]["pps"]
            out.append({
                "batch": packets,
                "sequential_pps": round(seq),
                "vector_pps": round(rows["vector"]["pps"]),
                "vector_jit_pps": round(rows["vector-jit"]["pps"]),
                "vector_ratio": round(rows["vector"]["pps"] / seq, 2),
                "vector_jit_ratio": round(rows["vector-jit"]["pps"] / seq, 2),
            })
        return out

    for row in benchmark.pedantic(sweep, iterations=1, rounds=1):
        _SUMMARY["batch_sweep"].append(row)
        _SWEEP_ROWS.append((
            row["batch"], f"{row['sequential_pps']:,}",
            f"{row['vector_pps']:,}", f"{row['vector_ratio']:.2f}x",
            f"{row['vector_jit_pps']:,}", f"{row['vector_jit_ratio']:.2f}x",
        ))


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 2 * len(ENGINES)
    print_table(
        "Vector tier vs scalar engines (campus, background traffic, warm)",
        ("workload", "engine", "packets", "pkt/s", "vs seq",
         "compiles", "cache hits"),
        _RESULTS,
    )
    print_table(
        "Batch-size sweep (monitor-sharded)",
        ("batch", "sequential pkt/s", "vector pkt/s", "ratio",
         "vector-jit pkt/s", "ratio"),
        _SWEEP_ROWS,
    )
    merge_bench_results("vector_engine", _SUMMARY)
