"""Ablation — placement strategies (not a paper table; design-choice study).

§6.2.2 floats "heuristics rather than ST MILP" as a way to trade placement
quality for speed.  This bench compares three strategies on the DNS-tunnel
workload over the Table 5 ISP stand-ins:

* ST MILP (the paper's approach) — optimal congestion objective;
* greedy placement + shortest-path stitching (our heuristic);
* greedy placement + TE LP routing (heuristic placement, optimal routing).

Report: solve time and congestion objective (sum of link utilization).
"""

import pytest

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.packet_state import packet_state_mapping
from repro.milp.heuristic import greedy_solution
from repro.milp.placement import build_placement_model
from repro.milp.te import solve_te
from repro.topology.synthetic import table5_topology
from repro.topology.traffic import gravity_traffic_matrix
from repro.xfdd.build import build_xfdd

from workloads import DEFAULT_PORTS, dns_tunnel_program, print_table

TOPOLOGIES = ("AS1755", "AS6461")

_RESULTS = []


def prepared_case(name):
    topology = table5_topology(name, num_ports=DEFAULT_PORTS, seed=0)
    program = dns_tunnel_program(DEFAULT_PORTS)
    policy = program.full_policy()
    deps = analyze_dependencies(policy)
    xfdd = build_xfdd(policy, registry=program.registry, state_rank=deps.state_rank)
    ports = sorted(topology.ports)
    mapping = packet_state_mapping(xfdd, ports, ports)
    demands = gravity_traffic_matrix(ports, 1000.0, seed=0)
    return topology, demands, mapping, deps


@pytest.mark.parametrize("name", TOPOLOGIES)
def test_milp_placement(benchmark, name):
    topology, demands, mapping, deps = prepared_case(name)

    def run():
        return build_placement_model(topology, demands, mapping, deps).solve()

    solution = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.append(
        (name, "ST MILP", f"{solution.objective:.3f}",
         f"{benchmark.stats.stats.mean:.2f}s")
    )


@pytest.mark.parametrize("name", TOPOLOGIES)
def test_greedy_placement(benchmark, name):
    topology, demands, mapping, deps = prepared_case(name)

    def run():
        return greedy_solution(topology, demands, mapping, deps)

    solution, _routing = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.append(
        (name, "greedy+stitch", f"{solution.objective:.3f}",
         f"{benchmark.stats.stats.mean:.2f}s")
    )


@pytest.mark.parametrize("name", TOPOLOGIES)
def test_greedy_plus_te(benchmark, name):
    topology, demands, mapping, deps = prepared_case(name)

    def run():
        from repro.milp.heuristic import greedy_placement

        placement = greedy_placement(topology, demands, mapping, deps)
        return solve_te(topology, demands, mapping, deps, placement)

    solution = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.append(
        (name, "greedy+TE LP", f"{solution.objective:.3f}",
         f"{benchmark.stats.stats.mean:.2f}s")
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 3 * len(TOPOLOGIES)
    print_table(
        "Ablation: placement strategy vs congestion objective and time",
        ("topology", "strategy", "objective", "time"),
        sorted(_RESULTS),
    )
    # The MILP's objective is never worse than either heuristic's.
    by_key = {(row[0], row[1]): float(row[2]) for row in _RESULTS}
    for name in TOPOLOGIES:
        assert by_key[(name, "ST MILP")] <= by_key[(name, "greedy+stitch")] + 1e-6
        assert by_key[(name, "ST MILP")] <= by_key[(name, "greedy+TE LP")] + 1e-6
