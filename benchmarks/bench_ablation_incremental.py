"""Ablation — incremental TE model updates vs full rebuild (§6.2.2).

"Once created, the model supports incremental additions and modifications
of variables and constraints in a few milliseconds."  We compare, per
topology: building the TE model from scratch + solving, vs patching the
standing model (fail one link) + re-solving.
"""

import time

import pytest

from repro.core.controller import SnapController
from repro.milp.te import build_te_model
from repro.topology.synthetic import table5_topology

from workloads import DEFAULT_PORTS, dns_tunnel_program, print_table

TOPOLOGIES = ("AS1755", "AS3257")

_RESULTS = []


def _some_core_link(topology, placement):
    """A failable link not incident to any port or state switch."""
    protected = set(topology.ports.values()) | set(placement.values())
    for a, b, _cap in topology.links():
        if a not in protected and b not in protected:
            degraded = topology.without_link(a, b)
            try:
                degraded.validate()
            except Exception:
                continue
            return (a, b)
    raise RuntimeError("no failable link found")


@pytest.mark.parametrize("name", TOPOLOGIES)
def test_incremental_vs_rebuild(benchmark, name):
    topology = table5_topology(name, num_ports=DEFAULT_PORTS, seed=0)
    program = dns_tunnel_program(DEFAULT_PORTS)
    controller = SnapController(topology, program)
    cold = controller.submit()
    link = _some_core_link(topology, cold.placement)

    def measure():
        # Full rebuild path.
        start = time.perf_counter()
        model = build_te_model(
            topology.without_link(*link), dict(controller.demands), cold.mapping,
            cold.dependencies, cold.placement,
        )
        rebuilt_solution = model.solve()
        rebuild_time = time.perf_counter() - start
        # Incremental path: patch the standing model.
        standing = build_te_model(
            topology, dict(controller.demands), cold.mapping, cold.dependencies,
            cold.placement,
        )
        standing.solve()  # warm: the standing model exists pre-failure
        start = time.perf_counter()
        standing.fail_link(*link)
        patched_solution = standing.solve()
        patch_time = time.perf_counter() - start
        return rebuild_time, patch_time, rebuilt_solution, patched_solution

    rebuild_time, patch_time, rebuilt, patched = benchmark.pedantic(
        measure, iterations=1, rounds=1
    )
    assert patched.objective == pytest.approx(rebuilt.objective, rel=1e-5)
    _RESULTS.append(
        (name, str(link), f"{rebuild_time:.2f}s", f"{patch_time:.2f}s",
         f"{rebuild_time / patch_time:.1f}x")
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(TOPOLOGIES)
    print_table(
        "Ablation: TE after link failure — full rebuild vs incremental patch",
        ("topology", "failed link", "rebuild+solve", "patch+solve", "speedup"),
        _RESULTS,
    )
