"""Table 5 — statistics of the evaluated enterprise/ISP topologies.

Our synthetic stand-ins match the paper's switch and edge counts exactly;
the demand column reports the paper's full OBS port counts alongside the
scaled-down port count the benchmarks use (see EXPERIMENTS.md).
"""

import pytest

from repro.topology.synthetic import TABLE5, paper_num_ports, table5_topology

from workloads import DEFAULT_PORTS, print_table

_RESULTS = []


@pytest.mark.parametrize("name", list(TABLE5))
def test_topology_statistics(benchmark, name):
    topo = benchmark.pedantic(
        lambda: table5_topology(name, num_ports=DEFAULT_PORTS, seed=0),
        iterations=1,
        rounds=1,
    )
    switches, edges, paper_demands = TABLE5[name]
    assert topo.num_switches() == switches
    assert topo.num_directed_edges() == edges
    ours = DEFAULT_PORTS * (DEFAULT_PORTS - 1)
    _RESULTS.append((name, switches, edges, paper_demands, ours))


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(TABLE5)
    print_table(
        "Table 5: topology statistics (paper demands vs scaled bench demands)",
        ("topology", "#switches", "#edges", "paper #demands", "bench #demands"),
        _RESULTS,
    )
