"""State-compute replication on the deliberately-unshardable workload.

The ``global-heavy-hitter`` app is the §7.3 worst case: one
network-wide per-source counter every ingress updates, so the shard
planner collapses all six campus ports into a single serialized owner
lane.  This bench replays gravity-weighted background traffic on
``ShardedEngine`` across a lane-count sweep with replication off (the
collapse: 1 lane regardless of workers) and on (per-lane replicas +
deterministic delta merge: 6 lanes), recording pkt/s, the recovered
lane count, and the replica-log bytes shipped per packet.  A sequential
run is the byte-identity reference — final stores and per-packet
records are asserted equal on the measured runs themselves.

Honest numbers: thread lanes share the GIL, so on a single-CPU host the
replicated pkt/s tracks (or trails) sequential — the ``cpus`` field in
the merged results says how to read the curve.  What the bench proves
structurally on any host is the parallelism recovery: lanes go 1 -> 6
the moment replication is on, the property a multi-core host converts
into wall-clock speedup.

Results merge into ``BENCH_xfdd.json`` under ``replication``.  Smoke
mode for CI: ``REPLICATION_SMOKE=1`` shrinks the trace and the sweep.
"""

import gc
import os
import time

from repro.apps import assign_egress, default_subnets, global_heavy_hitter, \
    port_assumption
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import SequentialEngine, ShardedEngine, plan_for
from repro.dataplane.replication import replica_plan_for
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("REPLICATION_SMOKE") == "1"

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PACKETS = 1500 if SMOKE else 8000
ROUNDS = 3 if SMOKE else 5
LANE_SWEEP = (1, 2) if SMOKE else (1, 2, 4, 6)

_RESULTS = []
_SUMMARY = {
    "packets": PACKETS,
    "cpus": os.cpu_count(),
    "smoke": SMOKE,
    "workloads": {},
}


def global_counter_snapshot():
    app = global_heavy_hitter()
    program = Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    return SnapController(campus_topology(), program).submit()


def _record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def _best_time(engine, snapshot, trace):
    best = float("inf")
    records = network = None
    for _ in range(ROUNDS):
        network = snapshot.build_network()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        records = engine.run(network, trace)
        elapsed = time.perf_counter() - start
        gc.enable()
        best = min(best, elapsed)
    return best, records, network


def test_global_heavy_hitter_sweep(benchmark):
    """pkt/s and lane count vs workers, replication on vs off."""
    snapshot = global_counter_snapshot()
    trace = list(background_traffic(SUBNETS, count=PACKETS, seed=7))
    base_net = snapshot.build_network()
    assert plan_for(base_net).parallelism == 1  # the collapse is real
    assert sorted(replica_plan_for(base_net, True).replicated) \
        == ["global-hh"]

    def run():
        seq_time, seq_records, seq_net = _best_time(
            SequentialEngine(), snapshot, trace
        )
        rows = {}
        for workers in LANE_SWEEP:
            for replicate in (False, True):
                engine = ShardedEngine(
                    max_workers=workers, replicate_state=replicate
                )
                elapsed, records, net = _best_time(engine, snapshot, trace)
                # Byte-identity vs sequential, on the measured runs.
                assert net.global_store() == seq_net.global_store(), (
                    workers, replicate,
                )
                for a, b in zip(seq_records, records):
                    assert _record_view(a) == _record_view(b)
                stats = engine.last_run_stats
                rows[(workers, replicate)] = {
                    "pps": round(PACKETS / elapsed),
                    "lanes": stats["lanes"],
                    "log_bytes_per_packet": round(
                        stats.get("replica_log_bytes", 0) / PACKETS, 2
                    ),
                    "log_entries": stats.get("replica_log_entries", 0),
                }
        return seq_time, rows

    seq_time, rows = benchmark.pedantic(run, iterations=1, rounds=1)
    sequential_pps = round(PACKETS / seq_time)
    _SUMMARY["workloads"]["global-heavy-hitter"] = {
        "sequential_pps": sequential_pps,
        "sweep": [
            {
                "workers": workers,
                "replicate_state": replicate,
                **rows[(workers, replicate)],
            }
            for (workers, replicate) in sorted(rows)
        ],
    }
    for (workers, replicate), row in sorted(rows.items()):
        _RESULTS.append((
            workers,
            "on" if replicate else "off",
            row["lanes"],
            f"{row['pps']:,}",
            row["log_bytes_per_packet"],
        ))
    # The structural claim: replication recovers every lane the collapse
    # serialized, and lane count never shrinks as workers grow.
    for workers in LANE_SWEEP:
        assert rows[(workers, False)]["lanes"] == 1
        assert rows[(workers, True)]["lanes"] == NUM_PORTS
        assert rows[(workers, True)]["log_entries"] > 0
    off_pps = [rows[(w, False)]["pps"] for w in LANE_SWEEP]
    on_pps = [rows[(w, True)]["pps"] for w in LANE_SWEEP]
    assert min(off_pps) > 0 and min(on_pps) > 0
    _SUMMARY["workloads"]["global-heavy-hitter"]["recovered_lanes"] = (
        NUM_PORTS - 1
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert _RESULTS
    print_table(
        f"State-compute replication: global-heavy-hitter "
        f"({os.cpu_count()} CPUs, {PACKETS} packets, "
        f"sequential {_SUMMARY['workloads']['global-heavy-hitter']['sequential_pps']:,} pkt/s)",
        ("workers", "replication", "lanes", "pkt/s", "log B/pkt"),
        _RESULTS,
    )
    merge_bench_results("replication", _SUMMARY)
