"""Static state-effect analyzer and lint pass over every Table-3 app.

Two claims worth pinning with numbers:

* the analyzer is cheap enough to run on **every** snapshot — the
  controller attaches an :class:`EffectReport` to each compilation, so
  its cost rides the P1 budget; per-app wall time should stay in the
  tens-of-microseconds range (a pure AST walk, no xFDD build);
* the full lint pass (effect analysis + xFDD build + diagram walks) is
  a CI-scale cost, not an interactive one — per-app milliseconds.

The summary records per-app analyzer/lint timings plus the finding
counts the pass produced, so a lint regression also shows up as a
benchmark diff.

Smoke mode for CI: ``EFFECTS_BENCH_SMOKE=1`` trims rounds.
"""

import os
import time

from repro.analysis.effects import analyze_effects
from repro.analysis.lint import lint_program
from repro.apps import ALL_APPS

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("EFFECTS_BENCH_SMOKE") == "1"

ROUNDS = 3 if SMOKE else 20

_ROWS = []
_SUMMARY = {"smoke": SMOKE, "rounds": ROUNDS, "apps": {}}


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_analyze_and_lint_all_apps(benchmark):
    def run():
        out = {}
        for name, factory in ALL_APPS.items():
            app = factory()
            analyze_seconds, report = _best_of(
                lambda: analyze_effects(app.policy)
            )
            lint_seconds, findings = _best_of(
                lambda: lint_program(app), rounds=max(1, ROUNDS // 4)
            )
            out[name] = {
                "analyze_us": round(analyze_seconds * 1e6, 1),
                "lint_ms": round(lint_seconds * 1e3, 2),
                "variables": len(report.variables),
                "hazards": len(report.hazards),
                "races": len(report.races),
                "findings": len(findings),
                "interleaving_safe": report.interleaving_safe,
            }
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    total_analyze_us = 0.0
    for name, row in rows.items():
        total_analyze_us += row["analyze_us"]
        _ROWS.append((
            name, f"{row['analyze_us']:.1f}", f"{row['lint_ms']:.2f}",
            row["variables"], row["findings"],
            "yes" if row["interleaving_safe"] else "no",
        ))
        _SUMMARY["apps"][name] = row
    _SUMMARY["total_analyze_us"] = round(total_analyze_us, 1)
    # Every write classified, nothing order-dependent across the table:
    # the properties the controller relies on when it attaches reports.
    assert all(row["races"] == 0 for row in rows.values())
    # Cheap enough for every snapshot: the whole table analyzes in well
    # under a second even on a loaded CI box.
    assert total_analyze_us < 1_000_000


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_ROWS) == len(ALL_APPS)
    print_table(
        "Static effect analysis + lint (per Table-3 app, best-of-N)",
        ("app", "analyze us", "lint ms", "vars", "findings", "safe"),
        _ROWS,
    )
    merge_bench_results("static_analysis", _SUMMARY)
