"""Benchmark configuration: single-shot measurements, verbose tables.

Compilations are long-running, deterministic computations; we measure one
round each (pytest-benchmark pedantic mode) and print the paper-style
tables alongside the timing stats.

:func:`merge_bench_results` is the one writer of ``BENCH_xfdd.json``:
read-merge-write through a temp file plus an atomic ``os.replace``, so
concurrent bench invocations (CI runs several in one job, and developers
run them ad hoc) can never interleave into a torn or half-written file —
the worst case for two simultaneous writers is last-merge-wins on one
key, never corruption.  Every merged value is stamped with the host
environment (CPU count, Python and NumPy versions) so trajectory numbers
from different machines are never compared blind.
"""

import json
import os
import platform
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

BENCH_JSON_PATH = Path(__file__).parent / "BENCH_xfdd.json"


def bench_environment() -> dict:
    """The measurement context recorded with every bench key."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def _attach_environment(value):
    """Stamp ``value`` with :func:`bench_environment`, uniformly.

    Dict values get an ``env`` key (kept if the bench already wrote its
    own); list values (rows) are wrapped as ``{"env": ..., "rows": ...}``
    so the stamp has somewhere to live.  Scalars pass through untouched.
    """
    if isinstance(value, dict):
        value.setdefault("env", bench_environment())
        return value
    if isinstance(value, list):
        return {"env": bench_environment(), "rows": value}
    return value


def merge_bench_results(key: str, value, path: Path = BENCH_JSON_PATH) -> None:
    """Merge ``{key: value}`` into the benchmark trajectory file atomically."""
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        # Missing on first run; a decode error can only be a torn write
        # from a pre-atomic-rename version — start the file over.
        data = {}
    data[key] = _attach_environment(value)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(data, indent=2) + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
