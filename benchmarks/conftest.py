"""Benchmark configuration: single-shot measurements, verbose tables.

Compilations are long-running, deterministic computations; we measure one
round each (pytest-benchmark pedantic mode) and print the paper-style
tables alongside the timing stats.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
