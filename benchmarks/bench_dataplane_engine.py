"""Sharded data-plane execution engine vs the sequential baseline.

The campus sharded workload (§7.3 / Appendix C): ``count[inport]++``
split into per-port shards with ``shard_by_inport``, composed with
assign-egress, compiled onto the campus topology, and replayed under
gravity-weighted background traffic.  The shard plan proves the six
ingress ports disjoint, so the sharded engine runs six independent lanes
(compiled segment-cached fast path per lane) and merges deterministically.

Equivalence is asserted inline (records, stores, link counters); results
are merged into ``BENCH_xfdd.json`` under ``dataplane_engine``.
"""

import gc
import time

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.apps.chimera import dns_tunnel_detect
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import SequentialEngine, ShardedEngine, plan_shards
from repro.lang import ast
from repro.topology.campus import campus_topology
from repro.workloads import background_traffic

from conftest import merge_bench_results
from workloads import print_table

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PACKETS = 8000
ROUNDS = 5

_RESULTS = []
_SUMMARY = {}


def sharded_monitor_snapshot():
    """The campus sharded workload's compilation."""
    ports = list(range(1, NUM_PORTS + 1))
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    program = Program(
        shard_by_inport(body, "count", ports),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    return SnapController(campus_topology(), program).submit()


def dns_tunnel_snapshot():
    """Single-lane control: global state serializes into one shard."""
    app = dns_tunnel_detect()
    program = Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    return SnapController(campus_topology(), program).submit()


def _best_time(engine, snapshot, trace):
    """Best-of-N wall time; fresh network per round (state restarts)."""
    best = float("inf")
    last_network = None
    for _ in range(ROUNDS):
        network = snapshot.build_network()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        records = engine.run(network, trace)
        elapsed = time.perf_counter() - start
        gc.enable()
        best = min(best, elapsed)
        last_network = network
    return best, records, last_network


def _record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def _compare(name, snapshot, benchmark):
    trace = list(background_traffic(SUBNETS, count=PACKETS, seed=7))
    plan = plan_shards(snapshot.build_network())

    def run():
        seq_time, seq_records, seq_net = _best_time(
            SequentialEngine(), snapshot, trace
        )
        shard_time, shard_records, shard_net = _best_time(
            ShardedEngine(), snapshot, trace
        )
        # Delivery equivalence, asserted on the measured runs themselves.
        assert len(seq_records) == len(shard_records) == PACKETS
        for a, b in zip(seq_records, shard_records):
            assert _record_view(a) == _record_view(b)
        assert seq_net.global_store() == shard_net.global_store()
        assert seq_net.link_packets == shard_net.link_packets
        return seq_time, shard_time

    seq_time, shard_time = benchmark.pedantic(run, iterations=1, rounds=1)
    seq_pps = PACKETS / seq_time
    shard_pps = PACKETS / shard_time
    speedup = seq_time / shard_time
    _RESULTS.append(
        (
            name,
            PACKETS,
            plan.parallelism,
            f"{seq_pps:,.0f}",
            f"{shard_pps:,.0f}",
            f"{speedup:.2f}x",
        )
    )
    _SUMMARY[name] = {
        "packets": PACKETS,
        "shards": plan.parallelism,
        "sequential_pps": round(seq_pps),
        "sharded_pps": round(shard_pps),
        "speedup": round(speedup, 2),
    }
    return speedup


def test_campus_sharded_workload(benchmark):
    """The headline number: ≥2x replay throughput on disjoint shards."""
    speedup = _compare("monitor-sharded", sharded_monitor_snapshot(), benchmark)
    assert speedup >= 1.5  # soft floor against noisy runners; tracked at 2.2x


def test_single_lane_control(benchmark):
    """Global state -> one lane; gains come from the compiled lane alone."""
    speedup = _compare("dns-tunnel-detect", dns_tunnel_snapshot(), benchmark)
    assert speedup >= 1.0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 2
    print_table(
        "Sharded data-plane engine vs sequential (campus, background traffic)",
        ("workload", "packets", "shards", "sequential pkt/s",
         "sharded pkt/s", "speedup"),
        _RESULTS,
    )
    merge_bench_results("dataplane_engine", _SUMMARY)
