"""Shared benchmark workloads.

Builds the paper's evaluation inputs: the DNS-tunnel policy with routing
and assumption (§6.2), and the Figure 11 workload — k Table 3 applications
composed in parallel, each guarded to affect traffic destined to its own
egress port ("Each additional component program affects traffic destined
to a separate egress port").
"""

from __future__ import annotations

from repro.analysis.transform import namespace_state_vars
from repro.apps import ALL_APPS, assign_egress, default_subnets, port_assumption
from repro.apps.chimera import dns_tunnel_detect
from repro.core.program import Program
from repro.lang import ast

#: Ports used for the scaled-down OBS (see EXPERIMENTS.md for the paper's
#: counts; per-pair demands grow quadratically with ports).
DEFAULT_PORTS = 12


def dns_tunnel_program(num_ports: int = DEFAULT_PORTS) -> Program:
    """DNS-tunnel-detect; assign-egress with the port assumption."""
    subnets = default_subnets(num_ports)
    detect = dns_tunnel_detect()
    return Program(
        ast.Seq(detect.policy, assign_egress(subnets)),
        assumption=port_assumption(subnets),
        state_defaults=detect.state_defaults,
        name="dns-tunnel+egress",
    )


#: Table 3 order used by Figure 11 (20 applications).
FIG11_APP_ORDER = tuple(ALL_APPS)


def composed_program(num_apps: int, num_ports: int) -> Program:
    """Figure 11's workload: ``num_apps`` Table 3 policies in parallel.

    Application i is guarded by ``dstip = subnet_i`` so it affects only
    traffic egressing at port i; the guards are disjoint, so the parallel
    composition is race-free by construction.  Each component's state
    variables are namespaced (``p<i>.``) — the components are independent
    program *instances*, which is why the paper can say the composed
    policy's dependency graph "is a collection of the dependency graphs of
    the composed policies".
    """
    if num_apps > len(FIG11_APP_ORDER):
        raise ValueError(f"only {len(FIG11_APP_ORDER)} applications available")
    if num_apps > num_ports:
        raise ValueError("need at least one port per composed application")
    subnets = default_subnets(num_ports)
    components = []
    defaults: dict = {}
    for i, name in enumerate(FIG11_APP_ORDER[:num_apps]):
        app = ALL_APPS[name]()
        body = namespace_state_vars(app.policy, f"p{i + 1}.")
        guarded = ast.If(ast.Test("dstip", subnets[i + 1]), body, ast.Id())
        components.append(guarded)
        defaults.update(
            {f"p{i + 1}.{var}": dflt for var, dflt in app.state_defaults.items()}
        )
    policy = ast.Seq(ast.par_all(components), assign_egress(subnets))
    return Program(
        policy,
        assumption=port_assumption(subnets),
        state_defaults=defaults,
        name=f"fig11-{num_apps}-apps",
    )


def print_table(title: str, headers, rows) -> None:
    """Print a paper-style results table (captured into bench output)."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
