"""Table 6 — runtime of compiler phases when compiling DNS-tunnel-detect
with routing on the seven enterprise/ISP topologies.

The paper's columns: P1-P2-P3 (analysis), P5 ST, P5 TE, P6, P4.  Absolute
numbers differ from the paper (Gurobi/PyPy vs HiGHS/CPython, and the
scaled-down demand count); the shape to check is ST > TE, analysis and
rule generation negligible, and the larger ISP topologies costing the
most (AS6461/AS3257 > AS1755/AS1221; Purdue > Stanford/Berkeley).
"""

import pytest

from repro.core.controller import SnapController
from repro.topology.synthetic import TABLE5, table5_topology

from workloads import DEFAULT_PORTS, dns_tunnel_program, print_table

_RESULTS = []


@pytest.mark.parametrize("name", list(TABLE5))
def test_phase_runtimes(benchmark, name):
    topology = table5_topology(name, num_ports=DEFAULT_PORTS, seed=0)
    program = dns_tunnel_program(DEFAULT_PORTS)

    def compile_both():
        controller = SnapController(topology, program)
        cold = controller.submit()
        te = controller.reroute()
        return cold, te

    cold, te = benchmark.pedantic(compile_both, iterations=1, rounds=1)
    durations = cold.timer.durations
    analysis = durations["P1"] + durations["P2"] + durations["P3"]
    row = (
        name,
        f"{analysis:.2f}",
        f"{durations['P5']:.2f}",
        f"{te.timer.durations['P5']:.2f}",
        f"{durations['P6']:.3f}",
        f"{durations['P4']:.2f}",
    )
    for key, value in zip(
        ("P1-P2-P3", "P5_ST", "P5_TE", "P6", "P4"), row[1:]
    ):
        benchmark.extra_info[key] = value
    _RESULTS.append(row)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(TABLE5)
    print_table(
        f"Table 6: phase runtimes (s), DNS-tunnel + routing, "
        f"{DEFAULT_PORTS} OBS ports",
        ("topology", "P1-P2-P3", "P5 ST", "P5 TE", "P6", "P4"),
        _RESULTS,
    )
    # Shape checks mirroring the paper's observations.
    by_name = {row[0]: row for row in _RESULTS}
    st = {name: float(row[2]) for name, row in by_name.items()}
    # The large ISPs dominate the small ones.
    assert max(st["AS6461"], st["AS3257"]) > min(st["AS1755"], st["AS1221"])
    # Analysis phases are cheap relative to solving on the big ISPs.
    assert float(by_name["AS3257"][1]) < st["AS3257"]
