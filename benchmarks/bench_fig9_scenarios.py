"""Figure 9 — compilation time of DNS-tunnel-detect with routing on the
enterprise/ISP networks, per scenario.

The figure shows, per topology, three bars: Topology/TM change (cheapest),
Policy change, Cold start (most expensive).  We regenerate the series and
assert that ordering.
"""

import pytest

from repro.core.controller import SnapController
from repro.topology.synthetic import TABLE5, table5_topology

from workloads import DEFAULT_PORTS, dns_tunnel_program, print_table

_RESULTS = []


@pytest.mark.parametrize("name", list(TABLE5))
def test_scenario_times(benchmark, name):
    topology = table5_topology(name, num_ports=DEFAULT_PORTS, seed=0)
    program = dns_tunnel_program(DEFAULT_PORTS)

    def run_all():
        controller = SnapController(topology, program)
        cold = controller.submit()
        policy = controller.update_policy(dns_tunnel_program(DEFAULT_PORTS))
        tm = controller.reroute()
        return cold, policy, tm

    cold, policy, tm = benchmark.pedantic(run_all, iterations=1, rounds=1)
    row = (
        name,
        f"{tm.scenario_time('topology_change'):.2f}",
        f"{policy.scenario_time('policy_change'):.2f}",
        f"{cold.scenario_time('cold_start'):.2f}",
    )
    _RESULTS.append(row)
    # Figure 9's bar ordering: cold start is the most expensive scenario.
    assert cold.scenario_time("cold_start") >= policy.scenario_time(
        "policy_change"
    ) - 1e-9
    assert cold.scenario_time("cold_start") >= tm.scenario_time(
        "topology_change"
    ) - 1e-9


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == len(TABLE5)
    print_table(
        "Figure 9: compilation time (s) per scenario",
        ("topology", "topo/TM change", "policy change", "cold start"),
        _RESULTS,
    )
