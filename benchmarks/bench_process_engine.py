"""Process-pool data-plane engine vs thread lanes vs sequential, plus the
batched OBS mirror.

The campus sharded workload (§7.3 / Appendix C): ``count[inport]++``
split into per-port shards, compiled onto the campus topology, replayed
under gravity-weighted background traffic on three engines — sequential,
thread lanes (``ShardedEngine``), and worker processes
(``ProcessPoolEngine``).  The single-lane dns-tunnel control pins the
engine's inline fallback: one shard gains nothing from IPC, so the
process engine runs it on the calling thread (its numbers should track
the single-worker thread lane).  The OBS section times the sequential
``eval`` mirror against the per-shard batched mirror on the same trace.

Equivalence is asserted on the measured runs themselves (records, final
stores, link counters; byte-identical OBS outputs).  Results are merged
into ``BENCH_xfdd.json`` under ``process_engine`` — honest numbers: on a
single-CPU host process lanes cannot beat the GIL-free baseline, and the
recorded ``cpus`` field says how to read the speedups.

Smoke mode for CI: ``PROCESS_ENGINE_SMOKE=1`` shrinks the trace and runs
2 workers.
"""

import gc
import os
import time

from repro.analysis.sharding import shard_by_inport, shard_defaults
from repro.apps import assign_egress, default_subnets, port_assumption
from repro.apps.chimera import dns_tunnel_detect
from repro.core.controller import SnapController
from repro.core.program import Program
from repro.dataplane.engine import (
    ProcessPoolEngine,
    SequentialEngine,
    ShardedEngine,
    plan_for,
)
from repro.lang import ast
from repro.lang.state import Store
from repro.topology.campus import campus_topology
from repro.workloads import BatchedObsEngine, background_traffic, replay_obs

from conftest import merge_bench_results
from workloads import print_table

SMOKE = os.environ.get("PROCESS_ENGINE_SMOKE") == "1"

NUM_PORTS = 6
SUBNETS = default_subnets(NUM_PORTS)
PACKETS = 1500 if SMOKE else 8000
OBS_PACKETS = 600 if SMOKE else 3000
ROUNDS = 3 if SMOKE else 5
WORKERS = 2 if SMOKE else 4

_RESULTS = []
_SUMMARY = {
    "packets": PACKETS,
    "workers": WORKERS,
    "cpus": os.cpu_count(),
    "smoke": SMOKE,
    "workloads": {},
}


def sharded_monitor_snapshot():
    ports = list(range(1, NUM_PORTS + 1))
    body = ast.Seq(
        ast.StateIncr("count", ast.Field("inport")), assign_egress(SUBNETS)
    )
    program = Program(
        shard_by_inport(body, "count", ports),
        assumption=port_assumption(SUBNETS),
        state_defaults=shard_defaults({"count": 0}, "count", ports),
        name="monitor-sharded",
    )
    return SnapController(campus_topology(), program).submit(), program


def dns_tunnel_snapshot():
    app = dns_tunnel_detect()
    program = Program(
        ast.Seq(app.policy, assign_egress(SUBNETS)),
        assumption=port_assumption(SUBNETS),
        state_defaults=app.state_defaults,
        name=app.name,
    )
    return SnapController(campus_topology(), program).submit(), program


def _best_time(engine, snapshot, trace):
    """Best-of-N wall time; fresh network per round (state restarts).

    The engine instance is reused across rounds, so the process pool and
    its worker caches are warm after round one — the steady-state number
    a long-lived session sees.
    """
    best = float("inf")
    records = network = None
    for _ in range(ROUNDS):
        network = snapshot.build_network()
        gc.collect()
        gc.disable()
        start = time.perf_counter()
        records = engine.run(network, trace)
        elapsed = time.perf_counter() - start
        gc.enable()
        best = min(best, elapsed)
    return best, records, network


def _record_view(records):
    return [(r.egress, r.hops, r.packet) for r in records]


def _compare(name, snapshot, benchmark):
    trace = list(background_traffic(SUBNETS, count=PACKETS, seed=7))
    plan = plan_for(snapshot.build_network())
    process_engine = ProcessPoolEngine(max_workers=WORKERS)

    def run():
        try:
            seq_time, seq_records, seq_net = _best_time(
                SequentialEngine(), snapshot, trace
            )
            thread_time, thread_records, thread_net = _best_time(
                ShardedEngine(max_workers=WORKERS), snapshot, trace
            )
            proc_time, proc_records, proc_net = _best_time(
                process_engine, snapshot, trace
            )
        finally:
            process_engine.close()
        # Delivery equivalence, asserted on the measured runs themselves.
        assert len(seq_records) == len(proc_records) == PACKETS
        for a, b, c in zip(seq_records, thread_records, proc_records):
            assert _record_view(a) == _record_view(b) == _record_view(c)
        assert seq_net.global_store() == proc_net.global_store()
        assert seq_net.link_packets == proc_net.link_packets
        assert thread_net.global_store() == proc_net.global_store()
        return seq_time, thread_time, proc_time

    seq_time, thread_time, proc_time = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    shipped = process_engine.last_run_stats
    row = {
        "packets": PACKETS,
        "shards": plan.parallelism,
        "sequential_pps": round(PACKETS / seq_time),
        "thread_pps": round(PACKETS / thread_time),
        "process_pps": round(PACKETS / proc_time),
        "process_vs_sequential": round(seq_time / proc_time, 2),
        "process_vs_thread": round(thread_time / proc_time, 2),
        # Per-run wire accounting: state is footprint-restricted to the
        # variables each batch's ingress ports can touch.
        "state_bytes_shipped": shipped.get("state_bytes", 0),
        "spec_bytes_shipped": shipped.get("spec_bytes", 0),
    }
    _SUMMARY["workloads"][name] = row
    _RESULTS.append(
        (
            name,
            plan.parallelism,
            f"{row['sequential_pps']:,}",
            f"{row['thread_pps']:,}",
            f"{row['process_pps']:,}",
            f"{row['process_vs_thread']:.2f}x",
        )
    )
    return row


def test_campus_sharded_workload(benchmark):
    """The headline workload: six disjoint lanes on worker processes."""
    snapshot, _ = sharded_monitor_snapshot()
    row = _compare("monitor-sharded", snapshot, benchmark)
    assert row["process_pps"] > 0


def test_single_lane_control(benchmark):
    """Global state: one lane — the engine's inline fallback, no IPC."""
    snapshot, _ = dns_tunnel_snapshot()
    row = _compare("dns-tunnel-detect", snapshot, benchmark)
    assert row["process_pps"] > 0


def test_obs_mirror(benchmark):
    """Sequential eval mirror vs the per-shard batched mirror."""
    snapshot, program = sharded_monitor_snapshot()
    policy = program.full_policy()
    trace = list(background_traffic(SUBNETS, count=OBS_PACKETS, seed=5))
    batched = BatchedObsEngine(max_workers=WORKERS)

    def run():
        try:
            best_seq = best_batched = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                ref = replay_obs(trace, policy, Store(program.state_defaults))
                best_seq = min(best_seq, time.perf_counter() - start)
                start = time.perf_counter()
                got = replay_obs(
                    trace, policy, Store(program.state_defaults), engine=batched
                )
                best_batched = min(best_batched, time.perf_counter() - start)
            # Byte-identical mirror, asserted on the measured runs.
            assert got[1] == ref[1]
            assert got[0] == ref[0]
        finally:
            batched.close()
        return best_seq, best_batched

    seq_time, batched_time = benchmark.pedantic(run, iterations=1, rounds=1)
    _SUMMARY["obs_mirror"] = {
        "packets": OBS_PACKETS,
        "sequential_pps": round(OBS_PACKETS / seq_time),
        "batched_pps": round(OBS_PACKETS / batched_time),
        "speedup": round(seq_time / batched_time, 2),
    }
    assert _SUMMARY["obs_mirror"]["batched_pps"] > 0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    assert len(_RESULTS) == 2 and "obs_mirror" in _SUMMARY
    print_table(
        f"Process-pool engine ({WORKERS} workers, {os.cpu_count()} CPUs, "
        f"{PACKETS} packets)",
        ("workload", "shards", "sequential pkt/s", "thread pkt/s",
         "process pkt/s", "process/thread"),
        _RESULTS,
    )
    obs = _SUMMARY["obs_mirror"]
    print(
        f"\nOBS mirror ({obs['packets']} packets): sequential "
        f"{obs['sequential_pps']:,} pkt/s, batched {obs['batched_pps']:,} "
        f"pkt/s ({obs['speedup']:.2f}x)"
    )
    merge_bench_results("process_engine", _SUMMARY)
