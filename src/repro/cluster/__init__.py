"""Cluster runtime: cross-host data-plane lanes on worker daemons.

The scaling step past :class:`~repro.dataplane.engine.ProcessPoolEngine`:
the shard spec/state wire format is pure data, so proven-disjoint state
shards can run on *worker daemons* — subprocesses on this machine or
``python -m repro.cluster.worker`` daemons on other hosts — behind the
same engine interface as every other backend.  Importing this package
registers ``engine="cluster"`` (data plane) and the ``"cluster"`` OBS
mirror engine; the engine registries also know the name lazily, so
``CompilerOptions(engine="cluster")`` works without importing anything.

Modules:

* :mod:`~repro.cluster.protocol` — the length-prefixed, versioned wire
  format and its error taxonomy;
* :mod:`~repro.cluster.worker` — the standalone daemon (spec caches +
  the compiled execution lane);
* :mod:`~repro.cluster.coordinator` — discovery, handshake, spec
  shipping, least-loaded dispatch, heartbeats, requeue-on-loss;
* :mod:`~repro.cluster.engine` — :class:`ClusterEngine` and
  :class:`ClusterObsEngine`.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    Job,
    WorkerHandle,
    spawn_worker_process,
)
from repro.cluster.engine import ClusterEngine, ClusterObsEngine
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ClusterError,
    ProtocolError,
    TransportError,
)

__all__ = [
    "ClusterCoordinator", "ClusterEngine", "ClusterError",
    "ClusterObsEngine", "Job", "PROTOCOL_VERSION", "ProtocolError",
    "TransportError", "WorkerHandle", "spawn_worker_process",
]
