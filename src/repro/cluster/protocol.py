"""The cluster wire protocol: length-prefixed, versioned frames over TCP.

Every message between a :class:`~repro.cluster.coordinator
.ClusterCoordinator` and a :mod:`repro.cluster.worker` daemon is one
*frame*:

.. code-block:: text

    +-------+---------+-----+----------------+----------------------+
    | magic | version | pad | payload length | pickled (type, body) |
    | 4B    | 1B      | 3B  | 4B big-endian  | <length> bytes       |
    +-------+---------+-----+----------------+----------------------+

The header is fixed (:data:`FRAME_HEADER`), the body is a pickled
``(message_type, payload)`` pair.  The version byte rides in *every*
frame, so a coordinator talking to a daemon built from a different
checkout fails immediately with a :class:`ProtocolError` naming both
versions instead of corrupting a run — and the :data:`HELLO` handshake
re-checks it explicitly before any spec bytes move.

Two error families matter to callers:

* :class:`TransportError` — the connection died (worker crashed, host
  unreachable).  The coordinator treats this as *worker loss*: the job in
  flight is requeued onto a surviving worker.
* :class:`ProtocolError` — the bytes are wrong (magic/version mismatch,
  oversized frame).  Deterministic, never requeued.

Payloads are pickled, which is only safe between mutually trusted hosts
— the same trust model as the multiprocessing workers this subsystem
scales out.  Run daemons on machines you control, on networks you
control.

Message vocabulary (``payload`` keys in parentheses):

=================  ==========================================================
:data:`HELLO`      handshake (``version``) → :data:`WELCOME` (``pid``)
:data:`PING`       liveness probe → :data:`PONG` (``active``, cache sizes)
:data:`LOAD_PROGRAM`  ship program spec bytes (``key``, ``blob``) → ``OK``
:data:`LOAD_NETWORK`  ship network spec bytes (``key``, ``program_key``,
                   ``blob``) → ``OK``, or :data:`ERROR` with
                   ``missing="program"`` if the referenced program spec is
                   not cached worker-side
:data:`RUN_SHARD`  execute one shard batch (``network_key``, ``ports``,
                   ``variables``, ``state``, ``batch``, and — since v2 —
                   an optional ``replica`` spec naming the state-compute
                   replicated variables, their merge kinds, and the
                   parent's merge epoch; replica seeds ride in ``state``)
                   → :data:`RESULT` (``records``, ``links``, ``state``,
                   and ``replica_log``: the per-variable update log
                   diffed against the shipped seed, ``None`` when no
                   replica spec was sent) or :data:`ERROR`
                   (``missing="network"`` if the spec was evicted)
:data:`RUN_OBS`    evaluate one OBS mirror batch (``blob``) →
                   :data:`RESULT` (``state``, ``outputs``)
:data:`CHAOS`      fault injection for tests (``mode``) → ``OK``
:data:`SHUTDOWN`   graceful daemon exit → :data:`BYE`
=================  ==========================================================
"""

from __future__ import annotations

import pickle
import struct

from repro.lang.errors import DataPlaneError
from repro.obs.metrics import counter

#: Protocol version — bump on any frame or message change.
#: v2: RUN_SHARD carries an optional state-compute ``replica`` spec and
#: RESULT returns the matching ``replica_log`` (see the table above).
#: v3: RUN_SHARD carries an optional ``telemetry`` dict (``trace``: the
#: coordinator's span context to parent worker spans under, and
#: ``postcard_every``: the packet-sampling stride) and RESULT returns
#: the matching ``spans`` and ``postcards`` lists recorded while the
#: shard ran (absent/None when no telemetry was sent).
PROTOCOL_VERSION = 3

#: Frame/byte counters by direction ("sent"/"received") — every frame
#: either side moves is counted here, including heartbeats.
_FRAMES_TOTAL = counter(
    "snap_cluster_frames_total", "Cluster wire frames moved, by direction"
)
_BYTES_TOTAL = counter(
    "snap_cluster_bytes_total",
    "Cluster wire payload bytes moved, by direction",
)

#: Frame magic ("SNAP cluster wire").
FRAME_MAGIC = b"SNCW"

#: Refuse frames beyond this size: a corrupt length prefix must fail
#: fast, not allocate gigabytes.
MAX_FRAME_BYTES = 1 << 30

#: magic, version, 3 pad bytes, payload length.
FRAME_HEADER = struct.Struct("!4sBxxxI")

# -- message types ------------------------------------------------------------

HELLO = "hello"
WELCOME = "welcome"
PING = "ping"
PONG = "pong"
LOAD_PROGRAM = "load_program"
LOAD_NETWORK = "load_network"
OK = "ok"
RUN_SHARD = "run_shard"
RUN_OBS = "run_obs"
RESULT = "result"
ERROR = "error"
CHAOS = "chaos"
SHUTDOWN = "shutdown"
BYE = "bye"


class ClusterError(DataPlaneError):
    """Base class for cluster-runtime failures."""


class ProtocolError(ClusterError):
    """The peer sent bytes this protocol version cannot accept."""


class TransportError(ClusterError):
    """The connection died mid-conversation (worker loss)."""


def send_message(sock, message_type: str, payload=None) -> int:
    """Send one frame; returns the payload size in bytes (for stats)."""
    body = pickle.dumps(
        (message_type, payload), protocol=pickle.HIGHEST_PROTOCOL
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    header = FRAME_HEADER.pack(FRAME_MAGIC, PROTOCOL_VERSION, len(body))
    try:
        sock.sendall(header + body)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc
    _FRAMES_TOTAL.labels(direction="sent").inc()
    _BYTES_TOTAL.labels(direction="sent").inc(len(body))
    return len(body)


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    while count:
        try:
            chunk = sock.recv(min(count, 1 << 20))
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed by peer")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_message(sock):
    """Receive one frame; returns ``(message_type, payload)``."""
    magic, version, length = FRAME_HEADER.unpack(
        _recv_exact(sock, FRAME_HEADER.size)
    )
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    message_type, payload = pickle.loads(_recv_exact(sock, length))
    _FRAMES_TOTAL.labels(direction="received").inc()
    _BYTES_TOTAL.labels(direction="received").inc(length)
    return message_type, payload
