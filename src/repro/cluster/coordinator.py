"""The coordinator side of the cluster runtime.

A :class:`ClusterCoordinator` owns a set of worker daemons — local
subprocesses it spawns (``python -m repro.cluster.worker``) and/or
remote daemons it attaches to by address — and gives the
:class:`~repro.cluster.engine.ClusterEngine` three guarantees:

* **Discovery and handshake.**  Every worker is version-checked over the
  :data:`~repro.cluster.protocol.HELLO` exchange before any spec bytes
  move; a daemon speaking a different protocol version is rejected at
  ``start()``, not mid-run.
* **Spec caching.**  The coordinator tracks, per worker, which program
  and network spec keys it has shipped.  Dispatch ships only what a
  worker is missing — after a TE ``rewire`` the program key is
  unchanged, so *zero program bytes* move, only the small network half.
  If a worker evicted a spec (bounded caches) the run reply says so and
  the coordinator re-ships and retries, so cache pressure can never
  produce a wrong answer.
* **Least-loaded dispatch and requeue.**  Jobs are pulled by per-worker
  dispatch threads from a shared queue — a worker takes its next job the
  moment it finishes the last, so load balances to whatever each daemon
  can actually sustain.  A worker that dies mid-job (connection loss —
  the heartbeat's mid-run equivalent) is abandoned and its job is
  requeued onto a surviving worker; only when *no* capacity remains does
  the failure surface, as the engine's named
  :class:`~repro.lang.errors.DataPlaneError`.

Between runs, :meth:`ClusterCoordinator.heartbeat` pings every worker
(and prunes the dead), so a daemon lost while idle is discovered before
any job is entrusted to it.

Spawned daemons are *children*: ``close()`` shuts them down gracefully
(:data:`~repro.cluster.protocol.SHUTDOWN`, then terminate as backup) and
reaps them, an ``atexit`` hook closes any coordinator left open, and the
daemons themselves carry ``--orphan-exit`` as the last line of defense —
no ``repro.cluster.worker`` process survives its coordinator.  Attached
remote daemons are *not* ours to kill: ``close()`` only drops the
connection.
"""

from __future__ import annotations

import atexit
import os
import select
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro.cluster import protocol as wire
from repro.cluster.protocol import ClusterError, ProtocolError, TransportError
from repro.obs.metrics import counter, histogram

_HEARTBEAT_SECONDS = histogram(
    "snap_cluster_heartbeat_seconds",
    "Round-trip time of coordinator-to-worker heartbeat pings",
)
_REQUEUES_TOTAL = counter(
    "snap_cluster_requeues_total",
    "Jobs requeued onto surviving workers after worker loss",
)

#: Seconds to wait for a spawned daemon's banner line.
SPAWN_TIMEOUT = 60.0
#: Socket timeout for handshakes and control messages.
CONTROL_TIMEOUT = 15.0
#: Socket timeout for heartbeat pings (a dead host must not stall runs).
PING_TIMEOUT = 5.0
#: Socket timeout for job dispatch.  A daemon that wedges without
#: closing its connection (network partition, hung host) must surface as
#: worker loss — and requeue — not block the run forever.  Generous: a
#: shard batch is minutes of work at most, never ten.
RUN_TIMEOUT = 600.0


def spawn_worker_process(orphan_exit: bool = True):
    """Spawn a local worker daemon; returns ``(process, host, port)``.

    The daemon binds a free localhost port and announces it on stdout
    (``SNAP-CLUSTER-WORKER <version> <host> <port>``); this helper waits
    for that banner (bounded by :data:`SPAWN_TIMEOUT`) and checks the
    version.  ``PYTHONPATH`` is extended so the child finds the same
    ``repro`` package that is running the coordinator.
    """
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [sys.executable, "-m", "repro.cluster.worker",
            "--listen", "127.0.0.1:0"]
    if orphan_exit:
        argv.append("--orphan-exit")
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, env=env, text=True,
    )
    ready, _, _ = select.select([process.stdout], [], [], SPAWN_TIMEOUT)
    if not ready:
        process.terminate()
        process.wait(timeout=CONTROL_TIMEOUT)
        raise ClusterError(
            f"worker daemon produced no banner within {SPAWN_TIMEOUT}s"
        )
    banner = process.stdout.readline().split()
    if len(banner) != 4 or banner[0] != "SNAP-CLUSTER-WORKER":
        process.terminate()
        process.wait(timeout=CONTROL_TIMEOUT)
        raise ClusterError(f"unexpected worker banner {banner!r}")
    if int(banner[1]) != wire.PROTOCOL_VERSION:
        process.terminate()
        process.wait(timeout=CONTROL_TIMEOUT)
        raise ProtocolError(
            f"worker speaks protocol {banner[1]}, "
            f"coordinator speaks {wire.PROTOCOL_VERSION}"
        )
    return process, banner[2], int(banner[3])


class WorkerHandle:
    """One worker daemon: its connection, spec-cache view, and lifecycle.

    ``process`` is the daemon's ``Popen`` when this coordinator spawned
    it (and therefore owns its lifetime) or ``None`` for an attached
    remote daemon.  ``programs``/``networks`` are the spec keys this
    side has successfully shipped — the coordinator's view of the
    worker's caches, corrected on ``missing`` replies.
    """

    def __init__(self, host: str, port: int, process=None):
        self.host = host
        self.port = port
        self.process = process
        self.sock = None
        self.pid = None
        self.alive = False
        self.programs: set = set()
        self.networks: set = set()
        self.jobs_done = 0
        #: Payload bytes of the most recent successful send on this
        #: handle (one dispatch thread per handle, so no races) — the
        #: coordinator's byte accounting reads it instead of re-pickling
        #: payloads just to measure them.
        self.last_sent_bytes = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self) -> None:
        """Open the connection and run the version handshake."""
        try:
            self.sock = socket.create_connection(
                (self.host, self.port), timeout=CONTROL_TIMEOUT
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach worker at {self.address}: {exc}"
            ) from exc
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reply_type, reply = self.request(
            wire.HELLO, {"version": wire.PROTOCOL_VERSION},
            timeout=CONTROL_TIMEOUT,
        )
        if reply_type != wire.WELCOME:
            message = (reply or {}).get("message", f"got {reply_type!r}")
            self.abandon()
            raise ProtocolError(
                f"worker at {self.address} rejected the handshake: {message}"
            )
        self.pid = reply.get("pid")
        self.alive = True

    def request(self, message_type: str, payload, timeout=None):
        """One request/response round trip on this worker's connection."""
        sock = self.sock
        if sock is None:
            raise TransportError(f"worker {self.address} is not connected")
        sock.settimeout(timeout)
        try:
            self.last_sent_bytes = wire.send_message(sock, message_type, payload)
            return wire.recv_message(sock)
        finally:
            try:
                sock.settimeout(None)
            except OSError:
                pass

    def ping(self) -> bool:
        """Heartbeat: is the daemon alive and speaking our protocol?"""
        start = time.perf_counter()
        try:
            reply_type, _ = self.request(wire.PING, {}, timeout=PING_TIMEOUT)
        except (TransportError, ProtocolError):
            return False
        if reply_type == wire.PONG:
            _HEARTBEAT_SECONDS.labels(worker=self.address).observe(
                time.perf_counter() - start
            )
            return True
        return False

    def abandon(self) -> None:
        """Drop a dead worker: close the socket, reap an owned process."""
        self.alive = False
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=CONTROL_TIMEOUT)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()

    def close(self) -> None:
        """Graceful shutdown: SHUTDOWN for owned daemons, then abandon."""
        if self.alive and self.sock is not None and self.process is not None:
            try:
                self.request(wire.SHUTDOWN, {}, timeout=CONTROL_TIMEOUT)
            except (TransportError, ProtocolError):
                pass
        self.abandon()

    def __repr__(self):
        kind = "spawned" if self.process is not None else "attached"
        state = "alive" if self.alive else "dead"
        return f"WorkerHandle({self.address}, {kind}, {state})"


class Job:
    """One unit of dispatch: a message and its merge key."""

    __slots__ = ("key", "message_type", "payload", "attempts")

    def __init__(self, key, message_type: str, payload):
        self.key = key
        self.message_type = message_type
        self.payload = payload
        self.attempts = 0


class ClusterCoordinator:
    """Owns worker daemons; ships specs; dispatches and requeues jobs."""

    def __init__(self, local_workers: int = 2, addresses=()):
        self.local_workers = local_workers
        self.addresses = tuple(addresses)
        self.run_timeout = RUN_TIMEOUT
        self._handles: list = []
        self._started = False
        #: Guards ``stats``, the pending-job queue, and the result maps
        #: against the concurrent per-worker dispatch threads.
        self._lock = threading.Lock()
        #: Cumulative wire accounting, exposed through
        #: ``ClusterEngine.last_run_stats`` as per-run deltas.
        self.stats = {
            "program_bytes": 0, "network_bytes": 0, "payload_bytes": 0,
            "jobs": 0, "requeues": 0,
        }

    def add_stat(self, key: str, value: int) -> None:
        """Thread-safe stats increment (dispatch threads call this)."""
        with self._lock:
            self.stats[key] = self.stats.get(key, 0) + value

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterCoordinator":
        """Spawn/connect/handshake all workers (idempotent)."""
        if self._started:
            return self
        handles = []
        spawned = []
        try:
            for address in self.addresses:
                host, _, port = address.rpartition(":")
                handles.append(WorkerHandle(host or "127.0.0.1", int(port)))
            for _ in range(self.local_workers):
                process, host, port = spawn_worker_process()
                spawned.append(process)
                handles.append(WorkerHandle(host, port, process=process))
            for handle in handles:
                handle.connect()
        except BaseException:
            for handle in handles:
                handle.abandon()
            for process in spawned:
                if process.poll() is None:
                    process.terminate()
            raise
        if not handles:
            raise ClusterError(
                "cluster has no workers: pass local_workers >= 1 or at "
                "least one daemon address"
            )
        self._handles = handles
        self._started = True
        _LIVE_COORDINATORS.append(self)
        return self

    def close(self) -> None:
        """Shut down owned daemons, drop attached ones (idempotent)."""
        handles, self._handles = self._handles, []
        self._started = False
        if self in _LIVE_COORDINATORS:
            _LIVE_COORDINATORS.remove(self)
        for handle in handles:
            handle.close()

    # -- introspection -----------------------------------------------------

    def handles(self) -> tuple:
        return tuple(self._handles)

    def alive_workers(self) -> list:
        return [handle for handle in self._handles if handle.alive]

    def worker_count(self) -> int:
        return len(self.alive_workers())

    def heartbeat(self) -> int:
        """Ping every live worker; abandon the dead.  Returns survivors."""
        for handle in self.alive_workers():
            if not handle.ping():
                handle.abandon()
        return self.worker_count()

    # -- dispatch ----------------------------------------------------------

    def run_jobs(self, jobs, ensure=None, max_attempts: int | None = None):
        """Dispatch ``jobs`` across the live workers; requeue on loss.

        ``ensure(handle, force=False)`` is called before each send — the
        engine ships missing spec bytes there (``force=True`` after a
        worker reported an evicted spec).  Returns ``(results, errors)``
        keyed by ``job.key``: ``results`` holds RESULT payloads,
        ``errors`` holds :class:`ClusterError` per failed job — every
        job lands in exactly one of the two maps.  The error taxonomy:

        * :class:`TransportError` (worker loss, including a wedged host
          hitting ``run_timeout``) — abandon the worker, requeue the
          in-flight job onto a survivor (up to ``max_attempts``, default
          one try per initially-live worker plus one);
        * :class:`ProtocolError` (wrong bytes) — the stream can no
          longer be trusted, so the worker is abandoned, but the job
          fails deterministically rather than requeueing;
        * any other exception (a rejected spec, a worker-side ERROR
          reply) — deterministic job failure; the worker keeps draining.
        """
        self.start()
        pending = deque(jobs)
        results: dict = {}
        errors: dict = {}
        if max_attempts is None:
            max_attempts = self.worker_count() + 1
        while pending:
            alive = self.alive_workers()
            if not alive:
                for job in pending:
                    errors[job.key] = ClusterError(
                        "no cluster workers remain "
                        f"(job was dispatched {job.attempts} times)"
                    )
                break
            threads = [
                threading.Thread(
                    target=self._drain,
                    args=(handle, pending, results, errors, ensure,
                          max_attempts),
                    daemon=True,
                )
                for handle in alive
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # pending is non-empty again only if a worker died and its
            # job was requeued after the survivors' threads finished;
            # loop to give the survivors another pass.
        return results, errors

    def _drain(self, handle, pending, results, errors, ensure,
               max_attempts) -> None:
        """One worker's dispatch loop: pull, ship specs, run, record."""
        lock = self._lock
        while handle.alive:
            with lock:
                if not pending:
                    return
                job = pending.popleft()
            job.attempts += 1
            try:
                if ensure is not None:
                    ensure(handle)
                reply_type, payload = handle.request(
                    job.message_type, job.payload, timeout=self.run_timeout
                )
                if (
                    reply_type == wire.ERROR
                    and payload.get("missing") is not None
                    and ensure is not None
                ):
                    # The worker evicted a spec we shipped earlier:
                    # re-ship and retry once.
                    ensure(handle, force=True)
                    reply_type, payload = handle.request(
                        job.message_type, job.payload,
                        timeout=self.run_timeout,
                    )
                sent_bytes = handle.last_sent_bytes
            except TransportError as exc:
                # Worker loss: abandon it and requeue the job for the
                # survivors.
                handle.abandon()
                _REQUEUES_TOTAL.labels(worker=handle.address).inc()
                with lock:
                    self.stats["requeues"] += 1
                    if job.attempts >= max_attempts:
                        errors[job.key] = ClusterError(
                            f"job failed on {job.attempts} workers, "
                            f"last at {handle.address}: {exc}"
                        )
                    else:
                        pending.append(job)
                return
            except ProtocolError as exc:
                # Wrong bytes are deterministic — no requeue — but the
                # stream is no longer trustworthy: drop the worker too.
                handle.abandon()
                with lock:
                    errors[job.key] = ClusterError(
                        f"protocol failure at {handle.address}: {exc}"
                    )
                return
            except Exception as exc:
                # Deterministic dispatch failure (e.g. the worker
                # rejected a spec in ensure): the request/response
                # stream is still in step, so the worker keeps serving
                # — but this job must land in errors, never vanish.
                with lock:
                    errors[job.key] = (
                        exc if isinstance(exc, ClusterError)
                        else ClusterError(
                            f"dispatch to {handle.address} failed: {exc}"
                        )
                    )
                continue
            with lock:
                self.stats["jobs"] += 1
                self.stats["payload_bytes"] += sent_bytes
                handle.jobs_done += 1
                if reply_type == wire.RESULT:
                    results[job.key] = payload
                elif reply_type == wire.ERROR:
                    errors[job.key] = ClusterError(
                        payload.get("message", "worker error")
                    )
                else:
                    errors[job.key] = ClusterError(
                        f"unexpected reply {reply_type!r} from "
                        f"{handle.address}"
                    )

    def __repr__(self):
        return (
            f"ClusterCoordinator({self.worker_count()}/{len(self._handles)} "
            f"workers alive, started={self._started})"
        )


#: Coordinators not yet closed explicitly; drained at interpreter exit so
#: stray worker daemons never outlive the parent (the daemons' own
#: ``--orphan-exit`` is the backstop for SIGKILLed parents).
_LIVE_COORDINATORS: list = []


@atexit.register
def _close_live_coordinators() -> None:  # pragma: no cover - exit path
    while _LIVE_COORDINATORS:
        _LIVE_COORDINATORS.pop().close()
