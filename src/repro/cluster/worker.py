"""The standalone cluster worker daemon.

Run one per execution slot, on this machine or any other host that can
reach the coordinator's network:

.. code-block:: console

    $ python -m repro.cluster.worker --listen 0.0.0.0:7411

The daemon binds the given address (port ``0`` picks a free port), prints
a one-line banner —

.. code-block:: text

    SNAP-CLUSTER-WORKER <protocol-version> <host> <port>

— and serves coordinators one connection at a time over the
:mod:`repro.cluster.protocol` wire format.  A worker is a *cache plus an
execution lane*: it holds rehydrated switch-program sets keyed by the
parent network's ``_exec_program_key`` and lane-capable worker networks
keyed by ``_exec_network_key``, so a long-lived daemon pays
deserialization once per spec, not per batch — and a TE ``rewire`` (same
program key, new network key) reships only the small network half.  Shard
batches execute on exactly the compiled lane
(:class:`repro.dataplane.engine._Lane`) the in-process engines run, so a
cluster run is field-for-field identical to a sequential one.

Spawned daemons (see :func:`repro.cluster.coordinator
.spawn_worker_process`) get ``--orphan-exit``: the daemon records its
parent pid and exits as soon as it is re-parented, so a coordinator that
dies without cleanup can never leak workers.  Manually started daemons
omit the flag and keep serving successive coordinators until
:data:`~repro.cluster.protocol.SHUTDOWN` (or SIGTERM) arrives.
"""

from __future__ import annotations

import argparse
import os
import pickle
import select
import socket
import sys
import traceback

from repro.cluster import protocol as wire

#: Cache budget per daemon: a worker serving a long-lived session sees a
#: new network token per hot swap; old entries must not accumulate.  An
#: evicted spec is simply re-shipped (the coordinator retries on the
#: ``missing`` error reply).
CACHE_LIMIT = 4


def _trim(cache: dict) -> None:
    while len(cache) > CACHE_LIMIT:
        cache.pop(next(iter(cache)))


class WorkerDaemon:
    """One execution slot behind a listening TCP socket."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        orphan_exit: bool = False,
    ):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        self.host, self.port = self._listener.getsockname()[:2]
        self._parent = os.getppid() if orphan_exit else None
        self._programs: dict = {}  # program_key -> {switch: SwitchProgram}
        self._networks: dict = {}  # network_key -> worker Network
        self._active = 0  # jobs served on the current connection
        self._chaos_mode: str | None = None

    # -- serving -----------------------------------------------------------

    def _orphaned(self) -> bool:
        return self._parent is not None and os.getppid() != self._parent

    def serve_forever(self) -> None:
        """Accept coordinators until SHUTDOWN (or orphaning) ends us."""
        self._listener.settimeout(1.0)
        try:
            while True:
                if self._orphaned():
                    return
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                try:
                    self._serve_connection(conn)
                finally:
                    conn.close()
        finally:
            self._listener.close()

    def _serve_connection(self, conn) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            # Wait for the next frame in 1 s slices so an orphaned daemon
            # notices its parent is gone even while a coordinator holds
            # the connection open idle.
            ready, _, _ = select.select([conn], [], [], 1.0)
            if not ready:
                if self._orphaned():
                    sys.exit(0)
                continue
            try:
                message_type, payload = wire.recv_message(conn)
            except (wire.TransportError, wire.ProtocolError):
                # Coordinator went away, or a stray client (port
                # scanner, health probe) sent bytes that are not our
                # protocol: drop the connection, keep the daemon.
                return
            try:
                self._handle(conn, message_type, payload or {})
            except (wire.TransportError, wire.ProtocolError):
                # The peer vanished while we were replying (e.g. the
                # coordinator timed this worker out and abandoned the
                # socket mid-lane): the result is undeliverable, the
                # daemon lives on for the next coordinator.
                return

    # -- message handlers --------------------------------------------------

    def _handle(self, conn, message_type: str, payload: dict) -> None:
        if message_type == wire.HELLO:
            version = payload.get("version")
            if version != wire.PROTOCOL_VERSION:
                wire.send_message(conn, wire.ERROR, {
                    "message": (
                        f"protocol version mismatch: coordinator speaks "
                        f"{version}, worker speaks {wire.PROTOCOL_VERSION}"
                    ),
                })
                return
            wire.send_message(conn, wire.WELCOME, {
                "version": wire.PROTOCOL_VERSION, "pid": os.getpid(),
            })
        elif message_type == wire.PING:
            wire.send_message(conn, wire.PONG, {
                "pid": os.getpid(),
                "active": self._active,
                "programs": len(self._programs),
                "networks": len(self._networks),
            })
        elif message_type == wire.LOAD_PROGRAM:
            # Exception-wrapped like the RUN handlers: a spec that fails
            # to revive here is a *deterministic* job failure the
            # coordinator must see as an ERROR reply — an unhandled
            # exception would kill the daemon and be misread as worker
            # loss, requeueing the same poison onto the next daemon.
            try:
                from repro.dataplane.netasm import revive_programs

                self._programs[payload["key"]] = revive_programs(
                    pickle.loads(payload["blob"])
                )
                _trim(self._programs)
            except Exception as exc:
                wire.send_message(conn, wire.ERROR, {
                    "message": f"program spec rejected: "
                               f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
            else:
                wire.send_message(conn, wire.OK, {"key": payload["key"]})
        elif message_type == wire.LOAD_NETWORK:
            programs = self._programs.get(payload["program_key"])
            if programs is None:
                # Never shipped, or evicted: the coordinator re-ships.
                wire.send_message(conn, wire.ERROR, {
                    "message": "program spec not cached",
                    "missing": "program",
                })
                return
            try:
                from repro.dataplane.network import worker_network

                spec = pickle.loads(payload["blob"])
                self._networks[payload["key"]] = worker_network(
                    spec, programs, payload["program_key"], payload["key"]
                )
                _trim(self._networks)
            except Exception as exc:
                wire.send_message(conn, wire.ERROR, {
                    "message": f"network spec rejected: "
                               f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
            else:
                wire.send_message(conn, wire.OK, {"key": payload["key"]})
        elif message_type == wire.RUN_SHARD:
            self._maybe_chaos_exit()
            network = self._networks.get(payload["network_key"])
            if network is None:
                wire.send_message(conn, wire.ERROR, {
                    "message": "network spec not cached",
                    "missing": "network",
                })
                return
            self._active += 1
            try:
                from repro.dataplane import replication
                from repro.dataplane.engine import Shard, make_lane

                seed = payload["state"]
                network.install_shard_state(seed)
                lane = make_lane(
                    payload.get("lane"),
                    network,
                    Shard(
                        tuple(payload["ports"]),
                        frozenset(payload["variables"]),
                    ),
                    payload["batch"],
                )
                telemetry = payload.get("telemetry")
                if telemetry is None:
                    records, links = lane.run()
                    job_spans = job_cards = None
                else:
                    # One job per connection at a time, so the capture
                    # windows slice out exactly this shard's spans and
                    # postcards; the span parents under the
                    # coordinator's wire-shipped trace context.
                    from repro.obs import postcards
                    from repro.obs.tracing import TRACER

                    with TRACER.capture() as job_spans, \
                            postcards.capture() as job_cards, \
                            postcards.sampling(
                                telemetry.get("postcard_every", 0)
                            ):
                        with TRACER.span(
                            "worker.run_shard",
                            parent=telemetry.get("trace"),
                            batch=len(payload["batch"]),
                            worker=os.getpid(),
                            lane=payload.get("lane") or "scalar",
                        ):
                            records, links = lane.run()
                state = network.extract_shard_state(payload["variables"])
                replica_log = None
                replica_spec = payload.get("replica")
                if replica_spec is not None:
                    # Diff the post-run replica against the shipped seed
                    # (install copies tables, so the seed is pristine)
                    # and return the compact update log instead of the
                    # raw replica tables.
                    lane_vars = replication.replicas_from_spec(replica_spec)
                    replica_log = replication.replica_log(
                        lane_vars, seed,
                        replication.extract_state(network, lane_vars),
                        replica_spec["epoch"],
                    )
            except Exception as exc:
                wire.send_message(conn, wire.ERROR, {
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
            else:
                wire.send_message(conn, wire.RESULT, {
                    "records": records, "links": links, "state": state,
                    "replica_log": replica_log,
                    "spans": job_spans, "postcards": job_cards,
                })
            finally:
                self._active -= 1
        elif message_type == wire.RUN_OBS:
            self._maybe_chaos_exit()
            self._active += 1
            try:
                from repro.workloads.obs_engine import _obs_worker

                state, outputs = _obs_worker(pickle.loads(payload["blob"]))
            except Exception as exc:
                wire.send_message(conn, wire.ERROR, {
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
            else:
                wire.send_message(conn, wire.RESULT, {
                    "state": state, "outputs": outputs,
                })
            finally:
                self._active -= 1
        elif message_type == wire.CHAOS:
            # Test-only fault injection: "exit-on-next-run" makes the
            # daemon die abruptly when the next job arrives — the
            # deterministic stand-in for a host failing mid-run.
            self._chaos_mode = payload.get("mode")
            wire.send_message(conn, wire.OK, {"mode": self._chaos_mode})
        elif message_type == wire.SHUTDOWN:
            wire.send_message(conn, wire.BYE, {"pid": os.getpid()})
            sys.exit(0)
        else:
            wire.send_message(conn, wire.ERROR, {
                "message": f"unknown message type {message_type!r}",
            })

    def _maybe_chaos_exit(self) -> None:
        if self._chaos_mode == "exit-on-next-run":
            os._exit(23)  # simulated host loss: no goodbye, no flush

    def __repr__(self):
        return (
            f"WorkerDaemon({self.host}:{self.port}, "
            f"{len(self._programs)} programs, "
            f"{len(self._networks)} networks)"
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="SNAP cluster worker daemon",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to bind (port 0 picks a free port; default %(default)s)",
    )
    parser.add_argument(
        "--orphan-exit", action="store_true",
        help="exit when the spawning parent process dies",
    )
    args = parser.parse_args(argv)
    # Daemons inherit the coordinator's environment, including any
    # SNAP_TELEMETRY_FILE: drop the snapshot path so a daemon's atexit
    # flush can never clobber the coordinator's snapshot.  Telemetry
    # itself stays on — spans/postcards ride back over the wire.
    import dataclasses

    from repro import obs

    obs.configure(
        dataclasses.replace(obs.resolve_config(None), snapshot_path=None)
    )
    host, _, port = args.listen.rpartition(":")
    daemon = WorkerDaemon(
        host or "127.0.0.1", int(port or 0), orphan_exit=args.orphan_exit
    )
    print(
        f"SNAP-CLUSTER-WORKER {wire.PROTOCOL_VERSION} "
        f"{daemon.host} {daemon.port}",
        flush=True,
    )
    daemon.serve_forever()


if __name__ == "__main__":
    main()
