"""Cluster execution engines: disjoint-state shards on worker daemons.

:class:`ClusterEngine` is the cross-host member of the data-plane engine
family (``engine="cluster"``): the same proven-disjoint shard plan the
thread and process engines execute, but each shard's batch travels over
TCP to a :mod:`repro.cluster.worker` daemon — a local subprocess or a
daemon on another machine — and the results merge back in deterministic
global arrival order, regardless of which worker answered first.  What a
run ships is minimal by construction:

* the *program* spec (lowered switch programs) moves once per worker per
  policy — a TE ``rewire`` keeps the program token, so rewiring a warm
  cluster ships **zero** program bytes;
* the *network* spec (routing tables, port map, placement) moves once
  per worker per rewire;
* each job carries only the shard's batch plus the
  footprint-restricted state slice its packets can actually touch
  (:func:`repro.dataplane.engine.batch_footprint`).

The engine honors the PR 4 lane-failure contract end to end: a daemon
that dies mid-run has its shard requeued onto a surviving worker
(byte-identical results — state ships per run, so a re-run has no
leftover effects), and only when no capacity remains do the completed
lanes merge and a named :class:`~repro.lang.errors.DataPlaneError`
surface.  After a total-loss failure the coordinator is discarded so the
next run starts a fresh set of daemons — mirroring the process engine's
``BrokenProcessPool`` recovery.

:class:`ClusterObsEngine` is the OBS mirror's cluster member
(``replay_obs(..., engine="cluster")``): the batched mirror's
per-ingress-group planning and deterministic merge, with group
evaluation dispatched to the same daemons over the same wire.
"""

from __future__ import annotations

import pickle

from repro.cluster import protocol as wire
from repro.cluster.coordinator import ClusterCoordinator, Job
from repro.cluster.protocol import ClusterError
from repro.dataplane import replication
from repro.dataplane.engine import (
    ShardedEngine,
    _merge_lane_outcomes,
    _raise_lane_failure,
    _split_batches,
    batch_footprint,
    plan_for,
    refresh_exec_keys,
    register_engine,
)
from repro.dataplane.network import (
    Network,
    exec_network_spec,
    exec_program_spec,
)
from repro.obs import postcards
from repro.obs.runstats import RunStats
from repro.obs.tracing import TRACER
from repro.workloads.obs_engine import BatchedObsEngine, register_obs_engine


def _dumps(value) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class ClusterEngine:
    """Per-shard parallel execution on socket-connected worker daemons.

    ``workers`` local daemons are spawned lazily on the first run that
    has more than one shard (one shard gains nothing from the wire — it
    runs inline, exactly like the process engine's fallback), and/or
    pre-started daemons are attached via ``addresses``
    (``["host:port", ...]``).  The daemon set survives across runs and
    TE rewires; :meth:`restart` (the controller calls it on policy
    rebuilds) and :meth:`close` tear it down — spawned daemons are
    terminated and reaped, attached daemons are merely disconnected.

    :attr:`last_run_stats` describes the previous run: live worker
    count, lanes, and the bytes that actually moved (program / network
    spec bytes, per-job payload bytes) — the benchmark records these.
    """

    name = "cluster"

    def __init__(self, workers: int = 2, addresses=(), lane=None,
                 replicate_state: bool | None = None):
        if lane not in (None, "scalar", "vector", "vector-jit"):
            raise ClusterError(f"unknown lane kind {lane!r}")
        self.workers = workers
        self.addresses = tuple(addresses)
        #: Lane opt-in: "vector" / "vector-jit" asks every worker daemon
        #: to run its shard on the columnar tier (a worker without numpy
        #: silently runs the scalar lane — semantics are identical).
        self.lane = lane
        #: State-compute replication: ``None`` defers to the network's
        #: ``replicate_state``; a boolean overrides it for this engine.
        #: Replica specs and update logs ride the v2 wire protocol.
        self.replicate_state = replicate_state
        self._coordinator: ClusterCoordinator | None = None
        self._program_cache: tuple | None = None  # (program_key, bytes)
        self._network_cache: tuple | None = None  # (network_key, bytes)
        self.last_run_stats: dict = {}

    # -- execution ---------------------------------------------------------

    def run(self, network: Network, arrivals) -> list:
        arrivals = list(arrivals)
        with TRACER.span(
            "engine.run", engine=self.name, packets=len(arrivals)
        ) as run_span:
            return self._run(network, arrivals, run_span)

    def _run(self, network: Network, arrivals: list, run_span) -> list:
        rplan = self.replica_plan(network)
        plan = rplan.plan
        batches = _split_batches(plan, arrivals)
        if len(batches) <= 1:
            # Zero or one lane: the wire buys no parallelism — run
            # inline with identical semantics, spawn nothing.
            self.last_run_stats = RunStats(
                workers=0, lanes=len(batches), program_bytes=0,
                network_bytes=0, payload_bytes=0, requeues=0,
            )
            return self._inline_engine().run(network, arrivals)
        refresh_exec_keys(network)
        program_key = network._exec_program_key
        network_key = network._exec_network_key
        program_bytes = self._spec_bytes(
            "_program_cache", program_key, lambda: exec_program_spec(network)
        )
        network_bytes = self._spec_bytes(
            "_network_cache", network_key, lambda: exec_network_spec(network)
        )
        coordinator = self._ensure_coordinator()
        coordinator.heartbeat()
        stats_before = dict(coordinator.stats)

        def ensure(handle, force: bool = False) -> None:
            """Ship the spec halves this worker is missing."""
            if force:
                handle.programs.discard(program_key)
                handle.networks.discard(network_key)
            if network_key in handle.networks:
                return
            if program_key not in handle.programs:
                self._load_program(
                    coordinator, handle, program_key, program_bytes
                )
            # Spec shipping is bounded like job dispatch: a wedged host
            # must surface as worker loss, never block the run.
            reply_type, payload = handle.request(wire.LOAD_NETWORK, {
                "key": network_key,
                "program_key": program_key,
                "blob": network_bytes,
            }, timeout=coordinator.run_timeout)
            if reply_type == wire.ERROR and payload.get("missing") == "program":
                # The worker evicted the program spec after we shipped
                # it: re-ship both halves.
                handle.programs.discard(program_key)
                self._load_program(
                    coordinator, handle, program_key, program_bytes
                )
                reply_type, payload = handle.request(wire.LOAD_NETWORK, {
                    "key": network_key,
                    "program_key": program_key,
                    "blob": network_bytes,
                }, timeout=coordinator.run_timeout)
            if reply_type != wire.OK:
                raise ClusterError(
                    f"worker {handle.address} rejected the network spec: "
                    f"{(payload or {}).get('message', reply_type)}"
                )
            handle.networks.add(network_key)
            coordinator.add_stat("network_bytes", len(network_bytes))

        replicate = bool(rplan.replicated)
        epoch = replication.next_epoch(network) if replicate else 0
        run_span.set_attr("lanes", len(batches))
        sampler = postcards.active_sampler()
        telemetry = None
        if TRACER.enabled or sampler is not None:
            # v3 wire field: the daemon parents its shard span under this
            # context and ships its spans/postcards back in the RESULT.
            telemetry = {
                "trace": run_span.context(),
                "postcard_every": sampler.every if sampler else 0,
            }
        jobs = []
        for shard_index, batch in batches:
            shard = plan.shards[shard_index]
            variables = batch_footprint(plan, batch)
            lane_vars = replication.lane_replicas(rplan, batch) \
                if replicate else {}
            payload = {
                "network_key": network_key,
                "ports": tuple(shard.ports),
                "variables": tuple(sorted(variables)),
                # Replica seeds ride in the same state slice; the worker
                # diffs its post-run replica against them and sends back
                # the update log instead of the raw tables.
                "state": network.extract_shard_state(
                    set(variables) | set(lane_vars)
                ),
                "replica": (
                    replication.wire_spec(lane_vars, epoch)
                    if lane_vars else None
                ),
                "batch": batch,
                "lane": self.lane,
                "telemetry": telemetry,
            }
            jobs.append(Job(shard_index, wire.RUN_SHARD, payload))
        results, errors = coordinator.run_jobs(jobs, ensure=ensure)

        outcomes = []
        log_entries = 0
        for shard_index in sorted(results):
            payload = results[shard_index]
            network.merge_shard_state(payload["state"])
            log = payload.get("replica_log")
            if log is not None:
                # A requeued duplicate of an *earlier run's* lane would
                # carry a stale epoch and be refused here; within one
                # run the coordinator keeps a single result per shard.
                replication.apply_replica_log(
                    network, rplan.replicated, log, epoch
                )
                log_entries += replication.log_entries(log)
            if telemetry is not None:
                TRACER.adopt(payload.get("spans"))
                postcards.adopt(payload.get("postcards"))
            outcomes.append((payload["records"], payload["links"]))
        merged = _merge_lane_outcomes(
            network, outcomes, len(arrivals), complete=not errors
        )
        delta = {
            key: coordinator.stats[key] - stats_before.get(key, 0)
            for key in coordinator.stats
        }
        stats = RunStats(
            workers=coordinator.worker_count(),
            lanes=len(batches),
            program_bytes=delta["program_bytes"],
            network_bytes=delta["network_bytes"],
            payload_bytes=delta["payload_bytes"],
            requeues=delta["requeues"],
            replicated_vars=sorted(rplan.replicated),
            replica_log_entries=log_entries,
        )
        self.last_run_stats = stats
        stats.publish(self.name, packets=len(arrivals))
        run_span.set_attr("payload_bytes", delta["payload_bytes"])
        run_span.set_attr("requeues", delta["requeues"])
        if errors:
            if not coordinator.alive_workers():
                # Total capacity loss: discard the dead cluster so the
                # next run starts fresh daemons (the BrokenProcessPool
                # recovery, worn cluster-shaped).
                self.close()
            _raise_lane_failure(plan, min(errors), errors[min(errors)])
        return merged

    def _inline_engine(self) -> ShardedEngine:
        """The ≤1-lane inline fallback, honoring the lane opt-in."""
        if self.lane in ("vector", "vector-jit"):
            try:
                from repro.dataplane.vector import (
                    VectorEngine,
                    VectorJitEngine,
                )

                cls = VectorJitEngine if self.lane == "vector-jit" else (
                    VectorEngine
                )
                return cls(
                    max_workers=1, replicate_state=self.replicate_state
                )
            except Exception:  # numpy missing: scalar, same semantics
                pass
        return ShardedEngine(
            max_workers=1, replicate_state=self.replicate_state
        )

    def plan_for(self, network: Network):
        """The network's shard plan (cached, mutation-invalidated)."""
        return plan_for(network)

    def replica_plan(self, network: Network):
        """The network's replica plan (cached; see
        :func:`repro.dataplane.replication.replica_plan_for`)."""
        return replication.replica_plan_for(network, self.replicate_state)

    # -- spec and lifecycle ------------------------------------------------

    @staticmethod
    def _load_program(coordinator, handle, program_key, program_bytes):
        reply_type, payload = handle.request(wire.LOAD_PROGRAM, {
            "key": program_key, "blob": program_bytes,
        }, timeout=coordinator.run_timeout)
        if reply_type != wire.OK:
            raise ClusterError(
                f"worker {handle.address} rejected the program spec: "
                f"{(payload or {}).get('message', reply_type)}"
            )
        handle.programs.add(program_key)
        coordinator.add_stat("program_bytes", len(program_bytes))

    def _spec_bytes(self, slot: str, key, build) -> bytes:
        cached = getattr(self, slot)
        if cached is not None and cached[0] == key:
            return cached[1]
        blob = _dumps(build())
        setattr(self, slot, (key, blob))
        return blob

    def _ensure_coordinator(self) -> ClusterCoordinator:
        if self._coordinator is None:
            self._coordinator = ClusterCoordinator(
                local_workers=self.workers, addresses=self.addresses
            )
        return self._coordinator.start()

    @property
    def coordinator(self) -> ClusterCoordinator | None:
        """The live coordinator, or None before the first clustered run."""
        return self._coordinator

    def restart(self) -> None:
        """Tear the daemons down; the next run starts a fresh cluster.

        Fresh daemons mean fresh spec caches — the controller calls this
        on policy rebuilds, where the old compiled programs can never be
        reused.  TE rewires do *not* restart the cluster.
        """
        self.close()

    def close(self) -> None:
        """Shut down spawned daemons and drop connections (idempotent)."""
        coordinator, self._coordinator = self._coordinator, None
        self._program_cache = None
        self._network_cache = None
        if coordinator is not None:
            coordinator.close()

    def __repr__(self):
        state = (
            f"{self._coordinator.worker_count()} workers"
            if self._coordinator is not None
            else "idle"
        )
        return (
            f"ClusterEngine(workers={self.workers}, "
            f"addresses={list(self.addresses)}, {state})"
        )


class ClusterObsEngine(BatchedObsEngine):
    """The batched OBS mirror with groups evaluated on cluster daemons.

    Inherits the shard planner's per-ingress grouping, the
    footprint-restricted store slices, and the deterministic merge from
    :class:`~repro.workloads.obs_engine.BatchedObsEngine`; only the map
    step differs — each group's ``(policy, store, variables, batch)``
    payload is dispatched to a worker daemon, which runs the exact
    sequential evaluation loop and sends back ``(state, outputs)``.
    Byte-identical to the sequential mirror, like every OBS engine.
    """

    name = "cluster"

    def __init__(self, workers: int = 2, addresses=(),
                 max_workers: int | None = None):
        super().__init__(max_workers=max_workers, processes=False)
        self.workers = workers
        self.addresses = tuple(addresses)
        self._coordinator: ClusterCoordinator | None = None

    def _map_payloads(self, payloads) -> list:
        if len(payloads) <= 1:
            return super()._map_payloads(payloads)
        if self._coordinator is None:
            self._coordinator = ClusterCoordinator(
                local_workers=self.workers, addresses=self.addresses
            )
        coordinator = self._coordinator.start()
        coordinator.heartbeat()
        jobs = [
            Job(index, wire.RUN_OBS, {"blob": _dumps(payload)})
            for index, payload in enumerate(payloads)
        ]
        results, errors = coordinator.run_jobs(jobs)
        if errors:
            if not coordinator.alive_workers():
                # Total capacity loss: discard the dead cluster so the
                # next mirror call spawns fresh daemons (same recovery
                # as the data-plane engine).
                self._coordinator = None
                coordinator.close()
            index = min(errors)
            raise ClusterError(
                f"OBS mirror group {index} failed on the cluster: "
                f"{errors[index]}"
            )
        return [
            (results[index]["state"], results[index]["outputs"])
            for index in range(len(payloads))
        ]

    def close(self) -> None:
        coordinator, self._coordinator = self._coordinator, None
        if coordinator is not None:
            coordinator.close()
        super().close()

    def __repr__(self):
        return (
            f"ClusterObsEngine(workers={self.workers}, "
            f"addresses={list(self.addresses)})"
        )


# Self-registration: importing repro.cluster plugs both engines into the
# name registries (the registries also pre-register these lazily, so the
# names work without importing this module first — either path lands
# here).
register_engine("cluster", ClusterEngine, stateful=True)
register_obs_engine("cluster", ClusterObsEngine, stateful=True)
