"""Name → factory registries for pluggable engine families.

The data-plane engines (:mod:`repro.dataplane.engine`) and the OBS
mirror engines (:mod:`repro.workloads.obs_engine`) resolve names the
same way; this class is that one way, so a fix to resolution semantics
(lazy factories, shared stateful instances) lands in both families at
once.

* A *factory* is a zero-argument callable returning a fresh engine, or
  a lazy ``"module:attr"`` string resolved on first use — registering a
  name never imports its implementation.
* *Stateful* entries (engines owning OS resources: pools, daemons)
  resolve by name to one shared instance, so ad-hoc calls reuse a
  single pool instead of leaking one per call; sessions get private
  instances via :meth:`session_instance`.
"""

from __future__ import annotations

import importlib

from repro.lang.errors import SnapError


class EngineRegistry:
    """One engine family's name registry."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict = {}
        self._shared: dict = {}

    def register(self, name: str, factory, *, stateful: bool = False) -> None:
        """Register (or replace) a named engine."""
        self._entries[name] = {"factory": factory, "stateful": stateful}
        self._shared.pop(name, None)

    def unregister(self, name: str) -> None:
        """Remove a named engine (no-op if absent)."""
        self._entries.pop(name, None)
        self._shared.pop(name, None)

    def names(self) -> tuple:
        """The registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name) -> bool:
        return name in self._entries

    def factory(self, name: str):
        """The entry's factory, resolving a lazy string on first use."""
        entry = self._entries[name]
        factory = entry["factory"]
        if isinstance(factory, str):
            module, _, attr = factory.partition(":")
            factory = getattr(importlib.import_module(module), attr)
            entry["factory"] = factory
        return factory

    def resolve(self, engine, default: str = "sequential"):
        """An engine for ``engine``: a registered name (shared instance
        when stateful, fresh otherwise), an instance passed through, or
        ``default`` for None."""
        if engine is None:
            engine = default
        if isinstance(engine, str):
            if engine not in self._entries:
                raise SnapError(
                    f"unknown {self.kind} {engine!r}; expected one of "
                    f"{self.names()} or an engine instance"
                )
            if self._entries[engine]["stateful"]:
                shared = self._shared.get(engine)
                if shared is None:
                    shared = self.factory(engine)()
                    self._shared[engine] = shared
                return shared
            return self.factory(engine)()
        if hasattr(engine, "run"):
            return engine
        raise SnapError(
            f"unknown {self.kind} {engine!r}; expected one of "
            f"{self.names()} or an engine instance"
        )

    def session_instance(self, engine):
        """A *private* instance for a session when ``engine`` names a
        stateful entry; None otherwise (the caller uses the value
        as-is)."""
        if (
            isinstance(engine, str)
            and engine in self._entries
            and self._entries[engine]["stateful"]
        ):
            return self.factory(engine)()
        return None

    def __repr__(self):
        return f"EngineRegistry({self.kind!r}, {list(self.names())})"
