"""Minimal IPv4 address and prefix arithmetic.

SNAP tests such as ``dstip = 10.0.6.0/24`` match a packet field against a
CIDR prefix.  We avoid the stdlib ``ipaddress`` module's object overhead on
the hot matching path by representing addresses as plain integers and
prefixes as immutable ``(network_int, length)`` pairs.
"""

from __future__ import annotations

from functools import lru_cache


def ip_to_int(text: str) -> int:
    """Convert dotted-quad ``'10.0.6.1'`` to its 32-bit integer value."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer back to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class IPPrefix:
    """An immutable IPv4 CIDR prefix, e.g. ``IPPrefix('10.0.6.0/24')``.

    A /32 prefix behaves like a single address.  Prefixes are hashable and
    ordered (by network then length) so they can serve as xFDD test values.
    """

    __slots__ = ("network", "length", "_hash")

    def __init__(self, text_or_network, length: int | None = None):
        if isinstance(text_or_network, str):
            if "/" in text_or_network:
                addr, _, plen = text_or_network.partition("/")
                self.length = int(plen)
            else:
                addr = text_or_network
                self.length = 32
            if not 0 <= self.length <= 32:
                raise ValueError(f"bad prefix length in {text_or_network!r}")
            self.network = ip_to_int(addr) & self.mask
        else:
            self.length = 32 if length is None else length
            if not 0 <= self.length <= 32:
                raise ValueError(f"bad prefix length {length}")
            self.network = int(text_or_network) & self.mask
        # Prefixes end up inside xFDD test/cache keys that are hashed on
        # every apply-cache lookup; compute the hash once.
        self._hash = hash((self.network, self.length))

    @property
    def mask(self) -> int:
        return 0 if self.length == 0 else (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, other) -> bool:
        """True if ``other`` (an int address or IPPrefix) lies inside self."""
        if isinstance(other, IPPrefix):
            return other.length >= self.length and (other.network & self.mask) == self.network
        return (int(other) & self.mask) == self.network

    def overlaps(self, other: "IPPrefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    @property
    def is_host(self) -> bool:
        return self.length == 32

    def host(self, offset: int) -> int:
        """The integer address of the ``offset``-th host inside the prefix."""
        size = 1 << (32 - self.length)
        if not 0 <= offset < size:
            raise ValueError(f"host offset {offset} outside /{self.length}")
        return self.network + offset

    def __eq__(self, other):
        return (
            isinstance(other, IPPrefix)
            and self.network == other.network
            and self.length == other.length
        )

    def __lt__(self, other):
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"IPPrefix({str(self)!r})"

    def __str__(self):
        base = int_to_ip(self.network)
        return base if self.length == 32 else f"{base}/{self.length}"


@lru_cache(maxsize=4096)
def parse_prefix(text: str) -> IPPrefix:
    """Cached prefix constructor for the parser's hot path."""
    return IPPrefix(text)
