"""Shared utilities: IP-prefix arithmetic, phase timers, deterministic RNG."""

from repro.util.ipaddr import IPPrefix, ip_to_int, int_to_ip
from repro.util.timer import PhaseTimer
from repro.util.rng import make_rng

__all__ = ["IPPrefix", "ip_to_int", "int_to_ip", "PhaseTimer", "make_rng"]
