"""Deterministic random number generation.

Every stochastic component (topology generators, traffic matrices, test
workloads) takes a seed so experiments are exactly reproducible.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed) -> np.random.Generator:
    """A numpy Generator from an int seed, another Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
