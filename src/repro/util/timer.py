"""Phase timing used by the compiler pipeline and the benchmark harness.

Since the telemetry layer landed, :class:`PhaseTimer` is a thin shim
over it: every ``phase()`` block also opens a ``compile.phase`` trace
span and feeds the ``snap_compile_phase_seconds`` histogram, so the
Table-6 rows the benchmarks print and the registry a scraper sees come
from the same clock reads.  The accumulation into ``durations`` is now
lock-guarded — the old bare read-modify-write lost increments when two
threads timed phases on a shared timer.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import histogram
from repro.obs.tracing import TRACER

_PHASE_SECONDS = histogram(
    "snap_compile_phase_seconds", "Wall-clock time per compile phase"
)


class PhaseTimer:
    """Records wall-clock durations for named compiler phases.

    The paper's Table 4 names six phases P1..P6; the pipeline wraps each in
    ``timer.phase(name)`` and benchmarks read ``timer.durations`` to print
    Table 6-style rows.
    """

    def __init__(self):
        self.durations: dict[str, float] = {}
        self._lock = threading.Lock()

    @contextmanager
    def phase(self, name: str):
        with TRACER.span("compile.phase", phase=name) as span:
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                span.set_attr("seconds", elapsed)
                with self._lock:
                    self.durations[name] = (
                        self.durations.get(name, 0.0) + elapsed
                    )
                _PHASE_SECONDS.labels(phase=name).observe(elapsed)

    def total(self, names=None) -> float:
        """Sum of durations, optionally restricted to ``names``."""
        with self._lock:
            if names is None:
                return sum(self.durations.values())
            return sum(self.durations.get(name, 0.0) for name in names)

    def merged(self, other: "PhaseTimer") -> "PhaseTimer":
        """A new timer with durations from both (for multi-run totals)."""
        result = PhaseTimer()
        with self._lock:
            result.durations = dict(self.durations)
        with other._lock:
            for name, value in other.durations.items():
                result.durations[name] = result.durations.get(name, 0.0) + value
        return result

    def __repr__(self):
        with self._lock:
            rows = ", ".join(
                f"{k}={v:.3f}s" for k, v in sorted(self.durations.items())
            )
        return f"PhaseTimer({rows})"
