"""Phase timing used by the compiler pipeline and the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager


class PhaseTimer:
    """Records wall-clock durations for named compiler phases.

    The paper's Table 4 names six phases P1..P6; the pipeline wraps each in
    ``timer.phase(name)`` and benchmarks read ``timer.durations`` to print
    Table 6-style rows.
    """

    def __init__(self):
        self.durations: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def total(self, names=None) -> float:
        """Sum of durations, optionally restricted to ``names``."""
        if names is None:
            return sum(self.durations.values())
        return sum(self.durations.get(name, 0.0) for name in names)

    def merged(self, other: "PhaseTimer") -> "PhaseTimer":
        """A new timer with durations from both (for multi-run totals)."""
        result = PhaseTimer()
        result.durations = dict(self.durations)
        for name, value in other.durations.items():
            result.durations[name] = result.durations.get(name, 0.0) + value
        return result

    def __repr__(self):
        rows = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self.durations.items()))
        return f"PhaseTimer({rows})"
