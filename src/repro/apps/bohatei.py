"""Bohatei [8] DDoS-defense applications (Table 3, Appendix F policies
9/17/18 and the composed elephant-flow detector)."""

from __future__ import annotations

from repro.core.program import Program
from repro.lang import ast
from repro.apps.fast import flow_size_detect, sample_large


def syn_flood_detect(threshold: int = 100) -> Program:
    """SYN-flood detection: count SYNs without matching ACKs per source
    (Appendix F: "implemented in a similar way as super-spreader")."""
    source = """
    if tcp.flags = SYN then
      syn-count[srcip]++;
      if syn-count[srcip] = threshold then
        syn-flooder[srcip] <- True
      else id
    else
      if tcp.flags = ACK then syn-count[srcip]--
      else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="syn-flood"
    )


def dns_amplification_mitigation() -> Program:
    """Policy 17: drop DNS responses that answer no outstanding query."""
    source = """
    if dstport = 53 then
      benign-request[srcip][dstip] <- True
    else
      if srcport = 53 & !benign-request[dstip][srcip] then drop
      else id
    """
    return Program.from_source(source, name="dns-amplification")


def udp_flood_mitigation(threshold: int = 1000) -> Program:
    """Policy 18: rate-flag sources of anomalously many UDP packets."""
    source = """
    if proto = UDP & !udp-flooder[srcip] then
      udp-counter[srcip]++;
      if udp-counter[srcip] = threshold then
        (udp-flooder[srcip] <- True; drop)
      else id
    else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="udp-flood"
    )


def elephant_flow_detect() -> Program:
    """Appendix F: ``flow-size-detect; sample-large`` — flag abnormally
    large flows and sample-drop their packets."""
    composed = ast.Seq(flow_size_detect().policy, sample_large().policy)
    return Program(composed, name="elephant-flows")
