"""Routing-policy building blocks used across examples and benchmarks.

``assign_egress`` is the §2.1 egress-assignment policy; ``port_assumption``
is the §4.3 assumption predicate tying source subnets to ingress ports.
"""

from __future__ import annotations

from repro.lang import ast
from repro.util.ipaddr import IPPrefix


def assign_egress(subnets: dict) -> ast.Policy:
    """``if dstip = subnet_1 then outport <- 1 else ... else drop``.

    ``subnets`` maps OBS port -> :class:`IPPrefix`.
    """
    policy: ast.Policy = ast.Drop()
    for port in sorted(subnets, reverse=True):
        prefix = subnets[port]
        policy = ast.If(ast.Test("dstip", prefix), ast.Mod("outport", port), policy)
    return policy


def port_assumption(subnets: dict) -> ast.Predicate:
    """``(srcip = subnet_1 & inport = 1) + ...`` as a predicate (§4.3)."""
    terms = [
        ast.And(ast.Test("srcip", subnets[port]), ast.Test("inport", port))
        for port in sorted(subnets)
    ]
    pred = terms[0]
    for term in terms[1:]:
        pred = ast.Or(pred, term)
    return pred


def default_subnets(num_ports: int, base: str = "10.0.{i}.0/24") -> dict:
    """Port i -> 10.0.i.0/24 for i in 1..num_ports (the paper's scheme)."""
    return {i: IPPrefix(base.format(i=i)) for i in range(1, num_ports + 1)}
