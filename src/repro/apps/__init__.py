"""The Table 3 application suite (Chimera, FAST, Bohatei, others).

``ALL_APPS`` maps application name -> zero-argument constructor, in the
order Table 3 lists them; Figure 11's experiment composes them one by one.
"""

from repro.apps.bohatei import (
    dns_amplification_mitigation,
    elephant_flow_detect,
    syn_flood_detect,
    udp_flood_mitigation,
)
from repro.apps.chimera import (
    dns_ttl_change,
    dns_tunnel_detect,
    many_domain_ips,
    many_ip_domains,
    sidejack_detect,
    spam_detect,
)
from repro.apps.fast import (
    connection_affinity,
    flow_size_detect,
    ftp_monitoring,
    global_heavy_hitter,
    heavy_hitter_block,
    heavy_hitter_detect,
    sample_large,
    sample_medium,
    sample_small,
    sampling_by_flow_size,
    selective_packet_dropping,
    stateful_firewall,
    super_spreader_detect,
)
from repro.apps.other import snort_flowbits, tcp_state_machine
from repro.apps.routing import assign_egress, default_subnets, port_assumption

#: Table 3, in paper order, plus the deliberately-unshardable
#: ``global-heavy-hitter`` (the state-compute-replication worst case).
#: 21 applications.
ALL_APPS = {
    # Chimera [5]
    "many-ip-domains": many_ip_domains,
    "many-domain-ips": many_domain_ips,
    "dns-ttl-change": dns_ttl_change,
    "dns-tunnel-detect": dns_tunnel_detect,
    "sidejack-detect": sidejack_detect,
    "spam-detect": spam_detect,
    # FAST [21]
    "stateful-firewall": stateful_firewall,
    "ftp-monitoring": ftp_monitoring,
    "heavy-hitter": heavy_hitter_detect,
    "super-spreader": super_spreader_detect,
    "sampling-by-flow-size": sampling_by_flow_size,
    "selective-packet-dropping": selective_packet_dropping,
    "connection-affinity": connection_affinity,
    # Bohatei [8]
    "syn-flood": syn_flood_detect,
    "dns-amplification": dns_amplification_mitigation,
    "udp-flood": udp_flood_mitigation,
    "elephant-flows": elephant_flow_detect,
    # Others
    "tcp-state-machine": tcp_state_machine,
    "snort-flowbits": snort_flowbits,
    "flow-size-detect": flow_size_detect,
    # Not in Table 3: the one-global-counter worst case every ingress
    # updates — flatlines §7.3 sharding, scales under replication.
    "global-heavy-hitter": global_heavy_hitter,
}

__all__ = [
    "ALL_APPS",
    "assign_egress", "default_subnets", "port_assumption",
    "dns_amplification_mitigation", "elephant_flow_detect",
    "syn_flood_detect", "udp_flood_mitigation",
    "dns_ttl_change", "dns_tunnel_detect", "many_domain_ips",
    "many_ip_domains", "sidejack_detect", "spam_detect",
    "connection_affinity", "flow_size_detect", "ftp_monitoring",
    "global_heavy_hitter", "heavy_hitter_block", "heavy_hitter_detect",
    "sample_large", "sample_medium", "sample_small",
    "sampling_by_flow_size", "selective_packet_dropping",
    "stateful_firewall", "super_spreader_detect",
    "snort_flowbits", "tcp_state_machine",
]
