"""Remaining Table 3 applications: the bump-on-the-wire TCP state machine
(Appendix F policy 20) and Snort flowbits (policy 19)."""

from __future__ import annotations

from repro.core.program import Program
from repro.lang.values import Symbol
from repro.apps.fast import FLOW_IND, FLOW_IND_REV


def tcp_state_machine() -> Program:
    """Policy 20: track TCP connection states on the wire.

    Considerably larger than the other applications — it is the 10-second
    jump between 18 and 19 composed policies in Figure 11.
    """
    source = """
    if tcp.flags = SYN & tcp-state{fwd} = CLOSED then
      tcp-state{fwd} <- SYN-SENT
    else
      if tcp.flags = SYN-ACK & tcp-state{rev} = SYN-SENT then
        tcp-state{rev} <- SYN-RECEIVED
      else
        if tcp.flags = ACK & tcp-state{fwd} = SYN-RECEIVED then
          tcp-state{fwd} <- ESTABLISHED
        else
          if tcp.flags = FIN & tcp-state{fwd} = ESTABLISHED then
            tcp-state{fwd} <- FIN-WAIT
          else
            if tcp.flags = FIN-ACK & tcp-state{rev} = FIN-WAIT then
              tcp-state{rev} <- FIN-WAIT2
            else
              if tcp.flags = ACK & tcp-state{fwd} = FIN-WAIT2 then
                tcp-state{fwd} <- CLOSED
              else
                if tcp.flags = RST & tcp-state{rev} = ESTABLISHED then
                  tcp-state{rev} <- CLOSED
                else
                  (tcp-state{rev} = ESTABLISHED + tcp-state{fwd} = ESTABLISHED)
    """.replace("{fwd}", FLOW_IND).replace("{rev}", FLOW_IND_REV)
    return Program.from_source(
        source,
        state_defaults={"tcp-state": Symbol("CLOSED")},
        name="tcp-state-machine",
    )


def snort_flowbits(
    home_net: str = "10.0.0.0/8", external_net: str = "0.0.0.0/0"
) -> Program:
    """Policy 19: the Snort flowbits rule marking Kindle web traffic."""
    source = """
    srcip = {home};
    dstip = {ext};
    dstport = 80;
    established{fwd} = True;
    content = "Kindle/3.0+";
    kindle{fwd} <- True
    """.replace("{home}", home_net).replace("{ext}", external_net).replace(
        "{fwd}", FLOW_IND
    )
    return Program.from_source(source, name="snort-flowbits")
