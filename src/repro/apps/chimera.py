"""Chimera [5] applications (Table 3, Appendix F policies 1, 2, 4, 8 and
Figure 1's DNS tunnel detector, plus spam/phishing detection policy 6)."""

from __future__ import annotations

from repro.core.program import Program
from repro.lang.values import Symbol
from repro.util.ipaddr import IPPrefix


def dns_tunnel_detect(subnet: str = "10.0.6.0/24", threshold: int = 3) -> Program:
    """Figure 1: detect DNS tunnels to/from a protected subnet."""
    source = """
    if dstip = {subnet} & srcport = 53 then
      orphan[dstip][dns.rdata] <- True;
      susp-client[dstip]++;
      if susp-client[dstip] = threshold then
        blacklist[dstip] <- True
      else id
    else
      if srcip = {subnet} & orphan[srcip][dstip] then
        orphan[srcip][dstip] <- False;
        susp-client[srcip]--
      else id
    """.replace("{subnet}", subnet)
    return Program.from_source(
        source, params={"threshold": threshold}, name="dns-tunnel-detect"
    )


def many_ip_domains(threshold: int = 5) -> Program:
    """Policy 1: too many domains resolving to one IP (fast-flux hiding)."""
    source = """
    if srcport = 53 then
      if !domain-ip-pair[dns.rdata][dns.qname] then
        num-of-domains[dns.rdata]++;
        domain-ip-pair[dns.rdata][dns.qname] <- True;
        if num-of-domains[dns.rdata] = threshold then
          mal-ip-list[dns.rdata] <- True
        else id
      else id
    else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="many-ip-domains"
    )


def many_domain_ips(threshold: int = 5) -> Program:
    """Policy 2: too many distinct IPs under one domain name."""
    source = """
    if srcport = 53 then
      if !ip-domain-pair[dns.qname][dns.rdata] then
        num-of-ips[dns.qname]++;
        ip-domain-pair[dns.qname][dns.rdata] <- True;
        if num-of-ips[dns.qname] = threshold then
          mal-domain-list[dns.qname] <- True
        else id
      else id
    else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="many-domain-ips"
    )


def dns_ttl_change() -> Program:
    """Policy 4: count TTL changes per domain in DNS responses."""
    source = """
    if srcport = 53 then
      if !seen[dns.rdata] then
        seen[dns.rdata] <- True;
        last-ttl[dns.rdata] <- dns.ttl;
        ttl-change[dns.rdata] <- 0
      else
        if last-ttl[dns.rdata] = dns.ttl then id
        else (last-ttl[dns.rdata] <- dns.ttl; ttl-change[dns.rdata]++)
    else id
    """
    return Program.from_source(source, name="dns-ttl-change")


def sidejack_detect(server: str = "10.0.6.80") -> Program:
    """Policy 8: a session id must stay with the client that opened it."""
    source = """
    if dstip = {server} & !(sid = 0) then
      if !active-session[sid] then
        atomic(active-session[sid] <- True;
               sid2ip[sid] <- srcip;
               sid2agent[sid] <- http.user-agent)
      else
        if sid2ip[sid] = srcip & sid2agent[sid] = http.user-agent then id
        else drop
    else id
    """.replace("{server}", server)
    return Program.from_source(source, name="sidejack-detect")


def spam_detect(threshold: int = 20) -> Program:
    """Policy 6: flag new mail transfer agents that send too much mail."""
    source = """
    (if MTA-dir[smtp.MTA] = Unknown then
      MTA-dir[smtp.MTA] <- Tracked;
      mail-counter[smtp.MTA] <- 0
    else id);
    (if MTA-dir[smtp.MTA] = Tracked then
      mail-counter[smtp.MTA]++;
      if mail-counter[smtp.MTA] = threshold then
        MTA-dir[smtp.MTA] <- Spammer
      else id
    else id)
    """
    return Program.from_source(
        source,
        params={"threshold": threshold},
        state_defaults={"MTA-dir": Symbol("Unknown")},
        name="spam-detect",
    )
