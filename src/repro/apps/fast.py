"""FAST [21] applications (Table 3, Appendix F policies 3, 5, 7, 9-16)."""

from __future__ import annotations

from repro.core.program import Program
from repro.lang.parser import parse
from repro.lang.values import Symbol

#: The 5-tuple flow index used throughout Appendix F.
FLOW_IND = "[srcip][dstip][srcport][dstport][proto]"
#: The reverse-direction flow index.
FLOW_IND_REV = "[dstip][srcip][dstport][srcport][proto]"


def stateful_firewall(subnet: str = "10.0.6.0/24") -> Program:
    """Policy 3: allow only connections initiated from inside ``subnet``."""
    source = """
    if srcip = {subnet} then
      established[srcip][dstip] <- True
    else
      if dstip = {subnet} then established[dstip][srcip]
      else id
    """.replace("{subnet}", subnet)
    return Program.from_source(source, name="stateful-firewall")


def ftp_monitoring() -> Program:
    """Policy 5: admit FTP data connections only after a control-channel
    PORT announcement (standard mode)."""
    source = """
    if dstport = 21 then
      ftp-data-chan[srcip][dstip][ftp.PORT] <- True
    else
      if srcport = 20 then ftp-data-chan[dstip][srcip][ftp.PORT]
      else id
    """
    return Program.from_source(source, name="ftp-monitoring")


def heavy_hitter_detect(threshold: int = 100) -> Program:
    """Policy 7: count SYNs per source; flag heavy hitters."""
    source = """
    if tcp.flags = SYN & !heavy-hitter[srcip] then
      hh-counter[srcip]++;
      if hh-counter[srcip] = threshold then
        heavy-hitter[srcip] <- True
      else id
    else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="heavy-hitter"
    )


def global_heavy_hitter(subnet: str = "10.0.6.0/24") -> Program:
    """A deliberately *unshardable* heavy-hitter: one network-wide
    per-source packet counter that every ingress port updates.

    The §7.3 shard planner collapses all of ``global-hh``'s ingress
    ports into a single owner lane (SNAP-W104), so this is the
    worst-case shape for lane parallelism — and the canonical target
    for state-compute replication (:mod:`repro.dataplane.replication`):
    the counter is increment-only and never state-tested, so per-lane
    replicas merge byte-identically.  The ``dstip`` guard keeps the
    single-variable placement feasible on the campus topology (an
    unguarded network-wide write has no valid egress assignment).
    """
    source = """
    if dstip = {subnet} then global-hh[srcip]++ else id
    """.replace("{subnet}", subnet)
    return Program.from_source(source, name="global-heavy-hitter")


def heavy_hitter_block(threshold: int = 100) -> Program:
    """§F: detection composed with blocking —
    ``heavy-hitter-detection; (heavy-hitter[srcip] = False)``."""
    detect = heavy_hitter_detect(threshold)
    block = parse("heavy-hitter[srcip] = False")
    program = Program(
        parse("id"), name="heavy-hitter-block", state_defaults=detect.state_defaults
    )
    from repro.lang import ast

    program.policy = ast.Seq(detect.policy, block)
    return program


def super_spreader_detect(threshold: int = 100) -> Program:
    """Policy 9: sources opening many connections without closing them."""
    source = """
    if tcp.flags = SYN then
      spreader[srcip]++;
      if spreader[srcip] = threshold then
        super-spreader[srcip] <- True
      else id
    else
      if tcp.flags = FIN then spreader[srcip]--
      else id
    """
    return Program.from_source(
        source, params={"threshold": threshold}, name="super-spreader"
    )


def flow_size_detect() -> Program:
    """Policy 10: classify flows as SMALL / MEDIUM / LARGE by packet count."""
    source = """
    flow-size{fi}++;
    if flow-size{fi} = 1 then flow-type{fi} <- SMALL
    else
      if flow-size{fi} = 100 then flow-type{fi} <- MEDIUM
      else
        if flow-size{fi} = 1000 then flow-type{fi} <- LARGE
        else id
    """.replace("{fi}", FLOW_IND)
    return Program.from_source(source, name="flow-size-detect")


def _sampler(name: str, period: int) -> str:
    return """
    {name}-sampler{fi}++;
    if {name}-sampler{fi} = {period} then {name}-sampler{fi} <- 0
    else drop
    """.replace("{name}", name).replace("{fi}", FLOW_IND).replace(
        "{period}", str(period)
    )


def sample_small(period: int = 5) -> Program:
    """Policy 12: pass one in ``period`` packets of small flows."""
    return Program.from_source(_sampler("small", period), name="sample-small")


def sample_medium(period: int = 50) -> Program:
    """Policy 13."""
    return Program.from_source(_sampler("medium", period), name="sample-medium")


def sample_large(period: int = 500) -> Program:
    """Policy 14."""
    return Program.from_source(_sampler("large", period), name="sample-large")


def sampling_by_flow_size(
    small_period: int = 5, medium_period: int = 50, large_period: int = 500
) -> Program:
    """Policy 11: flow-size detection steering three samplers."""
    source = """
    flow-size-detect;
    if flow-type{fi} = SMALL then sample-small
    else
      if flow-type{fi} = MEDIUM then sample-medium
      else sample-large
    """.replace("{fi}", FLOW_IND)
    definitions = {
        "flow-size-detect": flow_size_detect().policy,
        "sample-small": sample_small(small_period).policy,
        "sample-medium": sample_medium(medium_period).policy,
        "sample-large": sample_large(large_period).policy,
    }
    return Program.from_source(
        source, definitions=definitions, name="sampling-by-flow-size"
    )


def selective_packet_dropping(gop: int = 14) -> Program:
    """Policy 15: drop dependent MPEG B-frames once their I-frame is lost."""
    source = """
    if mpeg.frame-type = Iframe then
      dep-count[srcip][dstip][srcport][dstport] <- {gop}
    else
      if dep-count[srcip][dstip][srcport][dstport] = 0 then drop
      else dep-count[srcip][dstip][srcport][dstport]--
    """.replace("{gop}", str(gop))
    return Program.from_source(source, name="selective-packet-dropping")


def connection_affinity(lb_policy=None) -> Program:
    """Policy 16: established connections bypass the load balancer ``lb``.

    The default ``lb`` pins established connections to outport 1 — pass a
    real load-balancing policy to replace it.
    """
    source = """
    if tcp-state{rev} = ESTABLISHED | tcp-state{fwd} = ESTABLISHED then lb
    else id
    """.replace("{rev}", FLOW_IND_REV).replace("{fwd}", FLOW_IND)
    definitions = {"lb": lb_policy if lb_policy is not None else parse("outport <- 1")}
    return Program.from_source(
        source,
        definitions=definitions,
        state_defaults={"tcp-state": Symbol("CLOSED")},
        name="connection-affinity",
    )
