"""xFDD leaf actions (Figure 6)::

    a ::= id | drop | f <- v | s[e1] <- e2 | s[e1]++ | s[e1]--

``id`` is the empty action sequence and ``drop`` the empty *leaf*, so only
the three effectful actions are materialized.  Action sequences are tuples
of actions, executed left to right; expressions are flattened scalar
tuples, exactly as in :mod:`repro.xfdd.tests`.
"""

from __future__ import annotations

from repro.lang import ast
from repro.xfdd.tests import flatten


def substitute_scalar(expr, resolver):
    """Replace a Field with a Value when ``resolver(name)`` knows it."""
    if isinstance(expr, ast.Field):
        value = resolver(expr.name)
        if value is not None:
            return ast.Value(value)
    return expr


def substitute_exprs(exprs: tuple, resolver) -> tuple:
    return tuple(substitute_scalar(e, resolver) for e in exprs)


class Action:
    """Base class for leaf actions."""

    __slots__ = ()


class DropAction(Action):
    """``drop`` — terminates an action sequence; prior state writes persist.

    Appendix A's semantics threads the store through ``p ; drop``: the
    packet dies but p's writes remain.  A sequence therefore may end with
    ``drop``, keeping its state effects while emitting no packet.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def writes_state(self):
        return None

    def __eq__(self, other):
        return isinstance(other, DropAction)

    def __hash__(self):
        return hash("DropAction")

    def __repr__(self):
        return "drop"


DROP_ACTION = DropAction()


class FieldAssign(Action):
    """``f <- v``."""

    __slots__ = ("field", "value", "_hash")

    def __init__(self, field: str, value):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("FA", field, value)))

    def writes_state(self):
        return None

    def __eq__(self, other):
        return (
            isinstance(other, FieldAssign)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"{self.field}<-{self.value}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")


class StateAssign(Action):
    """``s[e1] <- e2``."""

    __slots__ = ("var", "index", "value", "_hash")

    def __init__(self, var: str, index, value):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", flatten(index))
        object.__setattr__(self, "value", flatten(value))
        object.__setattr__(self, "_hash", hash(("SA", var, self.index, self.value)))

    def writes_state(self):
        return self.var

    def __eq__(self, other):
        return (
            isinstance(other, StateAssign)
            and other.var == self.var
            and other.index == self.index
            and other.value == self.value
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        idx = "][".join(str(e) for e in self.index)
        val = ",".join(str(e) for e in self.value)
        return f"{self.var}[{idx}]<-{val}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")


class StateDelta(Action):
    """``s[e]++`` (delta=+1) or ``s[e]--`` (delta=-1)."""

    __slots__ = ("var", "index", "delta", "_hash")

    def __init__(self, var: str, index, delta: int):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", flatten(index))
        object.__setattr__(self, "delta", delta)
        object.__setattr__(self, "_hash", hash(("SD", var, self.index, delta)))

    def writes_state(self):
        return self.var

    def __eq__(self, other):
        return (
            isinstance(other, StateDelta)
            and other.var == self.var
            and other.index == self.index
            and other.delta == self.delta
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        idx = "][".join(str(e) for e in self.index)
        op = "++" if self.delta > 0 else "--"
        return f"{self.var}[{idx}]{op}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")


def seq_written_vars(seq: tuple) -> frozenset:
    """State variables written by one action sequence."""
    return frozenset(a.writes_state() for a in seq if a.writes_state() is not None)


def field_map(seq: tuple) -> dict:
    """Algorithm 2 ``field-map``: net field assignments of a sequence."""
    fmap: dict = {}
    for action in seq:
        if isinstance(action, DropAction):
            break
        if isinstance(action, FieldAssign):
            fmap[action.field] = action.value
    return fmap


def state_ops_substituted(seq: tuple, var: str):
    """Algorithm 3 ``filter``: ops on ``var`` with incremental substitution.

    Walks the sequence maintaining the field assignments seen *so far* and
    substitutes them into each state operation's index/value expressions,
    so the returned ops are expressed over the packet as it was at the
    *start* of the sequence.  Returns ops in program order.
    """
    fmap: dict = {}
    ops = []
    for action in seq:
        if isinstance(action, DropAction):
            break
        if isinstance(action, FieldAssign):
            fmap[action.field] = action.value
        elif isinstance(action, StateAssign) and action.var == var:
            resolver = fmap.get
            ops.append(
                StateAssign(
                    var,
                    substitute_exprs(action.index, resolver),
                    substitute_exprs(action.value, resolver),
                )
            )
        elif isinstance(action, StateDelta) and action.var == var:
            resolver = fmap.get
            ops.append(
                StateDelta(var, substitute_exprs(action.index, resolver), action.delta)
            )
    return ops
