"""xFDD composition operators (Figures 7–8 and Appendix E).

* ``union``      — ⊕, used for ``p + q``, ``x | y`` and conditionals
* ``negate``     — ⊖, defined on predicate diagrams only
* ``sequence``   — ⊙, used for ``p ; q`` and ``x & y``
* ``restrict``   — ``d|t`` and ``d|~t`` from Figure 7

``union`` carries a :class:`~repro.xfdd.context.Context` and runs both
operands through ``refine`` at each step (Figure 8), which removes
redundant and contradicting tests, keeping the output canonical.

The hard case (§4.2: "The hardest case is surely for ⊙") is composing an
action sequence with a branch — Algorithm 1 of Appendix E — implemented in
:meth:`Composer._seq_actions`.  Our version additionally handles
``s[e]++``/``s[e]--`` actions preceding a state test on ``s``: the
accumulated increment ``delta`` is folded into the test's value (the test
``s[e] = c`` post-increment becomes ``s[e] = c - delta`` pre-increment),
which is exactly what Figure 3's xFDD does with
``susp-client[dstip] = threshold - 1``.

Race conditions (§3): ``union`` raises :class:`RaceConditionError` when a
leaf that writes a state variable is merged against a branch that tests
the same variable (a parallel read/write conflict); leaf construction
itself rejects parallel write/write conflicts.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import CompileError, RaceConditionError
from repro.xfdd.actions import (
    DropAction,
    StateAssign,
    StateDelta,
    field_map,
    state_ops_substituted,
)
from repro.xfdd.context import Context
from repro.xfdd.diagram import (
    DROP,
    IDENTITY,
    Branch,
    DiagramFactory,
    Leaf,
    XFDD,
    default_factory,
    structural_key,
)
from repro.xfdd.order import TestOrder
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest, XTest

#: Adaptive apply-cache opt-out.  The largest Table 3 compositions (the
#: TCP state machine, flow-size sampling, elephant-flow detection) front-
#: load their cache hits: once the shared shallow subproblems are done,
#: the remaining lookups are deep, context-specific, and almost never
#: recur — observed per-window hit rates collapse to ~1% while the cache
#: keeps paying ``ctx.cache_key()`` construction and dict hashing on
#: every call (the TCP state machine composes ~1.6x *slower* with the
#: cache than without it).  The composer therefore samples its hit rate
#: over each window of :data:`CACHE_BYPASS_WINDOW` lookups and switches
#: the cache off for the rest of the session when a window falls below
#: :data:`CACHE_BYPASS_THRESHOLD`.  Bypassing is semantically invisible
#: (the cache only memoizes; results are hash-consed by the factory
#: either way) and the already-populated cache is kept so counters stay
#: meaningful.  Workloads whose windows keep recurring subproblems —
#: every other Table 3 app stays in the 0.12–0.17 band per window —
#: never trip it.
CACHE_BYPASS_THRESHOLD = 0.11
CACHE_BYPASS_WINDOW = 1024


def _int_const(exprs: tuple):
    """The integer constant an expression tuple denotes, if any."""
    if len(exprs) == 1 and isinstance(exprs[0], ast.Value):
        value = exprs[0].value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


def _split_test(pair) -> XTest:
    """Build the equality test for an undecided expression pair."""
    r1, r2 = pair
    if isinstance(r1, ast.Field) and isinstance(r2, ast.Field):
        return FieldFieldTest(r1.name, r2.name)
    if isinstance(r1, ast.Field):
        return FieldValueTest(r1.name, r2.value)
    return FieldValueTest(r2.name, r1.value)


class Composer:
    """Composition engine bound to one test order and one node factory.

    Beyond the structural recursion of Figures 7–8, the engine keeps an
    *apply-cache* (in BDD terminology): results of ``union``, ``sequence``,
    ``negate``, ``restrict``, and the Algorithm 1 action-sequence helper are
    memoized keyed on ``(op, id(operands), ctx.cache_key())``.  Keying on
    ``id()`` is sound because operands are hash-consed by ``self.factory``,
    whose intern table pins them alive for the composer's lifetime, and
    equal context keys decide every implication question identically.
    Without this cache, structurally identical subproblems recur
    exponentially often in deep compositions.

    Pass ``use_cache=False`` for a reference engine that recomputes
    everything; the property tests assert both produce the *same interned
    nodes* when sharing a factory.  A cached composer also watches its own
    hit rate and opts out mid-session when the workload's subproblems
    demonstrably never recur (see :data:`CACHE_BYPASS_THRESHOLD`);
    ``cache_stats()["cache_bypassed"]`` records that it did.
    """

    def __init__(
        self,
        order: TestOrder,
        factory: DiagramFactory | None = None,
        use_cache: bool = True,
        key_mode: str = "id",
    ):
        if key_mode not in ("id", "structural"):
            raise ValueError(f"key_mode must be 'id' or 'structural', got {key_mode!r}")
        self.order = order
        self.factory = factory if factory is not None else default_factory()
        self.factory.register_composer(self)
        self.use_cache = use_cache
        self.cache_bypassed = False
        self._cache: dict = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._hits_at_checkpoint = 0
        # Apply-cache operand key: ``id`` (the production key — interning
        # makes it injective per factory and it costs one C call) or
        # ``structural`` (the fingerprint key measured by the cache-key
        # study; identity-insensitive, so equal diagrams from merged
        # sessions would share entries).
        self.key_mode = key_mode
        self._node_key = id if key_mode == "id" else structural_key
        # Composer-scoped root: contexts memoize their children (see
        # Context.add), so rooting each composition session in a private
        # empty context keeps that memo tree from outliving the composer.
        self.root_context = Context()

    # -- apply-cache -------------------------------------------------------

    def cache_stats(self) -> dict:
        """Hit/size counters, merged with the factory's intern counters."""
        total = self.cache_hits + self.cache_misses
        stats = {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._cache),
            "cache_hit_rate": self.cache_hits / total if total else 0.0,
            "cache_bypassed": self.cache_bypassed,
            "cache_key_mode": self.key_mode,
        }
        stats.update(self.factory.stats())
        return stats

    def reset_bypass(self) -> None:
        """Re-arm a tripped bypass for a fresh compilation.

        A persistent (cross-generation) composer that bypassed on one
        workload should give the cache a fresh window on the next, since
        incremental recompilation is exactly the regime where earlier
        entries recur.  The populated cache and lifetime counters are
        kept; only the sticky off-switch and the window checkpoint reset.
        """
        if self.cache_bypassed:
            self.cache_bypassed = False
            self.use_cache = True
            self._hits_at_checkpoint = self.cache_hits

    def _cache_lookup(self, key):
        """One cached-operation probe: count it, maybe trip the bypass.

        Returns the cached result or ``None``; the caller stores a fresh
        result under ``key`` on a miss.  Every probe advances exactly one
        counter, so the window boundary check visits each checkpoint
        exactly once; after a bypass the cached entry points stop calling
        this, freezing the counters at their trip-time values.
        """
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        total = self.cache_hits + self.cache_misses
        if total & (CACHE_BYPASS_WINDOW - 1) == 0:
            window_hits = self.cache_hits - self._hits_at_checkpoint
            self._hits_at_checkpoint = self.cache_hits
            if window_hits < CACHE_BYPASS_WINDOW * CACHE_BYPASS_THRESHOLD:
                self.use_cache = False
                self.cache_bypassed = True
        return hit

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- refine (Figure 8) -------------------------------------------------

    def refine(self, d: XFDD, ctx: Context) -> XFDD:
        while isinstance(d, Branch):
            verdict = ctx.implies(d.test)
            if verdict is True:
                d = d.hi
            elif verdict is False:
                d = d.lo
            else:
                break
        return d

    # -- ⊕ union -----------------------------------------------------------

    def union(self, d1: XFDD, d2: XFDD, ctx: Context | None = None) -> XFDD:
        if ctx is None:
            ctx = self.root_context
        if not self.use_cache:
            return self._union(d1, d2, ctx)
        key = ("u", self._node_key(d1), self._node_key(d2), ctx.cache_key())
        hit = self._cache_lookup(key)
        if hit is not None:
            return hit
        result = self._union(d1, d2, ctx)
        self._cache[key] = result
        return result

    def _union(self, d1: XFDD, d2: XFDD, ctx: Context) -> XFDD:
        d1 = self.refine(d1, ctx)
        d2 = self.refine(d2, ctx)
        if d1 is d2:
            return d1
        if isinstance(d1, Leaf) and isinstance(d2, Leaf):
            return self.factory.leaf(d1.seqs | d2.seqs)
        if isinstance(d1, Leaf):
            d1, d2 = d2, d1
        if isinstance(d2, Leaf):
            self._check_read_write_race(d1, d2)
            test = d1.test
            hi = self.union(d1.hi, d2, ctx.add(test, True))
            lo = self.union(d1.lo, d2, ctx.add(test, False))
            return self.factory.branch(test, hi, lo)
        key1 = self.order.key(d1.test)
        key2 = self.order.key(d2.test)
        if key1 == key2:
            test = d1.test
            hi = self.union(d1.hi, d2.hi, ctx.add(test, True))
            lo = self.union(d1.lo, d2.lo, ctx.add(test, False))
            return self.factory.branch(test, hi, lo)
        if key2 < key1:
            d1, d2 = d2, d1
        test = d1.test
        hi = self.union(d1.hi, d2, ctx.add(test, True))
        lo = self.union(d1.lo, d2, ctx.add(test, False))
        return self.factory.branch(test, hi, lo)

    def _check_read_write_race(self, branch: Branch, leaf: Leaf) -> None:
        conflict = leaf.written_state_vars() & branch.tested_state_vars()
        if conflict:
            raise RaceConditionError(
                "parallel composition reads and writes state variable(s) "
                f"{sorted(conflict)}: write {leaf!r} races with a state test"
            )

    # -- ⊖ negation ----------------------------------------------------------

    def negate(self, d: XFDD) -> XFDD:
        if not self.use_cache:
            return self._negate(d)
        key = ("n", self._node_key(d))
        hit = self._cache_lookup(key)
        if hit is not None:
            return hit
        result = self._negate(d)
        self._cache[key] = result
        return result

    def _negate(self, d: XFDD) -> XFDD:
        if isinstance(d, Leaf):
            if d is DROP:
                return IDENTITY
            if d is IDENTITY:
                return DROP
            raise CompileError(
                f"negation applies only to predicates, found actions {d!r}"
            )
        return self.factory.branch(d.test, self.negate(d.hi), self.negate(d.lo))

    # -- restriction (Figure 7, d|t and d|~t) ---------------------------------

    def restrict(self, d: XFDD, test: XTest, positive: bool) -> XFDD:
        if not self.use_cache:
            return self._restrict(d, test, positive)
        key = ("r", self._node_key(d), test, positive)
        hit = self._cache_lookup(key)
        if hit is not None:
            return hit
        result = self._restrict(d, test, positive)
        self._cache[key] = result
        return result

    def _restrict(self, d: XFDD, test: XTest, positive: bool) -> XFDD:
        branch = self.factory.branch
        if isinstance(d, Leaf):
            if d is DROP:
                return DROP
            return branch(test, d, DROP) if positive else branch(test, DROP, d)
        if d.test == test:
            if positive:
                return branch(test, d.hi, DROP)
            return branch(test, DROP, d.lo)
        if self.order.key(test) < self.order.key(d.test):
            return branch(test, d, DROP) if positive else branch(test, DROP, d)
        return branch(
            d.test,
            self.restrict(d.hi, test, positive),
            self.restrict(d.lo, test, positive),
        )

    # -- ⊙ sequencing ----------------------------------------------------------

    def sequence(self, d1: XFDD, d2: XFDD, ctx: Context | None = None) -> XFDD:
        if ctx is None:
            ctx = self.root_context
        if not self.use_cache:
            return self._sequence(d1, d2, ctx)
        key = ("s", self._node_key(d1), self._node_key(d2), ctx.cache_key())
        hit = self._cache_lookup(key)
        if hit is not None:
            return hit
        result = self._sequence(d1, d2, ctx)
        self._cache[key] = result
        return result

    def _sequence(self, d1: XFDD, d2: XFDD, ctx: Context) -> XFDD:
        d1 = self.refine(d1, ctx)
        if isinstance(d1, Leaf):
            return self._seq_leaf(d1, d2, ctx)
        test = d1.test
        hi = self.sequence(d1.hi, d2, ctx.add(test, True))
        lo = self.sequence(d1.lo, d2, ctx.add(test, False))
        return self.union(
            self.restrict(hi, test, True),
            self.restrict(lo, test, False),
            ctx,
        )

    def _seq_leaf(self, leaf: Leaf, d: XFDD, ctx: Context) -> XFDD:
        """``{as1..asn} ⊙ d = (as1 ⊙ d) ⊕ ... ⊕ (asn ⊙ d)``."""
        result = DROP
        for seq in leaf.seqs:
            result = self.union(result, self._seq_actions(seq, d, ctx), ctx)
        return result

    def _seq_actions(self, seq: tuple, d: XFDD, ctx: Context) -> XFDD:
        if not self.use_cache:
            return self._seq_actions_impl(seq, d, ctx)
        key = ("a", seq, self._node_key(d), ctx.cache_key())
        hit = self._cache_lookup(key)
        if hit is not None:
            return hit
        result = self._seq_actions_impl(seq, d, ctx)
        self._cache[key] = result
        return result

    def _seq_actions_impl(self, seq: tuple, d: XFDD, ctx: Context) -> XFDD:
        """Algorithm 1 (Appendix E): compose an action sequence with ``d``."""
        if seq and isinstance(seq[-1], DropAction):
            # The left sequence already dropped the packet; d never runs.
            return self.factory.leaf({seq})
        if isinstance(d, Leaf):
            return self.factory.leaf({seq + rest for rest in d.seqs})
        fmap = field_map(seq)
        post = ctx.with_assignments(fmap)
        test = d.test
        if isinstance(test, FieldValueTest):
            return self._seq_fv(seq, d, ctx, post, test)
        if isinstance(test, FieldFieldTest):
            return self._seq_ff(seq, d, ctx, post, test)
        return self._seq_state(seq, d, ctx, post, test)

    def _seq_fv(self, seq, d, ctx, post, test: FieldValueTest) -> XFDD:
        verdict = post.implies(test)
        if verdict is True:
            return self._seq_actions(seq, d.hi, ctx)
        if verdict is False:
            return self._seq_actions(seq, d.lo, ctx)
        # Undecided: the field cannot have been assigned (assignments are
        # literal, hence decidable), so the test reads the original packet.
        hi = self._seq_actions(seq, d.hi, ctx.add(test, True))
        lo = self._seq_actions(seq, d.lo, ctx.add(test, False))
        return self.factory.branch(test, hi, lo)

    def _seq_ff(self, seq, d, ctx, post, test: FieldFieldTest) -> XFDD:
        verdict = post.implies(test)
        if verdict is True:
            return self._seq_actions(seq, d.hi, ctx)
        if verdict is False:
            return self._seq_actions(seq, d.lo, ctx)
        r1 = post.resolve_expr(ast.Field(test.field1))
        r2 = post.resolve_expr(ast.Field(test.field2))
        emitted = _split_test((r1, r2)) if not (
            isinstance(r1, ast.Field)
            and isinstance(r2, ast.Field)
            and r1.name == test.field1
            and r2.name == test.field2
        ) else test
        hi = self._seq_actions(seq, d.hi, ctx.add(emitted, True))
        lo = self._seq_actions(seq, d.lo, ctx.add(emitted, False))
        return self.factory.branch(emitted, hi, lo)

    def _seq_state(self, seq, d, ctx, post, test: StateVarTest) -> XFDD:
        """State-test case of Algorithm 1, extended with increment folding.

        Scan the sequence's writes to ``test.var`` newest-first.  Matching
        increments accumulate into ``delta``; a matching assignment decides
        the test (written value + delta vs. tested value); an undecidable
        index or value comparison splits on the equality test and retries
        with the enriched context.
        """
        ops = state_ops_substituted(seq, test.var)
        # Basis discipline: the test's expressions describe the packet
        # *after* the sequence's field assignments — resolve them with
        # ``post`` (assigned fields become literals).  The ops' expressions
        # were already rewritten by ``state_ops_substituted`` to refer to
        # the packet at the *start* of the sequence — resolve them with
        # ``ctx``.  After resolution, any remaining field is unassigned, so
        # both sides live in the pre-sequence world and may be compared
        # (and split tests emitted) there.
        index = post.resolve_exprs(test.index)
        target = post.resolve_exprs(test.value)
        delta = 0
        for op in reversed(ops):
            op_index = ctx.resolve_exprs(op.index)
            verdict, detail = ctx.exprs_compare(op_index, index)
            if verdict is False:
                continue
            if verdict is None:
                return self._split(seq, d, ctx, _split_test(detail))
            if isinstance(op, StateDelta):
                delta += op.delta
                continue
            # A matching assignment: compare written value (+delta) to target.
            op_value = ctx.resolve_exprs(op.value)
            if delta == 0:
                verdict2, detail2 = ctx.exprs_compare(op_value, target)
                if verdict2 is True:
                    return self._seq_actions(seq, d.hi, ctx)
                if verdict2 is False:
                    return self._seq_actions(seq, d.lo, ctx)
                return self._split(seq, d, ctx, _split_test(detail2))
            written = _int_const(op_value)
            tested = _int_const(target)
            if written is None or tested is None:
                raise CompileError(
                    f"cannot compose increments of {test.var!r} with a "
                    "non-constant state test; make the compared values "
                    "integer literals"
                )
            if written + delta == tested:
                return self._seq_actions(seq, d.hi, ctx)
            return self._seq_actions(seq, d.lo, ctx)
        # No write decides the test: it reads the pre-sequence state, with
        # the tested value shifted by any accumulated increments.
        if delta != 0:
            tested = _int_const(target)
            if tested is None:
                raise CompileError(
                    f"cannot compose increments of {test.var!r} with a "
                    "non-constant state test; make the compared value an "
                    "integer literal"
                )
            target = (ast.Value(tested - delta),)
        emitted = StateVarTest(test.var, index, target)
        verdict = post.implies(emitted)
        if verdict is True:
            return self._seq_actions(seq, d.hi, ctx)
        if verdict is False:
            return self._seq_actions(seq, d.lo, ctx)
        hi = self._seq_actions(seq, d.hi, ctx.add(emitted, True))
        lo = self._seq_actions(seq, d.lo, ctx.add(emitted, False))
        return self.factory.branch(emitted, hi, lo)

    def _split(self, seq, d, ctx, test: XTest) -> XFDD:
        """The ``(test ? d : d)`` trick: split, then retry with more context."""
        hi = self._seq_actions(seq, d, ctx.add(test, True))
        lo = self._seq_actions(seq, d, ctx.add(test, False))
        return self.factory.branch(test, hi, lo)
