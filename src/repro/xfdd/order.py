"""The total order on xFDD tests (§4.2).

"We ensure that all field-value tests precede all field-field tests,
themselves preceding all state tests.  Field-value tests themselves are
ordered by fixing an arbitrary order on fields and values. ... For state
tests, we first define a total order on state variables by looking at the
dependency graph ... break the dependency graph into strongly connected
components (SCCs) and fix an arbitrary order on state variables within
each SCC" — with SCC edges respected.

The field order comes from the :class:`~repro.lang.fields.FieldRegistry`;
the state-variable order is supplied by the dependency analysis
(:func:`repro.analysis.dependency.state_order`).
"""

from __future__ import annotations

from repro.lang.errors import SnapError
from repro.lang.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.lang.values import value_sort_key
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest, XTest, exprs_key


class TestOrder:
    """Total order over tests: FV < FF < state; see module docstring."""

    def __init__(self, registry: FieldRegistry | None = None, state_rank: dict | None = None):
        self.registry = registry or DEFAULT_REGISTRY
        self.state_rank = dict(state_rank or {})
        self._key_memo: dict = {}

    def _field_rank(self, name: str) -> tuple:
        if name in self.registry:
            return (0, self.registry.rank(name))
        # Unregistered fields sort after registered ones, by name.
        return (1, name)

    def _state_var_rank(self, var: str) -> tuple:
        if var in self.state_rank:
            return (0, self.state_rank[var], var)
        return (1, 0, var)

    def key(self, test: XTest) -> tuple:
        """Memoized per test object: composition compares the same few
        interned tests millions of times in deep recursions."""
        memo = self._key_memo
        key = memo.get(test)
        if key is None:
            key = self._key(test)
            memo[test] = key
        return key

    def _key(self, test: XTest) -> tuple:
        if isinstance(test, FieldValueTest):
            return (0, self._field_rank(test.field), value_sort_key(test.value))
        if isinstance(test, FieldFieldTest):
            return (1, self._field_rank(test.field1), self._field_rank(test.field2))
        if isinstance(test, StateVarTest):
            return (
                2,
                self._state_var_rank(test.var),
                exprs_key(test.index),
                exprs_key(test.value),
            )
        raise SnapError(f"cannot order test {test!r}")

    def lt(self, t1: XTest, t2: XTest) -> bool:
        return self.key(t1) < self.key(t2)


def trivial_order() -> TestOrder:
    """An order with no state-dependency information (tests/microbenches)."""
    return TestOrder()
