"""Path context for xFDD composition (Figure 8 / Appendix E).

While composing diagrams, we walk paths accumulating the tests seen so far
("context" in Figure 8, "T" in Algorithm 1).  The context answers three
questions:

* ``implies(test)`` — does the path already decide this test?  (the
  ``inferred`` helper of Algorithm 1; used by ``refine`` in Figure 8)
* ``resolve(field)`` — is the field's exact value known?  (the ``value``
  helper)
* ``add(test, result)`` / ``with_assignments(fmap)`` — extend the context
  with a new test outcome, or re-base it past a block of field
  assignments (the ``update`` helper).

Contexts are immutable; ``add`` returns a new context.  They are small
(path depth), so the closure computations below are deliberately simple.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.values import matches, value_implies, values_disjoint
from repro.util.ipaddr import IPPrefix
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest, XTest


class _ContextKey:
    """A context's cache key with its hash computed exactly once.

    Apply-cache lookups hash the key on every probe; precomputing keeps a
    probe O(1) instead of re-hashing the full constraint tuple (which may
    contain IP prefixes, vectors, ...).
    """

    __slots__ = ("parts", "_hash")

    def __init__(self, parts: tuple):
        self.parts = parts
        self._hash = hash(parts)

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return self is other or (
            isinstance(other, _ContextKey) and self.parts == other.parts
        )

    def __repr__(self):
        return f"_ContextKey({self.parts!r})"


#: Per-context cap on memoized ``add``/``with_assignments`` children; above
#: this a context simply stops deduplicating (correctness is unaffected).
_CHILD_MEMO_LIMIT = 1024


class Context:
    __slots__ = (
        "exact", "pos", "neg", "eq_pairs", "neq_pairs", "state",
        "_key", "_implies_memo", "_children",
    )

    def __init__(
        self,
        exact=None,
        pos=None,
        neg=None,
        eq_pairs=frozenset(),
        neq_pairs=frozenset(),
        state=(),
    ):
        self.exact = dict(exact or {})
        self.pos = {k: tuple(v) for k, v in (pos or {}).items()}
        self.neg = {k: tuple(v) for k, v in (neg or {}).items()}
        self.eq_pairs = frozenset(eq_pairs)
        self.neq_pairs = frozenset(neq_pairs)
        self.state = tuple(state)
        self._key = None
        self._implies_memo: dict = {}
        self._children: dict = {}

    def cache_key(self) -> _ContextKey:
        """A stable, hashable key capturing the full logical content.

        Two contexts with equal keys decide every ``implies``/``resolve``
        question identically, so composition results may be shared between
        them — this is what the :class:`~repro.xfdd.compose.Composer`
        apply-caches key on.  Computed once per context (contexts are
        immutable).
        """
        key = self._key
        if key is None:
            key = _ContextKey((
                tuple(sorted(self.exact.items(), key=lambda kv: kv[0])),
                tuple(sorted(self.pos.items(), key=lambda kv: kv[0])),
                tuple(sorted(self.neg.items(), key=lambda kv: kv[0])),
                self.eq_pairs,
                self.neq_pairs,
                self.state,
            ))
            self._key = key
        return key

    # -- equality classes over fields --------------------------------------

    def _eq_class(self, field: str) -> frozenset:
        members = {field}
        changed = True
        while changed:
            changed = False
            for a, b in self.eq_pairs:
                if a in members and b not in members:
                    members.add(b)
                    changed = True
                elif b in members and a not in members:
                    members.add(a)
                    changed = True
        return frozenset(members)

    def resolve(self, field: str):
        """The exact value of ``field`` on this path, or None."""
        if field in self.exact:
            return self.exact[field]
        for member in self._eq_class(field):
            if member in self.exact:
                return self.exact[member]
        return None

    def resolve_expr(self, expr):
        """Substitute a scalar expression to a Value when resolvable."""
        if isinstance(expr, ast.Field):
            value = self.resolve(expr.name)
            if value is not None:
                return ast.Value(value)
        return expr

    def resolve_exprs(self, exprs: tuple) -> tuple:
        return tuple(self.resolve_expr(e) for e in exprs)

    # -- implication --------------------------------------------------------

    def _class_constraints(self, field: str):
        """Merged positive/negative constraints across the eq-class."""
        pos: list = []
        neg: list = []
        for member in self._eq_class(field):
            pos.extend(self.pos.get(member, ()))
            neg.extend(self.neg.get(member, ()))
        return pos, neg

    def _implies_fv(self, field: str, value):
        known = self.resolve(field)
        if known is not None:
            return matches(known, value)
        pos, neg = self._class_constraints(field)
        for constraint in pos:
            if value_implies(constraint, value):
                return True
            if values_disjoint(constraint, value):
                return False
        for excluded in neg:
            if value_implies(value, excluded):
                return False
        return None

    def _fields_unequal(self, f1: str, f2: str) -> bool:
        class1 = self._eq_class(f1)
        class2 = self._eq_class(f2)
        for a, b in self.neq_pairs:
            if (a in class1 and b in class2) or (a in class2 and b in class1):
                return True
        return False

    def _implies_ff(self, f1: str, f2: str):
        if f1 == f2 or f2 in self._eq_class(f1):
            return True
        if self._fields_unequal(f1, f2):
            return False
        v1 = self.resolve(f1)
        v2 = self.resolve(f2)
        if v1 is not None and v2 is not None:
            return v1 == v2
        if v1 is not None:
            return self._implies_fv(f2, v1)
        if v2 is not None:
            return self._implies_fv(f1, v2)
        pos1, _ = self._class_constraints(f1)
        pos2, _ = self._class_constraints(f2)
        for c1 in pos1:
            for c2 in pos2:
                if values_disjoint_constraints(c1, c2):
                    return False
        return None

    def exprs_compare(self, exprs1: tuple, exprs2: tuple):
        """Element-wise comparison of two flattened expression tuples.

        Returns ``(verdict, detail)`` where verdict is True (surely equal),
        False (surely unequal), or None (undecided); detail is the first
        undecided element pair (for generating a split test).
        """
        if len(exprs1) != len(exprs2):
            return False, None
        for e1, e2 in zip(exprs1, exprs2):
            r1 = self.resolve_expr(e1)
            r2 = self.resolve_expr(e2)
            if isinstance(r1, ast.Value) and isinstance(r2, ast.Value):
                if r1.value == r2.value:
                    continue
                return False, None
            if isinstance(r1, ast.Field) and isinstance(r2, ast.Field):
                verdict = self._implies_ff(r1.name, r2.name)
            elif isinstance(r1, ast.Field):
                verdict = self._implies_fv(r1.name, r2.value)
            else:
                verdict = self._implies_fv(r2.name, r1.value)
            if verdict is True:
                continue
            if verdict is False:
                return False, None
            return None, (r1, r2)
        return True, None

    def _implies_state(self, test: StateVarTest):
        for var, index, value, result in self.state:
            if var != test.var:
                continue
            idx_verdict, _ = self.exprs_compare(index, test.index)
            if idx_verdict is not True:
                continue
            val_verdict, _ = self.exprs_compare(value, test.value)
            if val_verdict is True:
                return result
            if val_verdict is False and result is True:
                # s[i] = v' holds and v' != v, so s[i] = v is false.
                return False
        return None

    def implies(self, test: XTest):
        """True/False when the path decides the test; None otherwise.

        Memoized per context: ``refine`` asks the same questions of the
        same (immutable) context many times while walking sibling subtrees.
        """
        memo = self._implies_memo
        if test in memo:
            return memo[test]
        if isinstance(test, FieldValueTest):
            verdict = self._implies_fv(test.field, test.value)
        elif isinstance(test, FieldFieldTest):
            verdict = self._implies_ff(test.field1, test.field2)
        elif isinstance(test, StateVarTest):
            verdict = self._implies_state(test)
        else:
            raise SnapError(f"cannot reason about test {test!r}")
        memo[test] = verdict
        return verdict

    # -- extension -----------------------------------------------------------

    def add(self, test: XTest, result: bool) -> "Context":
        """Extend the context with a test outcome.

        Children are memoized per parent: composition descends into the
        same ``(test, result)`` extension of the same context many times
        (sibling subtrees, repeated apply-cache probes), and returning the
        cached child also returns its warm ``implies`` memo and cache key.
        """
        memo_key = (test, result)
        child = self._children.get(memo_key)
        if child is not None:
            return child
        child = self._extend(test, result)
        if len(self._children) < _CHILD_MEMO_LIMIT:
            self._children[memo_key] = child
        return child

    def _extend(self, test: XTest, result: bool) -> "Context":
        exact = dict(self.exact)
        pos = {k: v for k, v in self.pos.items()}
        neg = {k: v for k, v in self.neg.items()}
        eq_pairs = self.eq_pairs
        neq_pairs = self.neq_pairs
        state = self.state
        if isinstance(test, FieldValueTest):
            value = test.value
            if result:
                if isinstance(value, IPPrefix) and not value.is_host:
                    pos[test.field] = pos.get(test.field, ()) + (value,)
                else:
                    if isinstance(value, IPPrefix):
                        value = value.network
                    exact[test.field] = value
            else:
                neg[test.field] = neg.get(test.field, ()) + (value,)
        elif isinstance(test, FieldFieldTest):
            pair = (test.field1, test.field2)
            if result:
                eq_pairs = eq_pairs | {pair}
            else:
                neq_pairs = neq_pairs | {pair}
        elif isinstance(test, StateVarTest):
            state = state + ((test.var, test.index, test.value, result),)
        else:
            raise SnapError(f"cannot extend context with {test!r}")
        return Context(exact, pos, neg, eq_pairs, neq_pairs, state)

    def with_assignments(self, fmap: dict) -> "Context":
        """The context as seen *after* applying field assignments ``fmap``.

        Constraints on assigned fields are replaced by their new exact
        values; equality pairs involving them are dropped; state records
        mentioning them are rewritten with the field's *old* value when it
        was known, otherwise dropped (their meaning changed).
        """
        if not fmap:
            return self
        memo_key = ("assign", tuple(sorted(fmap.items(), key=lambda kv: kv[0])))
        child = self._children.get(memo_key)
        if child is not None:
            return child
        child = self._with_assignments(fmap)
        if len(self._children) < _CHILD_MEMO_LIMIT:
            self._children[memo_key] = child
        return child

    def _with_assignments(self, fmap: dict) -> "Context":
        assigned = set(fmap)
        exact = {f: v for f, v in self.exact.items() if f not in assigned}
        exact.update(fmap)
        pos = {f: v for f, v in self.pos.items() if f not in assigned}
        neg = {f: v for f, v in self.neg.items() if f not in assigned}
        eq_pairs = frozenset(
            (a, b) for a, b in self.eq_pairs if a not in assigned and b not in assigned
        )
        neq_pairs = frozenset(
            (a, b) for a, b in self.neq_pairs if a not in assigned and b not in assigned
        )
        state = []
        for var, index, value, result in self.state:
            rebuilt = self._rebase_exprs(index, assigned)
            if rebuilt is None:
                continue
            rebuilt_value = self._rebase_exprs(value, assigned)
            if rebuilt_value is None:
                continue
            state.append((var, rebuilt, rebuilt_value, result))
        return Context(exact, pos, neg, eq_pairs, neq_pairs, tuple(state))

    def _rebase_exprs(self, exprs: tuple, assigned: set):
        out = []
        for expr in exprs:
            if isinstance(expr, ast.Field) and expr.name in assigned:
                old = self.resolve(expr.name)
                if old is None:
                    return None
                out.append(ast.Value(old))
            else:
                out.append(expr)
        return tuple(out)

    def __repr__(self):
        parts = []
        parts.extend(f"{f}={v}" for f, v in self.exact.items())
        for f, vs in self.pos.items():
            parts.extend(f"{f}∈{v}" for v in vs)
        for f, vs in self.neg.items():
            parts.extend(f"{f}≠{v}" for v in vs)
        parts.extend(f"{a}={b}" for a, b in self.eq_pairs)
        parts.extend(f"{a}≠{b}" for a, b in self.neq_pairs)
        parts.extend(
            f"{var}[{idx}]{'=' if res else '≠'}{val}"
            for var, idx, val, res in self.state
        )
        return "Context(" + ", ".join(parts) + ")"


def values_disjoint_constraints(c1, c2) -> bool:
    """Disjointness of two *positive* constraints (both may be prefixes)."""
    return values_disjoint(c1, c2)


EMPTY_CONTEXT = Context()
