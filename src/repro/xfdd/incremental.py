"""Persistent compile session — incremental delta compilation (ROADMAP).

One :class:`CompileSession` lives on the controller across ``update_policy``
generations and owns everything whose lifetime used to be one compilation:
the hash-consing :class:`~repro.xfdd.diagram.DiagramFactory`, the
:class:`~repro.xfdd.compose.Composer` apply-cache, a fingerprint-keyed memo
of sub-policy xFDDs, the node-id-keyed path-summary memo for the packet-
state mapping, a :class:`~repro.analysis.dependency.DependencySlicer`, and
a fingerprint-keyed effect-report memo.

The xFDD memo is the subtree-splice path: ``build(p)`` translates ``p``
like :func:`~repro.xfdd.build.to_xfdd` but memoizes every composite
subtree by its structural fingerprint, so a recompilation after a
single-app edit replays the unchanged arms as O(1) lookups and only
composes the dirty subtree (plus the spine above it).

Reuse validity.  A cached sub-diagram's internal branch ordering depends
on (i) the field registry's ranks and (ii) the absolute ``(rank, var)``
key of every state variable it tests (see
:class:`~repro.xfdd.order.TestOrder`).  Each memo entry therefore records
``tuple(sorted((var, rank)))`` over the subtree's state variables and is
only served while every one of those variables keeps its *exact* rank;
a registry change resets the whole session.  This is conservative —
inserting a new variable shifts ranks and invalidates bystander subtrees
— but it is sound, and rank-preserving edits (the common case: tweaking
one app of a composite) reuse everything else.

Session hygiene.  The factory is never ``clear()``-ed (old snapshots pin
old nodes); a reset allocates a *new* factory and drops every memo, which
is also the safety valve when the intern table outgrows
:data:`FACTORY_SIZE_CAP`.  A state-order change rebuilds the Composer
(fresh apply-cache) on the *same* factory — interning is order-blind, so
mixing generations of nodes stays sound.
"""

from __future__ import annotations

from repro.analysis.dependency import DependencySlicer
from repro.analysis.effects import analyze_effects
from repro.lang import ast
from repro.lang.ast import state_variables
from repro.lang.fields import FieldRegistry
from repro.lang.fingerprint import fingerprint
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DiagramFactory, XFDD
from repro.xfdd.order import TestOrder

#: Intern-table size above which ``begin_compile`` resets the session.
#: A 6-app composite interns a few thousand nodes per generation; the cap
#: only trips after hundreds of structurally novel generations, bounding
#: long-controller memory without ever firing in a steady-state workload.
FACTORY_SIZE_CAP = 400_000

#: Nodes worth memoizing — everything with policy children.  Leaves
#: translate in O(1) through the factory's intern table anyway.
_COMPOSITE = (ast.Not, ast.And, ast.Or, ast.Parallel, ast.Seq, ast.If, ast.Atomic)


class _MemoEntry:
    __slots__ = ("xfdd", "ranks", "born")

    def __init__(self, xfdd: XFDD, ranks: tuple, born: int):
        self.xfdd = xfdd
        self.ranks = ranks
        self.born = born


class CompileSession:
    """Cross-generation compilation caches (see module docstring)."""

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Drop every cache and start a fresh hash-consing session."""
        self.factory = DiagramFactory()
        self.composer: Composer | None = None
        self.dep_slicer = DependencySlicer()
        #: node-id keyed path summaries for packet_state_mapping; sound
        #: while self.factory pins the node ids, i.e. until the next reset.
        self.mapping_memo: dict = {}
        self._xfdd_memo: dict = {}
        self._effects_memo: dict = {}
        self._registry_names: tuple | None = None
        self._state_rank: dict = {}
        self._order_sig: tuple | None = None
        self.memo_hits = 0
        self.memo_misses = 0
        self.compile_no = 0

    # -- per-compilation setup --------------------------------------------

    def begin_compile(self, registry: FieldRegistry, state_rank: dict) -> Composer:
        """Bind this generation's test order; return the composer to use.

        Resets the whole session on a field-registry change or when the
        intern table exceeds :data:`FACTORY_SIZE_CAP`; rebuilds only the
        Composer (same factory, fresh apply-cache) when the global state
        order changed; otherwise re-arms a tripped cache bypass and keeps
        everything.
        """
        names = registry.names()
        if (self._registry_names is not None and names != self._registry_names) or (
            len(self.factory) > FACTORY_SIZE_CAP
        ):
            self.reset()
        self._registry_names = names
        self._state_rank = dict(state_rank)
        sig = tuple(sorted(self._state_rank.items()))
        if self.composer is None or sig != self._order_sig:
            order = TestOrder(registry, self._state_rank)
            self.composer = Composer(order, factory=self.factory)
        else:
            self.composer.reset_bypass()
        self._order_sig = sig
        self.compile_no += 1
        return self.composer

    # -- memoized translation ---------------------------------------------

    def build(self, policy: ast.Policy) -> XFDD:
        """``to_xfdd`` with fingerprint-memoized composite subtrees."""
        if self.composer is None:
            raise RuntimeError("begin_compile() must run before build()")
        return self._build(policy)

    def _build(self, policy: ast.Policy) -> XFDD:
        if not isinstance(policy, _COMPOSITE):
            return to_xfdd(policy, self.composer)
        key = fingerprint(policy)
        entry = self._xfdd_memo.get(key)
        if entry is not None and self._ranks_valid(entry.ranks):
            self.memo_hits += 1
            return entry.xfdd
        self.memo_misses += 1
        diagram = self._compose(policy)
        ranks = tuple(
            sorted((v, self._state_rank.get(v)) for v in state_variables(policy))
        )
        self._xfdd_memo[key] = _MemoEntry(diagram, ranks, self.compile_no)
        return diagram

    def _ranks_valid(self, ranks: tuple) -> bool:
        rank = self._state_rank
        return all(rank.get(var) == r for var, r in ranks)

    def _compose(self, policy: ast.Policy) -> XFDD:
        # Mirrors to_xfdd's composite cases, recursing through _build so
        # every composite child gets its own memo entry.
        composer = self.composer
        if isinstance(policy, ast.Not):
            return composer.negate(self._build(policy.pred))
        if isinstance(policy, (ast.Or, ast.Parallel)):
            return composer.union(
                self._build(policy.left), self._build(policy.right)
            )
        if isinstance(policy, (ast.And, ast.Seq)):
            return composer.sequence(
                self._build(policy.left), self._build(policy.right)
            )
        if isinstance(policy, ast.If):
            guard = self._build(policy.pred)
            then_d = composer.sequence(guard, self._build(policy.then))
            else_d = composer.sequence(
                composer.negate(guard), self._build(policy.orelse)
            )
            return composer.union(then_d, else_d)
        # Atomic: translation ignores the wrapper (Figure 6).
        return self._build(policy.body)

    # -- provenance --------------------------------------------------------

    def was_reused(self, policy: ast.Policy) -> bool:
        """True when ``policy``'s diagram was spliced from an earlier
        generation (entry born before this ``begin_compile``)."""
        if not isinstance(policy, _COMPOSITE):
            return False
        entry = self._xfdd_memo.get(fingerprint(policy))
        return entry is not None and entry.born < self.compile_no

    def subdiagram(self, policy: ast.Policy) -> XFDD:
        """The diagram recorded for ``policy``, without touching counters
        (for artifact recording after the main build)."""
        if isinstance(policy, _COMPOSITE):
            entry = self._xfdd_memo.get(fingerprint(policy))
            if entry is not None:
                return entry.xfdd
        return to_xfdd(policy, self.composer)

    def effect_report(self, policy: ast.Policy):
        """Fingerprint-memoized :func:`~repro.analysis.effects.analyze_effects`."""
        key = fingerprint(policy)
        report = self._effects_memo.get(key)
        if report is None:
            report = analyze_effects(policy)
            self._effects_memo[key] = report
        return report

    def stats(self) -> dict:
        return {
            "session_memo_hits": self.memo_hits,
            "session_memo_misses": self.memo_misses,
            "session_memo_entries": len(self._xfdd_memo),
            "session_compile_no": self.compile_no,
        }
