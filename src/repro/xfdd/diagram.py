"""The xFDD data structure (Figure 6)::

    d ::= (t ? d1 : d2) | {as1, ..., asn}

A leaf is a *set of action sequences*: the empty set is ``drop``, the set
containing the empty sequence is ``id``.  Nodes are immutable and
hash-consed, so structurally equal diagrams are the same object.

Leaves validate the paper's §4.2 race rule on construction: "raising a
compile error if the final xFDD contains a leaf with parallel updates to
the same state variable."
"""

from __future__ import annotations

import hashlib
import weakref

from repro.lang.errors import RaceConditionError, SnapError
from repro.lang import ast
from repro.lang.packet import Packet
from repro.lang.state import Store
from repro.lang.values import matches
from repro.xfdd.actions import (
    DROP_ACTION,
    DropAction,
    FieldAssign,
    StateAssign,
    StateDelta,
    seq_written_vars,
)
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest, XTest


class XFDD:
    """Base class; nodes are interned — compare with ``is`` or ``==``."""

    __slots__ = ("_tested_vars", "_written_vars", "_size", "_skey")

    def tested_state_vars(self) -> frozenset:
        raise NotImplementedError

    def written_state_vars(self) -> frozenset:
        raise NotImplementedError


class Leaf(XFDD):
    """A set of parallel action sequences."""

    __slots__ = ("seqs", "_ordered")

    def __init__(self, seqs: frozenset):
        object.__setattr__(self, "seqs", seqs)
        object.__setattr__(self, "_tested_vars", frozenset())
        written = frozenset()
        for seq in seqs:
            written |= seq_written_vars(seq)
        object.__setattr__(self, "_written_vars", written)
        object.__setattr__(self, "_size", 1)
        object.__setattr__(self, "_ordered", None)
        object.__setattr__(self, "_skey", None)

    def tested_state_vars(self):
        return self._tested_vars

    def written_state_vars(self):
        return self._written_vars

    def ordered_seqs(self) -> tuple:
        """The sequences in deterministic order, computed once per leaf."""
        ordered = self._ordered
        if ordered is None:
            ordered = tuple(sorted(self.seqs, key=repr))
            object.__setattr__(self, "_ordered", ordered)
        return ordered

    def __setattr__(self, *a):
        raise AttributeError("immutable")

    def __repr__(self):
        if not self.seqs:
            return "{drop}"
        parts = []
        for seq in sorted(self.seqs, key=repr):
            parts.append("id" if not seq else ";".join(repr(a) for a in seq))
        return "{" + ", ".join(parts) + "}"


class Branch(XFDD):
    """``(test ? hi : lo)``."""

    __slots__ = ("test", "hi", "lo")

    def __init__(self, test: XTest, hi: XFDD, lo: XFDD):
        object.__setattr__(self, "test", test)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "lo", lo)
        tested = hi.tested_state_vars() | lo.tested_state_vars()
        if isinstance(test, StateVarTest):
            tested |= frozenset((test.var,))
        object.__setattr__(self, "_tested_vars", tested)
        object.__setattr__(
            self, "_written_vars", hi.written_state_vars() | lo.written_state_vars()
        )
        object.__setattr__(self, "_size", 1 + hi._size + lo._size)
        object.__setattr__(self, "_skey", None)

    def tested_state_vars(self):
        return self._tested_vars

    def written_state_vars(self):
        return self._written_vars

    def __setattr__(self, *a):
        raise AttributeError("immutable")

    def __repr__(self):
        return f"({self.test!r} ? {self.hi!r} : {self.lo!r})"


def _common_prefix_len(a: tuple, b: tuple) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def _check_leaf_races(seqs: frozenset) -> None:
    """Reject leaves where two parallel sequences write one variable.

    Sequences in a leaf share the actions of the sequential part of the
    program as a literal common prefix (``p; (q1 + q2)`` flattens to
    ``{p·q1, p·q2}``).  Writes inside that common prefix happened *before*
    the parallel split and are not races; only writes past the common
    prefix belong to genuinely parallel branches, and two such writes to
    the same variable are the write/write conflict §3 leaves undefined.
    """
    ordered = sorted(seqs, key=repr)
    for i, seq_a in enumerate(ordered):
        for seq_b in ordered[i + 1 :]:
            prefix = _common_prefix_len(seq_a, seq_b)
            written_a = seq_written_vars(seq_a[prefix:])
            written_b = seq_written_vars(seq_b[prefix:])
            conflict = written_a & written_b
            if conflict:
                raise RaceConditionError(
                    f"parallel action sequences both write state "
                    f"variable(s) {sorted(conflict)}: {seq_a!r} and {seq_b!r}"
                )


def _normalize_seq(seq: tuple) -> tuple:
    """Truncate after a drop; a dropping sequence without state writes is
    just ``(drop,)`` (its field modifications die with the packet)."""
    out = []
    for action in seq:
        out.append(action)
        if isinstance(action, DropAction):
            break
    if out and isinstance(out[-1], DropAction) and not seq_written_vars(tuple(out)):
        return (DROP_ACTION,)
    return tuple(out)


class DiagramFactory:
    """Session-scoped hash-consing table for xFDD nodes.

    Nodes built by one factory are interned in its table, so structurally
    equal diagrams are the same object *within* that factory's session.
    Branch intern keys reference child nodes by ``id()``; this is sound
    because every interned node is pinned by the table itself (a Branch
    holds strong references to its children, and the table holds the
    Branch), so an id can never be recycled while the factory is alive.
    The flip side: ``clear()`` invalidates every diagram the factory has
    produced — do not mix nodes from before and after a ``clear()``, and
    do not mix nodes from two different factories (the global ``DROP`` /
    ``IDENTITY`` singletons, pre-seeded into every factory, are the one
    sanctioned exception).

    The compiler creates one factory per compilation, which bounds intern
    table growth to a single compilation's working set (the old module
    global grew unboundedly across compilations and could only have been
    cleared at the cost of the id-aliasing hazard above).
    """

    __slots__ = ("_intern", "leaf_hits", "leaf_misses", "branch_hits",
                 "branch_misses", "_composers", "__weakref__")

    def __init__(self):
        self._intern: dict = {}
        self.leaf_hits = 0
        self.leaf_misses = 0
        self.branch_hits = 0
        self.branch_misses = 0
        # Composers bound to this factory; their id()-keyed apply-caches
        # are only sound while the intern table pins the ids, so clear()
        # must invalidate them too.
        self._composers: weakref.WeakSet = weakref.WeakSet()
        self._seed()

    def _seed(self) -> None:
        # Share the canonical predicate leaves across factories so the
        # pervasive ``d is DROP`` / ``d is IDENTITY`` checks stay valid.
        if DROP is not None:
            self._intern[("leaf", DROP.seqs)] = DROP
            self._intern[("leaf", IDENTITY.seqs)] = IDENTITY

    def leaf(self, seqs) -> Leaf:
        """Interned leaf constructor with normalization and race validation.

        Normalization: ``(drop,)`` alone denotes the drop leaf; alongside
        other sequences it is redundant (a parallel branch that does
        nothing) and is removed.  The empty set is canonicalized to
        ``{(drop,)}``.
        """
        normalized = {_normalize_seq(tuple(seq)) for seq in seqs}
        if len(normalized) > 1:
            normalized.discard((DROP_ACTION,))
        if not normalized:
            normalized = {(DROP_ACTION,)}
        seqs = frozenset(normalized)
        key = ("leaf", seqs)
        node = self._intern.get(key)
        if node is None:
            self.leaf_misses += 1
            _check_leaf_races(seqs)
            node = Leaf(seqs)
            self._intern[key] = node
        else:
            self.leaf_hits += 1
        return node

    def branch(self, test: XTest, hi: XFDD, lo: XFDD) -> XFDD:
        """Interned branch constructor; collapses ``(t ? d : d)`` to ``d``."""
        if hi is lo:
            return hi
        key = ("branch", test, id(hi), id(lo))
        node = self._intern.get(key)
        if node is None:
            self.branch_misses += 1
            node = Branch(test, hi, lo)
            self._intern[key] = node
        else:
            self.branch_hits += 1
        return node

    def register_composer(self, composer) -> None:
        """Track a composer whose apply-cache keys on this factory's ids."""
        self._composers.add(composer)

    def clear(self) -> None:
        """Drop every interned node (keeps the DROP/IDENTITY singletons).

        Diagrams built before the clear must not be composed with diagrams
        built after it — see the class docstring.  Apply-caches of
        composers bound to this factory are invalidated along with the
        table: their id()-based keys could otherwise alias nodes built
        after the clear.
        """
        self._intern.clear()
        for composer in self._composers:
            composer.clear_cache()
        self._seed()

    def stats(self) -> dict:
        return {
            "intern_size": len(self._intern),
            "leaf_hits": self.leaf_hits,
            "leaf_misses": self.leaf_misses,
            "branch_hits": self.branch_hits,
            "branch_misses": self.branch_misses,
        }

    def __len__(self) -> int:
        return len(self._intern)


# Bootstrap: the default factory exists before DROP/IDENTITY, so _seed()
# skips them on this first construction; they are interned normally below.
DROP = None
IDENTITY = None
_DEFAULT_FACTORY = DiagramFactory()


def default_factory() -> DiagramFactory:
    """The module-wide factory behind :func:`make_leaf`/:func:`make_branch`.

    Tests and ad-hoc construction go through this shared table; the
    compiler scopes a fresh :class:`DiagramFactory` to each compilation.
    """
    return _DEFAULT_FACTORY


def make_leaf(seqs) -> Leaf:
    """Interned leaf constructor on the default factory."""
    return _DEFAULT_FACTORY.leaf(seqs)


def make_branch(test: XTest, hi: XFDD, lo: XFDD) -> XFDD:
    """Interned branch constructor on the default factory."""
    return _DEFAULT_FACTORY.branch(test, hi, lo)


DROP: Leaf = make_leaf([(DROP_ACTION,)])
IDENTITY: Leaf = make_leaf([()])


def structural_key(node: XFDD) -> bytes:
    """Identity-insensitive digest of a diagram's structure, cached.

    The measurement counterpart to the ``id()``-based apply-cache keys:
    two structurally equal diagrams — even interned by *different*
    factories — share this key.  Within one factory the map id → key is
    injective-by-construction (interning), so keying an apply-cache on it
    is sound wherever the id key is; the interesting question, answered
    by the cache-key study in ``benchmarks/bench_xfdd_cache.py``, is
    whether the extra equivalences it exposes buy any additional hits.
    """
    cached = node._skey
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    if isinstance(node, Leaf):
        h.update(b"L")
        for seq in node.ordered_seqs():
            h.update(repr(seq).encode())
            h.update(b";")
    else:
        h.update(b"B")
        h.update(repr(node.test).encode())
        h.update(structural_key(node.hi))
        h.update(structural_key(node.lo))
    digest = h.digest()
    object.__setattr__(node, "_skey", digest)
    return digest


def is_predicate_diagram(d: XFDD) -> bool:
    """True when every leaf is {id} or {drop} (required by ⊖)."""
    stack = [d]
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            if node is not DROP and node is not IDENTITY:
                return False
        else:
            stack.append(node.hi)
            stack.append(node.lo)
    return True


# ---------------------------------------------------------------------------
# Evaluation — the xFDD must agree with the Appendix A semantics.
# ---------------------------------------------------------------------------


def _eval_scalar(expr, packet: Packet):
    if isinstance(expr, ast.Field):
        return packet.get(expr.name)
    return expr.value


def eval_exprs(exprs: tuple, packet: Packet) -> tuple:
    return tuple(_eval_scalar(e, packet) for e in exprs)


def pack_value(values: tuple):
    """Scalar state values are stored unwrapped, vectors as tuples —
    matching :func:`repro.lang.semantics.eval_expr`."""
    return values[0] if len(values) == 1 else values


def eval_test(test: XTest, packet: Packet, store: Store) -> bool:
    if isinstance(test, FieldValueTest):
        return matches(packet.get(test.field), test.value)
    if isinstance(test, FieldFieldTest):
        return packet.get(test.field1) == packet.get(test.field2)
    if isinstance(test, StateVarTest):
        key = eval_exprs(test.index, packet)
        want = pack_value(eval_exprs(test.value, packet))
        return store.read(test.var, key) == want
    raise SnapError(f"unknown test {test!r}")


def apply_action(action, packet: Packet, store: Store):
    """Apply one action; returns the (possibly new) packet or None on drop."""
    if isinstance(action, DropAction):
        return None
    if isinstance(action, FieldAssign):
        return packet.modify(action.field, action.value)
    if isinstance(action, StateAssign):
        key = eval_exprs(action.index, packet)
        store.write(action.var, key, pack_value(eval_exprs(action.value, packet)))
        return packet
    if isinstance(action, StateDelta):
        key = eval_exprs(action.index, packet)
        store.variable(action.var).increment(key, action.delta)
        return packet
    raise SnapError(f"unknown action {action!r}")


def apply_leaf(leaf: Leaf, packet: Packet, store: Store) -> list:
    """Execute a leaf's action-sequence set, mutating ``store``.

    The sequences of a leaf share the actions of the program's sequential
    part as common prefixes (``p; (q1 + q2)`` flattens to ``{p·q1, p·q2}``),
    so the set is executed as a *trie*: a shared prefix runs exactly once,
    and copies fork only where the sequences diverge.  Returns the emitted
    packets.
    """
    outputs: list = []

    def run(suffixes: list, pkt: Packet) -> None:
        remaining = []
        emitted = False
        for suffix in suffixes:
            if suffix:
                remaining.append(suffix)
            elif not emitted:
                outputs.append(pkt)
                emitted = True
        groups: dict = {}
        for suffix in remaining:
            groups.setdefault(suffix[0], []).append(suffix[1:])
        for action in sorted(groups, key=repr):
            next_pkt = apply_action(action, pkt, store)
            if next_pkt is not None:
                run(groups[action], next_pkt)

    run(leaf.ordered_seqs(), packet)
    return outputs


def apply_sequence(seq: tuple, packet: Packet, store: Store):
    """Run one action sequence, mutating ``store``.

    Returns the output packet, or None when the sequence drops it (state
    writes made before the drop persist).
    """
    for action in seq:
        packet = apply_action(action, packet, store)
        if packet is None:
            return None
    return packet


def evaluate(d: XFDD, packet: Packet, store: Store):
    """Evaluate the diagram on one packet.

    Returns ``(new_store, frozenset_of_packets)``.  The input store is not
    mutated.
    """
    node = d
    while isinstance(node, Branch):
        node = node.hi if eval_test(node.test, packet, store) else node.lo
    out_store = store.copy()
    outputs = apply_leaf(node, packet, out_store)
    return out_store, frozenset(outputs)


def iter_leaves(d: XFDD):
    """Yield every distinct leaf in the diagram."""
    seen = set()
    stack = [d]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Leaf):
            yield node
        else:
            stack.append(node.hi)
            stack.append(node.lo)


def iter_paths(d: XFDD):
    """Yield ``(path, leaf)`` pairs, where path is a tuple of
    ``(test, bool)`` decisions from the root."""
    stack = [((), d)]
    while stack:
        path, node = stack.pop()
        if isinstance(node, Leaf):
            yield path, node
        else:
            stack.append((path + ((node.test, True),), node.hi))
            stack.append((path + ((node.test, False),), node.lo))


def size(d: XFDD) -> int:
    """Number of nodes along all paths (tree size, not DAG size)."""
    return d._size
