"""Translating SNAP policies to xFDDs — ``to-xfdd`` of Figure 6::

    to-xfdd(a)                    = {a}
    to-xfdd(f = v)                = f = v ? {id} : {drop}
    to-xfdd(!x)                   = ⊖ to-xfdd(x)
    to-xfdd(s[e1] = e2)           = s[e1] = e2 ? {id} : {drop}
    to-xfdd(atomic(p))            = to-xfdd(p)
    to-xfdd(p + q)                = to-xfdd(p) ⊕ to-xfdd(q)
    to-xfdd(p ; q)                = to-xfdd(p) ⊙ to-xfdd(q)
    to-xfdd(if x then p else q)   = (to-xfdd(x) ⊙ to-xfdd(p))
                                    ⊕ (⊖ to-xfdd(x) ⊙ to-xfdd(q))

Conjunction and disjunction of predicates translate through ⊙ and ⊕.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.xfdd.actions import FieldAssign, StateAssign, StateDelta
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DROP, IDENTITY, XFDD
from repro.xfdd.order import TestOrder
from repro.xfdd.tests import FieldValueTest, StateVarTest


def to_xfdd(policy: ast.Policy, composer: Composer) -> XFDD:
    """Translate a policy using the given composition engine.

    Nodes are built through ``composer.factory``, so the whole translation
    lives in one hash-consing session.
    """
    factory = composer.factory
    if isinstance(policy, ast.Id):
        return IDENTITY
    if isinstance(policy, ast.Drop):
        return DROP
    if isinstance(policy, ast.Test):
        return factory.branch(
            FieldValueTest(policy.field, policy.value), IDENTITY, DROP
        )
    if isinstance(policy, ast.StateTest):
        test = StateVarTest(policy.var, policy.index, policy.value)
        return factory.branch(test, IDENTITY, DROP)
    if isinstance(policy, ast.Not):
        return composer.negate(to_xfdd(policy.pred, composer))
    if isinstance(policy, ast.And):
        return composer.sequence(
            to_xfdd(policy.left, composer), to_xfdd(policy.right, composer)
        )
    if isinstance(policy, ast.Or):
        return composer.union(
            to_xfdd(policy.left, composer), to_xfdd(policy.right, composer)
        )
    if isinstance(policy, ast.Mod):
        return factory.leaf([(FieldAssign(policy.field, policy.value),)])
    if isinstance(policy, ast.StateMod):
        return factory.leaf([(StateAssign(policy.var, policy.index, policy.value),)])
    if isinstance(policy, ast.StateIncr):
        return factory.leaf([(StateDelta(policy.var, policy.index, +1),)])
    if isinstance(policy, ast.StateDecr):
        return factory.leaf([(StateDelta(policy.var, policy.index, -1),)])
    if isinstance(policy, ast.Parallel):
        return composer.union(
            to_xfdd(policy.left, composer), to_xfdd(policy.right, composer)
        )
    if isinstance(policy, ast.Seq):
        return composer.sequence(
            to_xfdd(policy.left, composer), to_xfdd(policy.right, composer)
        )
    if isinstance(policy, ast.If):
        guard = to_xfdd(policy.pred, composer)
        then_d = composer.sequence(guard, to_xfdd(policy.then, composer))
        else_d = composer.sequence(
            composer.negate(guard), to_xfdd(policy.orelse, composer)
        )
        return composer.union(then_d, else_d)
    if isinstance(policy, ast.Atomic):
        return to_xfdd(policy.body, composer)
    raise SnapError(f"cannot translate {policy!r} to an xFDD")


def build_xfdd(
    policy: ast.Policy,
    registry: FieldRegistry | None = None,
    state_rank: dict | None = None,
) -> XFDD:
    """Convenience entry point: compute the test order and translate.

    When ``state_rank`` is omitted the dependency analysis supplies it
    (§4.2: the state-test order derives from the dependency graph).
    """
    if state_rank is None:
        from repro.analysis.dependency import analyze_dependencies

        state_rank = analyze_dependencies(policy).state_rank
    order = TestOrder(registry or DEFAULT_REGISTRY, state_rank)
    return to_xfdd(policy, Composer(order))
