"""The xFDD intermediate representation and its composition algebra."""

from repro.xfdd.actions import FieldAssign, StateAssign, StateDelta
from repro.xfdd.build import build_xfdd, to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.context import Context, EMPTY_CONTEXT
from repro.xfdd.diagram import (
    DROP,
    IDENTITY,
    Branch,
    DiagramFactory,
    Leaf,
    XFDD,
    default_factory,
    evaluate,
    iter_leaves,
    iter_paths,
    make_branch,
    make_leaf,
    size,
)
from repro.xfdd.order import TestOrder, trivial_order
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest

__all__ = [
    "FieldAssign", "StateAssign", "StateDelta",
    "build_xfdd", "to_xfdd", "Composer", "Context", "EMPTY_CONTEXT",
    "DROP", "IDENTITY", "Branch", "DiagramFactory", "Leaf", "XFDD",
    "default_factory",
    "evaluate", "iter_leaves", "iter_paths", "make_branch", "make_leaf",
    "size", "TestOrder", "trivial_order",
    "FieldFieldTest", "FieldValueTest", "StateVarTest",
]
