"""xFDD test nodes (Figure 6)::

    t ::= f = v | f1 = f2 | s[e1] = e2

Field-value tests come from the source program; field-field tests are
generated during sequential composition to answer index-equality questions
(§4.2); state tests guard reads of state variables.  Index and value
expressions are stored *flattened* — tuples of scalar ``ast.Field`` /
``ast.Value`` expressions — which makes the element-wise ``eequal``
comparison of Appendix E straightforward.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.values import value_sort_key


def flatten(expr) -> tuple:
    """Flatten an AST expression (or raw value) to a tuple of scalars."""
    expr = ast.as_expr(expr)
    parts = ast.flatten_expr(expr)
    for part in parts:
        if not isinstance(part, (ast.Field, ast.Value)):
            raise SnapError(f"cannot flatten expression component {part!r}")
    return parts


def expr_key(expr) -> tuple:
    """Deterministic sort key for a scalar expression."""
    if isinstance(expr, ast.Field):
        return (0, expr.name)
    return (1, value_sort_key(expr.value))


def exprs_key(exprs: tuple) -> tuple:
    return tuple(expr_key(e) for e in exprs)


class XTest:
    """Base class of xFDD tests."""

    __slots__ = ()


class FieldValueTest(XTest):
    """``f = v`` — the packet's field ``f`` matches value ``v``."""

    __slots__ = ("field", "value", "_hash")

    def __init__(self, field: str, value):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("FV", field, value)))

    def __eq__(self, other):
        return (
            isinstance(other, FieldValueTest)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"{self.field}={self.value}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")


class FieldFieldTest(XTest):
    """``f1 = f2`` — two packet fields hold equal values.

    Canonicalized so ``field1 <= field2`` lexicographically; the test is
    symmetric.
    """

    __slots__ = ("field1", "field2", "_hash")

    def __init__(self, field1: str, field2: str):
        if field1 == field2:
            raise SnapError("trivial field-field test; caller should fold it")
        if field2 < field1:
            field1, field2 = field2, field1
        object.__setattr__(self, "field1", field1)
        object.__setattr__(self, "field2", field2)
        object.__setattr__(self, "_hash", hash(("FF", field1, field2)))

    def __eq__(self, other):
        return (
            isinstance(other, FieldFieldTest)
            and other.field1 == self.field1
            and other.field2 == self.field2
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"{self.field1}={self.field2}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")


class StateVarTest(XTest):
    """``s[e1] = e2`` — state variable ``s`` at index ``e1`` equals ``e2``."""

    __slots__ = ("var", "index", "value", "_hash")

    def __init__(self, var: str, index, value):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "index", flatten(index))
        object.__setattr__(self, "value", flatten(value))
        object.__setattr__(self, "_hash", hash(("ST", var, self.index, self.value)))

    def __eq__(self, other):
        return (
            isinstance(other, StateVarTest)
            and other.var == self.var
            and other.index == self.index
            and other.value == self.value
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        idx = "][".join(str(e) for e in self.index)
        val = ",".join(str(e) for e in self.value)
        return f"{self.var}[{idx}]={val}"

    def __setattr__(self, *a):
        raise AttributeError("immutable")
