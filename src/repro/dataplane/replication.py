"""State-compute replication: per-lane state replicas, deterministic merge.

SNAP's §7.3 shard planner (:mod:`repro.dataplane.engine`) collapses
every ingress port that can touch an unshardable state variable into one
serialized *owner lane* — a policy with a single global counter gets no
parallelism at all.  State-Compute Replication (arXiv:2309.14647) lifts
that collapse for variables whose updates *merge*: replicate the state
computation on every lane — each lane runs against a private replica
seeded from the parent store and records a compact per-variable update
log — then converge the replicas by a deterministic per-kind merge:

``delta``
    INCREMENT variables (``x[k]++`` / ``--``, PR 7's effect lattice).
    The log holds each changed key's *integer delta sum*; the parent adds
    the deltas.  Integer addition is associative and commutative, so the
    merged table is byte-identical to a sequential run regardless of how
    the packets were split across lanes.
``insert``
    IDEMPOTENT_INSERT variables (every write stores the same literal).
    The log holds the changed keys with the (single possible) written
    value; the parent re-applies them.  Duplicate inserts from several
    lanes are idempotent by construction.
``watermark``
    MONOTONE variables (guard-chained high-/low-water marks).  The log
    holds each changed key's final value; the parent keeps the extreme
    in the variable's proven direction.  Every log is stamped with the
    parent's *merge epoch* (one per engine run) and the parent refuses a
    log from a different epoch — a requeued or duplicated lane from an
    earlier run can never drag a watermark backwards.  Unlike the two
    commutative kinds, monotone variables are *tested* by the very guard
    that proves them monotone, so per-lane execution can take different
    branches than a sequential run would: the merged store converges
    deterministically to the same supremum, but per-packet records may
    differ.  Replicating them is therefore **opt-in**
    (``plan_replicas(..., monotone=True)`` with an AST-level
    :class:`~repro.analysis.effects.EffectReport`); the engines'
    default planner replicates only the byte-identical kinds.

**The safety predicate.**  A variable is replicated only when all hold:

1. it actually causes a collapse (reachable from ≥ 2 ingress ports —
   single-port variables stay in their shard untouched, zero overhead);
2. its diagram-level effect kind (:func:`repro.analysis.effects
   .xfdd_effects`) is replica-mergeable;
3. it is never *state-tested* by the compiled diagram
   (``root.tested_state_vars()``) — an untested variable's contents can
   never influence forwarding, so per-packet delivery records and link
   counters are unchanged by construction;
4. (delta only) its declared default is an ``int`` (or absent), so the
   delta sums stay exact.

Everything else keeps today's behaviour: the variable stays collapse-
causing, its ports serialize on the owner lane, and the SNAP-W104
diagnostic keeps recommending this module.  For replicated variables the
W104 is *downgraded* to the info-level SNAP-I402 ("already applied").

This module is also the single home of the per-shard state-slice
plumbing that previously lived triplicated across
``Network.extract_shard_state`` / the process engine's footprint slices
/ the cluster engine's per-batch slices: :func:`extract_state`,
:func:`install_state` and :func:`merge_state` are the one
implementation, and ``Network``'s methods delegate here.

Engine wiring lives in :mod:`repro.dataplane.engine` (thread + process
lanes), :mod:`repro.cluster.engine` / :mod:`repro.cluster.worker` (wire
protocol v2 carries the replica spec out and the update log back), and
:mod:`repro.dataplane.vector` (the opt-in ``commute_fastpath`` draws its
commutable-variable set from the same eligibility predicate).  Gate it
per session with ``CompilerOptions(replicate_state=...)`` or per engine
with ``ShardedEngine(replicate_state=...)``; the environment variable
``SNAP_REPLICATE_STATE=0`` force-disables it for A/B benchmarking.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

from repro.lang.errors import DataPlaneError

#: Merge kinds (the wire/log vocabulary — stable strings, not enums, so
#: cluster daemons on older minor versions fail loudly, not subtly).
DELTA = "delta"
INSERT = "insert"
WATERMARK = "watermark"


# -- replica classification ---------------------------------------------------


@dataclass(frozen=True)
class ReplicaVar:
    """One replicated variable: its merge kind and (watermark) direction."""

    var: str
    kind: str  # DELTA | INSERT | WATERMARK
    direction: int = 1  # watermark only: +1 increasing, -1 decreasing

    def to_wire(self) -> tuple:
        return (self.kind, self.direction)

    @classmethod
    def from_wire(cls, var: str, payload: tuple) -> "ReplicaVar":
        kind, direction = payload
        return cls(var, kind, direction)


def replicable_delta_vars(root, state_defaults: dict) -> frozenset:
    """Delta-mergeable variables of a compiled diagram.

    The byte-identity predicate for the ``delta`` kind: INCREMENT effect,
    never state-tested, integer (or absent) default.  This is the set the
    vector tier's ``commute_fastpath`` promotes onto — one predicate, one
    answer, whichever engine asks.
    """
    from repro.analysis.effects import EffectKind, xfdd_effects

    if root is None:
        return frozenset()
    kinds = xfdd_effects(root)
    tested = set(root.tested_state_vars())
    out = set()
    for var, kind in kinds.items():
        if kind is not EffectKind.INCREMENT or var in tested:
            continue
        default = state_defaults.get(var)
        if default is None or (type(default) is int):
            out.add(var)
    return frozenset(out)


def _classify(root, state_defaults: dict, *, monotone: bool = False,
              report=None) -> dict:
    """``{var: ReplicaVar}`` for every variable the predicate admits."""
    from repro.analysis.effects import EffectKind, xfdd_effects

    if root is None:
        return {}
    kinds = xfdd_effects(root)
    tested = set(root.tested_state_vars())
    replicas: dict = {}
    for var in replicable_delta_vars(root, state_defaults):
        replicas[var] = ReplicaVar(var, DELTA)
    for var, kind in kinds.items():
        if kind is EffectKind.IDEMPOTENT_INSERT and var not in tested:
            replicas.setdefault(var, ReplicaVar(var, INSERT))
    if monotone and report is not None:
        for var, effect in getattr(report, "variables", {}).items():
            if var in replicas:
                continue
            if effect.kind is EffectKind.MONOTONE and effect.direction:
                # The diagram must agree the writes are literal stores
                # (the monotone guard makes xfdd_effects see const-ish
                # writes); GENERAL_RMW means the AST claim did not
                # survive compilation — do not trust it.
                if kinds.get(var) is not EffectKind.GENERAL_RMW:
                    replicas[var] = ReplicaVar(
                        var, WATERMARK, 1 if effect.direction > 0 else -1
                    )
    return replicas


# -- the replica plan ---------------------------------------------------------


class ReplicaPlan:
    """A shard plan with collapse-causing mergeable variables lifted out.

    ``base`` is the unmodified :class:`~repro.dataplane.engine.ShardPlan`
    (what §7.3 alone proves); ``plan`` is the *reduced* plan computed
    with the replicated variables erased from every ingress footprint —
    the lanes the engines actually run.  ``replicated`` maps each lifted
    variable to its :class:`ReplicaVar`; ``replica_reasons`` carries the
    SNAP-I402 downgrade of the base plan's SNAP-W104 for exactly those
    variables.  With replication disabled (or nothing eligible),
    ``plan is base`` and both maps are empty.
    """

    def __init__(self, base, plan, replicated: dict, replica_reasons: dict,
                 enabled: bool):
        self.base = base
        self.plan = plan
        self.replicated = dict(replicated)
        self.replica_reasons = dict(replica_reasons)
        self.enabled = enabled

    @property
    def recovered(self) -> int:
        """Lanes recovered: reduced parallelism minus the base's."""
        return self.plan.parallelism - self.base.parallelism

    def summary(self) -> dict:
        out = self.plan.summary()
        out["replicated_vars"] = sorted(self.replicated)
        out["replica_reasons"] = dict(self.replica_reasons)
        out["recovered_lanes"] = self.recovered
        return out

    def __repr__(self):
        return (
            f"ReplicaPlan({self.plan.parallelism} lanes, "
            f"replicated={sorted(self.replicated)}, "
            f"+{self.recovered} recovered)"
        )


def _downgrade_reason(reason: str, rvar: ReplicaVar) -> str:
    """SNAP-W104 collapse reason -> SNAP-I402 'already replicated' info."""
    body = reason.split(": ", 1)[1] if ": " in reason else reason
    head = body.split("; ", 1)[0]  # "...collapsing them into one lane"
    head = head.replace("collapsing them into one lane",
                        "replicated across those lanes")
    return (
        f"SNAP-I402: {head}; state-compute replication runs the ports in "
        f"parallel and merges per-lane {rvar.kind} logs deterministically"
    )


def plan_replicas(network, *, enabled: bool = True, monotone: bool = False,
                  report=None) -> ReplicaPlan:
    """Derive a :class:`ReplicaPlan` for ``network`` (uncached).

    Only variables that actually collapse ports (reachable from ≥ 2
    ingress ports in the base footprint) are lifted; single-port
    variables stay sharded with zero replication overhead.
    """
    from repro.dataplane.engine import (
        Shard,
        ShardPlan,
        collapse_reasons,
        group_ports_by_footprint,
        plan_for,
    )

    base = plan_for(network)
    root = network.index.root if network.index is not None else None
    if not enabled or root is None:
        return ReplicaPlan(base, base, {}, {}, enabled)

    candidates = _classify(root, network.state_defaults,
                           monotone=monotone, report=report)
    if not candidates:
        return ReplicaPlan(base, base, {}, {}, enabled)

    ports_of: dict = {}
    for port, variables in base.footprint.items():
        for var in variables:
            ports_of.setdefault(var, set()).add(port)
    replicated = {
        var: rvar for var, rvar in candidates.items()
        if len(ports_of.get(var, ())) >= 2
    }
    if not replicated:
        return ReplicaPlan(base, base, {}, {}, enabled)

    lifted = frozenset(replicated)
    footprint = {
        port: variables - lifted
        for port, variables in base.footprint.items()
    }
    ports = sorted(footprint)
    shards = [
        Shard(members, variables)
        for members, variables in group_ports_by_footprint(footprint, ports)
    ]
    reduced = ShardPlan(
        shards, footprint, collapse_reasons(footprint, shards, root)
    )
    replica_reasons = {
        var: _downgrade_reason(base.collapse_reasons.get(var, ""), rvar)
        for var, rvar in replicated.items()
    }
    return ReplicaPlan(base, reduced, replicated, replica_reasons, enabled)


# -- replica-plan caching (and the engine-level plan-reuse fix) ---------------
#
# ``plan_for`` caches on the network *object*, so every TE ``rewire`` —
# which builds a fresh Network sharing the same compiled programs —
# used to re-derive the whole plan from scratch.  Both plan caches below
# are additionally keyed on the network's ``_exec_program_key``: rewires
# share that token (same programs, same xFDD), so a rewired network's
# first run revalidates the cached plan against the root-identity/port
# fingerprint and reuses it.  (The network key changes per rewire, so
# the *program* key is the only token that survives; the fingerprint
# check keeps the reuse sound — a graft changes the root object and
# misses.)

_REPLICA_PLANS: dict = {}
_PLAN_CACHE_LIMIT = 16


def _resolve_enabled(network, override) -> bool:
    env = os.environ.get("SNAP_REPLICATE_STATE")
    if env is not None:
        return env not in ("0", "", "off", "false")
    if override is not None:
        return bool(override)
    return bool(getattr(network, "replicate_state", True))


def replica_plan_for(network, replicate_state=None) -> ReplicaPlan:
    """The network's (cached) replica plan.

    ``replicate_state=None`` defers to the network's ``replicate_state``
    attribute (set by the controller from ``CompilerOptions``); a
    boolean overrides it per engine.  Cached per network object *and*
    per program token, fingerprint-validated exactly like
    :func:`repro.dataplane.engine.plan_for`.
    """
    from repro.dataplane.engine import _plan_cache_key, _same_key

    enabled = _resolve_enabled(network, replicate_state)
    key = (_plan_cache_key(network), enabled)

    def _valid(entry):
        return (entry is not None and _same_key(entry[0][0], key[0])
                and entry[0][1] == enabled)

    cached = getattr(network, "_replica_plan", None)
    if _valid(cached):
        return cached[1]
    token = getattr(network, "_exec_program_key", None)
    entry = _REPLICA_PLANS.get((token, enabled))
    if _valid(entry):
        network._replica_plan = entry
        return entry[1]
    rplan = plan_replicas(network, enabled=enabled)
    entry = (key, rplan)
    network._replica_plan = entry
    if token is not None:
        _REPLICA_PLANS[(token, enabled)] = entry
        while len(_REPLICA_PLANS) > 2 * _PLAN_CACHE_LIMIT:
            _REPLICA_PLANS.pop(next(iter(_REPLICA_PLANS)))
    return rplan


# -- the shared state-slice layer ---------------------------------------------
#
# One implementation of the per-shard state transfer that the thread,
# process and cluster engines (and ``Network``'s compatibility methods)
# all flow through.  Format: ``{var: (default, {key: value})}`` — pure
# data, picklable.


def extract_state(network, variables) -> dict:
    """Snapshot the named variables from their owner switches."""
    state: dict = {}
    for var in sorted(variables):
        owner = network.placement.get(var)
        if owner is None:
            continue  # unplaced variables cannot hold data-plane state
        variable = network.switches[owner].store.variable(var)
        state[var] = (variable.default, variable.snapshot())
    return state


def install_state(network, state: dict) -> None:
    """Replace the named variables' contents with ``state``.

    Replaces (not merges): a cached worker or replica network may hold a
    previous batch's values.
    """
    for var, (default, table) in state.items():
        owner = network.placement.get(var)
        if owner is None:
            continue
        variable = network.switches[owner].store.variable(var)
        variable.default = default
        variable._table = dict(table)


def merge_state(network, state: dict) -> None:
    """Entry-wise merge of a disjoint shard slice back into ``network``.

    Sound only for *shard-disjoint* variables (no other lane wrote
    them); replicated variables travel through :func:`replica_log` /
    :func:`apply_replica_log` instead.
    """
    for var, (default, table) in state.items():
        owner = network.placement.get(var)
        if owner is None:
            continue
        variable = network.switches[owner].store.variable(var)
        variable.default = default
        for key, value in table.items():
            variable.set(key, value)


# -- update logs and the per-kind merge ---------------------------------------

_EPOCHS = itertools.count(1)


def next_epoch(network) -> int:
    """Mint the parent-side merge epoch for one engine run.

    Epochs are globally monotone (one shared counter), so a log produced
    for any earlier run of any network compares unequal — the staleness
    check in :func:`apply_replica_log` needs nothing finer.
    """
    epoch = next(_EPOCHS)
    network._replica_epoch = epoch
    return epoch


def wire_spec(lane_vars: dict, epoch: int) -> dict:
    """The picklable replica spec shipped to a process/cluster lane."""
    return {
        "epoch": epoch,
        "vars": {var: rvar.to_wire() for var, rvar in lane_vars.items()},
    }


def replicas_from_spec(spec: dict) -> dict:
    return {
        var: ReplicaVar.from_wire(var, payload)
        for var, payload in spec["vars"].items()
    }


def lane_replicas(rplan: ReplicaPlan, batch) -> dict:
    """The replicated variables one batch can actually touch.

    The replica analogue of ``batch_footprint``: the union of the
    batch's ingress ports' *base* footprints, intersected with the
    replicated set.  A lane whose batch cannot reach any replicated
    variable runs in place on the parent store, exactly as before.
    """
    ports = {port for _, _, port in batch}
    footprint = rplan.base.footprint
    touched: dict = {}
    for port in ports:
        for var in footprint.get(port, ()):
            rvar = rplan.replicated.get(var)
            if rvar is not None:
                touched[var] = rvar
    return touched


def _require_int(var: str, key, value):
    if type(value) is not int:  # bools and floats both break exactness
        raise DataPlaneError(
            f"replicated counter '{var}' holds non-integer value "
            f"{value!r} at key {key!r}; delta merge requires exact "
            f"integer arithmetic"
        )
    return value


def replica_log(lane_vars: dict, seed: dict, final: dict,
                epoch: int) -> dict:
    """Diff a lane's replica against its seed into a compact update log.

    ``seed`` and ``final`` are state slices (:func:`extract_state`
    format) covering at least ``lane_vars``.  Unchanged keys are skipped
    *before* any arithmetic, so pre-existing foreign values a lane never
    touched can never poison the diff.
    """
    logged: dict = {}
    for var, rvar in lane_vars.items():
        seed_default, seed_table = seed.get(var, (None, {}))
        final_default, final_table = final.get(var, (seed_default, {}))
        entries: dict = {}
        for key, value in final_table.items():
            before = seed_table.get(key, seed_default)
            if value == before and type(value) is type(before):
                continue
            if rvar.kind == DELTA:
                base = 0 if before is None else _require_int(var, key, before)
                entries[key] = _require_int(var, key, value) - base
            else:  # INSERT and WATERMARK both log the final value
                entries[key] = value
        if entries:
            logged[var] = entries
    return {"epoch": epoch, "vars": logged}


def log_entries(log: dict) -> int:
    return sum(len(entries) for entries in log["vars"].values())


def apply_replica_log(network, replicated: dict, log: dict,
                      epoch: int) -> None:
    """Merge one lane's update log into the parent store.

    Order-free across lanes for ``delta`` (integer sums commute) and
    ``insert`` (idempotent same-value stores); ``watermark`` keeps the
    extreme in the proven direction.  A log stamped with a different
    epoch than the current run's is refused — the reconciliation guard
    against requeued or duplicated lanes from an earlier run.
    """
    if log["epoch"] != epoch:
        raise DataPlaneError(
            f"stale replica log: epoch {log['epoch']} != current "
            f"merge epoch {epoch}"
        )
    for var, entries in log["vars"].items():
        rvar = replicated.get(var)
        if rvar is None:
            raise DataPlaneError(
                f"replica log names unplanned variable '{var}'"
            )
        owner = network.placement.get(var)
        if owner is None:
            continue
        variable = network.switches[owner].store.variable(var)
        if rvar.kind == DELTA:
            default = 0 if variable.default is None else variable.default
            table = variable._table
            for key, delta in entries.items():
                current = table.get(key, default)
                table[key] = _require_int(var, key, current) + delta
        elif rvar.kind == INSERT:
            for key, value in entries.items():
                variable.set(key, value)
        elif rvar.kind == WATERMARK:
            direction = rvar.direction
            table = variable._table
            for key, value in entries.items():
                if key not in table or (value - table[key]) * direction > 0:
                    table[key] = value
        else:  # pragma: no cover - planner never emits other kinds
            raise DataPlaneError(
                f"unknown replica merge kind {rvar.kind!r} for '{var}'"
            )


# -- thread-lane replica networks ---------------------------------------------
#
# The process and cluster engines get replica isolation for free (each
# worker already runs a rehydrated private network); thread lanes share
# the parent's compiled programs — and NetASM lowering binds
# StateVariable objects directly into opcode closures, so isolation
# needs a *per-slot worker network* revived from the lowered pure-data
# form, exactly like a process worker but in-process.  Revived programs
# are cached per (parent, slot): rebuilding them is the expensive part,
# and a TE rewire (new parent object, same programs) re-revives only on
# its first replicated run.


def replica_network(network, slot: int):
    """A private, lane-capable replica of ``network`` for thread lane
    ``slot``.  Cached on the parent and invalidated when the parent's
    program token or xFDD root changes (the same fingerprint the plan
    caches use)."""
    from repro.dataplane.netasm import revive_programs
    from repro.dataplane.network import (
        exec_network_spec,
        exec_program_spec,
        worker_network,
    )

    token = (
        getattr(network, "_exec_program_key", None),
        network.index.root if network.index is not None else None,
    )
    cache = getattr(network, "_replica_cache", None)
    if (cache is None or cache["token"][0] != token[0]
            or cache["token"][1] is not token[1]):
        cache = {"token": token, "spec": None, "nets": {}}
        network._replica_cache = cache
    net = cache["nets"].get(slot)
    if net is not None:
        return net
    spec = cache["spec"]
    if spec is None:
        spec = exec_network_spec(network)
        spec["programs"] = exec_program_spec(network)
        cache["spec"] = spec
    programs = revive_programs(spec["programs"])
    net = worker_network(
        spec, programs, (token[0], "replica", slot),
        getattr(network, "_exec_network_key", None),
    )
    cache["nets"][slot] = net
    return net


def replica_runner(network, rplan: ReplicaPlan, shard_index: int, batch,
                   lane_vars: dict, epoch: int, make_lane):
    """A zero-argument lane runner executing on a private replica.

    Seeds the slot's replica network with the batch's full state slice
    (shard-disjoint footprint plus replica seeds) from the parent,
    runs the lane there, and returns ``(records, links, state, log)`` —
    the disjoint slice to :func:`merge_state` and the replica update log
    to :func:`apply_replica_log`.  The caller must defer both merges
    until every lane has stopped: lanes seed from the parent snapshot,
    so merging mid-run would double-count.
    """
    from repro.dataplane.engine import batch_footprint

    plan = rplan.plan
    shard = plan.shards[shard_index]
    variables = batch_footprint(plan, batch)
    lane_net = replica_network(network, shard_index)

    def run():
        seed = extract_state(network, set(variables) | set(lane_vars))
        install_state(lane_net, seed)
        lane = make_lane(lane_net, shard, batch)
        records, links = lane.run()
        state = extract_state(lane_net, variables)
        log = replica_log(
            lane_vars, seed, extract_state(lane_net, lane_vars), epoch
        )
        return records, links, state, log

    return run
