"""Data plane: SNAP header, xFDD splitting, NetASM programs, simulator."""

from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
    add_header,
    strip_header,
)
from repro.dataplane.engine import (
    SequentialEngine,
    Shard,
    ShardedEngine,
    ShardPlan,
    get_engine,
    ingress_state_footprint,
    plan_shards,
)
from repro.dataplane.netasm import SwitchProgram, compile_switch
from repro.dataplane.network import DeliveryRecord, Network
from repro.dataplane.rules import RoutingRule, RuleTables, build_rule_tables
from repro.dataplane.split import NodeIndex, split_summary

__all__ = [
    "DONE_TAG", "ROOT_TAG", "SNAP_INPORT", "SNAP_NODE", "SNAP_OUTPORT",
    "add_header", "strip_header",
    "SwitchProgram", "compile_switch",
    "DeliveryRecord", "Network",
    "SequentialEngine", "ShardedEngine", "Shard", "ShardPlan",
    "get_engine", "ingress_state_footprint", "plan_shards",
    "RoutingRule", "RuleTables", "build_rule_tables",
    "NodeIndex", "split_summary",
]
