"""Splitting the global xFDD into per-switch entry points (§4.5 phase 1).

Every xFDD node gets a stable integer id.  A packet's ``snap.node`` names
where processing should resume:

* a *branch id* — the packet paused before a state test whose variable
  lives elsewhere; the owner switch resumes at that branch;
* a *continuation id* ``(leaf, seq_index, action_index)`` — the packet
  paused inside a leaf action sequence before a remote state action.

"Splitting the xFDD is straightforward given placement information:
stateless tests and actions can happen anywhere, but reads and writes of
state variables must happen on switches storing them."
"""

from __future__ import annotations

from repro.lang.errors import DataPlaneError
from repro.xfdd.diagram import Branch, Leaf, XFDD
from repro.xfdd.tests import StateVarTest
from repro.dataplane.header import ROOT_TAG


def _ordered_seqs(leaf: Leaf):
    """Deterministic ordering of a leaf's parallel action sequences.

    Delegates to the leaf's own cached ordering — the splitter, the NetASM
    compiler, and the evaluator all ask for it repeatedly per leaf.
    """
    return leaf.ordered_seqs()


def leaf_groups(leaf: Leaf):
    """Enumerate the leaf's execution trie.

    A leaf's sequences share common prefixes (the program's sequential
    part), so execution forms a trie: shared actions run once, copies fork
    at divergence points.  Yields ``(members, depth)`` for every trie node
    where an action executes — ``members`` is the tuple of sequence indices
    (into ``_ordered_seqs``) sharing the action at ``depth``.
    """
    seqs = _ordered_seqs(leaf)

    def walk(members: tuple, depth: int):
        groups: dict = {}
        for index in members:
            seq = seqs[index]
            if len(seq) > depth:
                groups.setdefault(seq[depth], []).append(index)
        for action in sorted(groups, key=repr):
            subgroup = tuple(groups[action])
            yield subgroup, depth
            yield from walk(subgroup, depth + 1)

    yield from walk(tuple(range(len(seqs))), 0)


class NodeIndex:
    """Stable ids for branch nodes and leaf continuations of one xFDD."""

    def __init__(self, xfdd: XFDD):
        self.root = xfdd
        self._branch_id: dict[int, int] = {}
        self._cont_id: dict[tuple, int] = {}
        self._by_id: dict[int, tuple] = {}
        self._next = ROOT_TAG + 1  # ROOT_TAG is reserved for "fresh packet"
        self._assign(xfdd)

    def _fresh(self) -> int:
        tag = self._next
        self._next += 1
        return tag

    def _assign(self, node: XFDD) -> None:
        if isinstance(node, Branch):
            if id(node) in self._branch_id:
                return
            tag = self._fresh()
            self._branch_id[id(node)] = tag
            self._by_id[tag] = ("branch", node)
            self._assign(node.hi)
            self._assign(node.lo)
        else:
            for seq_idx, seq in enumerate(_ordered_seqs(node)):
                for act_idx in range(len(seq) + 1):
                    key = (id(node), seq_idx, act_idx)
                    if key not in self._cont_id:
                        tag = self._fresh()
                        self._cont_id[key] = tag
                        self._by_id[tag] = ("cont", node, seq_idx, act_idx)

    def branch_tag(self, node: Branch) -> int:
        return self._branch_id[id(node)]

    def cont_tag(self, leaf: Leaf, seq_idx: int, act_idx: int) -> int:
        return self._cont_id[(id(leaf), seq_idx, act_idx)]

    def lookup(self, tag: int):
        try:
            return self._by_id[tag]
        except KeyError:
            raise DataPlaneError(f"unknown xFDD node tag {tag}") from None

    def __len__(self):
        return len(self._by_id)


def state_owner(placement: dict, var: str) -> str:
    try:
        return placement[var]
    except KeyError:
        raise DataPlaneError(f"state variable {var!r} has no placement") from None


def split_summary(xfdd: XFDD, index: NodeIndex, placement: dict) -> dict:
    """For reporting: per switch, which branch/continuation tags it owns."""
    owners: dict[str, set] = {}
    stack = [xfdd]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Branch):
            if isinstance(node.test, StateVarTest):
                owner = state_owner(placement, node.test.var)
                owners.setdefault(owner, set()).add(index.branch_tag(node))
            stack.append(node.hi)
            stack.append(node.lo)
        else:
            seqs = _ordered_seqs(node)
            for members, depth in leaf_groups(node):
                action = seqs[members[0]][depth]
                var = action.writes_state()
                if var is not None:
                    owner = state_owner(placement, var)
                    owners.setdefault(owner, set()).add(
                        index.cont_tag(node, min(members), depth)
                    )
    return owners
