"""The SNAP header (§4.5).

"We assume each packet is augmented with a SNAP-header upon entering the
network, which contains its original OBS inport and future outport, and
the id of the last processed xFDD node ... stripped off by the egress
switch when the packet exits the network."

We realize the header as three packet fields.  ``DONE`` marks a packet
whose xFDD processing finished (it only needs forwarding to its egress).
"""

from __future__ import annotations

from repro.lang.packet import Packet

SNAP_INPORT = "snap.inport"
SNAP_OUTPORT = "snap.outport"
SNAP_NODE = "snap.node"

#: snap.node value for the diagram root (fresh packets).
ROOT_TAG = 0
#: snap.node value once processing is complete.
DONE_TAG = -1


def add_header(packet: Packet, inport: int) -> Packet:
    """Tag a fresh packet at its ingress."""
    return packet.modify_many(
        {
            "inport": inport,
            SNAP_INPORT: inport,
            SNAP_NODE: ROOT_TAG,
        }
    )


def strip_header(packet: Packet) -> Packet:
    """Remove the SNAP header at the egress."""
    return packet.without(SNAP_INPORT, SNAP_OUTPORT, SNAP_NODE)
