"""Vectorized batch execution tier (``engine="vector"`` / ``"vector-jit"``).

Every existing engine parallelizes the same per-packet interpreter loop
(:meth:`repro.dataplane.netasm.SwitchProgram.process`); this module lowers
a :class:`SwitchProgram` one level further, to *columnar* execution in the
style of Open Packet Processor's mechanically-vectorizable stateful
match/action stages and DPDK's run-to-completion batching: a whole
batch's header fields are packed into NumPy column arrays and each opcode
executes once over the batch instead of once per packet.

How each opcode vectorizes:

* ``BRANCH``   — boolean mask partition of the active row set.  Field
  tests evaluate per *distinct* column value through the exact scalar
  predicate (so IP-prefix edge cases stay bit-identical) and broadcast
  via a code-indexed lookup table.
* ``SET``      — the field's column becomes a constant-code array
  (``np.where`` degenerates to ``np.full`` because the assigned value is
  a literal).
* ``STDELTA``  — increments are *deferred events*; all-integer deltas are
  grouped per state key and scattered in one pass (the ``np.add.at``
  shape), anything else replays per-event in exact sequential order.
* ``FORK``     — row duplication; every copy carries an *order key* (the
  fork-target path) so records surface in the interpreter's DFS order.
* ``DROP`` / ``EMIT`` — mask retirement into delivery records.

``PAUSE``, ``STWRITE``, and branches on state (``StateVarTest``) do not
vectorize: rows whose resolved entry can reach one fall back to the
scalar :class:`repro.dataplane.engine._Lane`, and if the fallback rows'
state footprint overlaps the vectorized rows' the whole batch runs
scalar (deferred deltas may not be reordered around scalar state
reads).  One exception, opt-in via ``VectorEngine(commute_fastpath=
True)`` or ``SNAP_VECTOR_COMMUTE=1``: when the static effect analysis
(:mod:`repro.analysis.effects`) proves every overlapping variable is
written only by ``++``/``--`` and never state-tested anywhere in the
diagram (and holds integers), the deltas commute with anything the
scalar rows do, so the vector groups stay vectorized.  Either way the
engine is byte-identical to
:class:`~repro.dataplane.engine.SequentialEngine` — same records, same
link counters, same state stores — which the cross-engine property
tests assert.

The ``vector-jit`` tier additionally *generates one specialized Python
function per (program, entry)* — the columnar pipeline unrolled to
straight-line source, ``exec``-ed once and cached by the network's
``_exec_program_key`` token (the same token that versions programs for
the cluster wire), so a TE ``rewire`` keeps every warm kernel and
re-``exec``s nothing.

Failure contract: like every lane, a failing vector lane loses its own
records while completed lanes still merge.  One documented deviation:
state deltas of vectorized rows are applied before the scalar-fallback
rows run, so when a *fallback* row fails, deltas of vectorized rows
arriving after it may already be applied (the two row sets' footprints
are provably disjoint, so no value is ever wrong — only the failure
cut-point differs from a strictly sequential run).

NumPy is an optional dependency: importing this module without it leaves
:data:`np` as ``None``, :func:`make_vector_lane` degrades to the scalar
lane, and constructing an engine raises a clear error.
"""

from __future__ import annotations

import os
import threading

try:  # optional dependency — see module docstring
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.dataplane.engine import Shard, ShardedEngine, _Lane
from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
)
from repro.dataplane.netasm import (
    IBranch,
    IDrop,
    IEmit,
    IFork,
    IJump,
    IPause,
    ISet,
    IStateDelta,
    IStateWrite,
    SwitchProgram,
)
from repro.lang import ast
from repro.lang.errors import DataPlaneError
from repro.lang.packet import Packet
from repro.lang.values import matches
from repro.obs import postcards
from repro.obs.metrics import counter
from repro.obs.tracing import TRACER
from repro.util.ipaddr import IPPrefix
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest

from repro.dataplane.network import MAX_HOPS, DeliveryRecord

#: Why vector lanes demoted work to the scalar interpreter.  Labeled by
#: cause so a parallelism flatline is explainable from a metrics scrape
#: alone (the per-run ``collapse_reasons`` only cover shard planning).
_VECTOR_FALLBACK = counter(
    "snap_vector_fallback_total",
    "Vector-lane demotions to the scalar interpreter, by cause",
)


def _demote(cause: str, rows: int) -> None:
    _VECTOR_FALLBACK.labels(cause=cause).inc()
    TRACER.add_event("vector_fallback", cause=cause, rows=rows)

# -- kernel cache -------------------------------------------------------------
#
# Kernels are keyed by the network's execution-program token plus the
# (switch, entry) pair, exactly like the worker-side program caches: a TE
# rewire keeps the program token, so every kernel (and its interned value
# vocabulary and test LUTs) stays warm; a policy rebuild mints a new
# token and the old entries age out of the bounded table.

_KERNELS: dict = {}
_KERNEL_CACHE_LIMIT = 256

#: Counters for the benchmarks and the zero-re-exec-after-rewire test.
KERNEL_STATS = {"plans": 0, "compiles": 0, "kernel_calls": 0, "cache_hits": 0}


def kernel_cache_stats() -> dict:
    """A snapshot of the kernel cache counters (plus current size)."""
    stats = dict(KERNEL_STATS)
    stats["entries"] = len(_KERNELS)
    return stats


def reset_kernel_stats() -> None:
    for key in KERNEL_STATS:
        KERNEL_STATS[key] = 0


def clear_kernel_cache() -> None:
    _KERNELS.clear()


def _kernel_for(network, program: SwitchProgram, entry: int) -> "_Kernel":
    key = (network._exec_program_key, program.switch, entry)
    kernel = _KERNELS.get(key)
    if kernel is not None and kernel.program is program:
        KERNEL_STATS["cache_hits"] += 1
        return kernel
    kernel = _Kernel(program, entry)
    _KERNELS[key] = kernel
    while len(_KERNELS) > _KERNEL_CACHE_LIMIT:
        _KERNELS.pop(next(iter(_KERNELS)))
    return kernel


# -- scalar predicates (must agree exactly with netasm._compile_test) ---------


def _value_predicate(test: FieldValueTest):
    """``f(value) -> bool`` mirroring the lowered closure's semantics."""
    value = test.value
    if isinstance(value, IPPrefix):
        network, mask = value.network, value.mask

        def prefix_pred(v):
            if type(v) is int:  # exact: bool is not an address
                return (v & mask) == network
            return matches(v, value)

        return prefix_pred
    return lambda v: v == value


# -- the per-(program, entry) kernel ------------------------------------------


class _Kernel:
    """Static plan + persistent value vocabulary for one resolved entry.

    The *vocabulary* interns every distinct field value seen in any batch
    (keyed ``(type, value)`` so ``1``, ``1.0`` and ``True`` keep distinct
    codes; cross-type equality is resolved per distinct *pair* in
    field-field tests).  Test results are memoized per code in lookup
    arrays, so a test runs its scalar predicate once per distinct value
    ever seen, not once per packet.
    """

    __slots__ = (
        "program", "entry", "vectorizable", "reason", "topo", "ops",
        "fields", "delta_vars", "has_fork", "vocab", "reps",
        "_lut_vals", "_lut_known", "_pair_luts", "fn", "source", "lock",
    )

    def __init__(self, program: SwitchProgram, entry: int):
        KERNEL_STATS["plans"] += 1
        self.program = program
        self.entry = entry
        self.vocab: dict = {}
        self.reps: list = []
        self._lut_vals: dict = {}   # branch op idx -> np.bool_ array
        self._lut_known: dict = {}  # branch op idx -> np.bool_ array
        self._pair_luts: dict = {}  # branch op idx -> {(c1, c2): bool}
        self.fn = None
        self.source = None
        self.lock = threading.Lock()
        self._analyze()

    # -- static analysis ---------------------------------------------------

    def _analyze(self) -> None:
        instructions = self.program.instructions
        self.vectorizable = True
        self.reason = None
        self.has_fork = False
        fields: set = {"outport"}
        delta_vars: set = set()
        ops: dict = {}

        # Iterative DFS with postorder collection: reversed postorder is
        # a topological order of the reachable op DAG, which every
        # root-to-terminal path traverses in program order (instruction
        # indices are NOT topological — the compiler memoizes shared
        # subtrees at arbitrary positions).
        order: list = []
        state: dict = {}  # idx -> 1 (on stack) | 2 (done)
        stack = [(self.entry, False)]
        while stack:
            idx, processed = stack.pop()
            if processed:
                state[idx] = 2
                order.append(idx)
                continue
            mark = state.get(idx)
            if mark is not None:
                continue
            state[idx] = 1
            stack.append((idx, True))
            instr = instructions[idx]
            succ: tuple = ()
            if isinstance(instr, IBranch):
                test = instr.test
                if isinstance(test, StateVarTest):
                    self._refuse(f"state test on {test.var!r}")
                elif isinstance(test, FieldValueTest):
                    fields.add(test.field)
                    ops[idx] = (
                        "fv", test.field, _value_predicate(test),
                        instr.on_true, instr.on_false,
                    )
                else:
                    fields.add(test.field1)
                    fields.add(test.field2)
                    ops[idx] = (
                        "ff", test.field1, test.field2,
                        instr.on_true, instr.on_false,
                    )
                succ = (instr.on_true, instr.on_false)
            elif isinstance(instr, ISet):
                fields.add(instr.field)
                ops[idx] = ("set", instr.field, self.intern(instr.value))
                succ = (idx + 1,)
            elif isinstance(instr, IStateDelta):
                delta_vars.add(instr.var)
                index_spec = []
                for expr in instr.index:
                    if isinstance(expr, ast.Field):
                        fields.add(expr.name)
                        index_spec.append(("f", expr.name))
                    else:
                        index_spec.append(("v", self.intern(expr.value)))
                ops[idx] = (
                    "delta", instr.var, tuple(index_spec), instr.delta,
                )
                succ = (idx + 1,)
            elif isinstance(instr, IJump):
                ops[idx] = ("jump", instr.target)
                succ = (instr.target,)
            elif isinstance(instr, IFork):
                self.has_fork = True
                ops[idx] = ("fork", instr.targets)
                succ = instr.targets
            elif isinstance(instr, IEmit):
                ops[idx] = ("emit",)
            elif isinstance(instr, IDrop):
                ops[idx] = ("drop",)
            elif isinstance(instr, IPause):
                self._refuse(f"pause on {instr.var!r}")
            elif isinstance(instr, IStateWrite):
                self._refuse(f"state write to {instr.var!r}")
            else:  # pragma: no cover - exhaustive over the instruction set
                self._refuse(f"unknown instruction {instr!r}")
            for target in succ:
                if state.get(target) == 1:
                    # A cycle cannot arise from the xFDD compiler; refuse
                    # rather than mis-execute if one ever does.
                    self._refuse("cyclic control flow")
                    break
                stack.append((target, False))
            if not self.vectorizable:
                break
        order.reverse()
        self.topo = order
        self.ops = ops
        self.fields = tuple(sorted(fields))
        self.delta_vars = frozenset(delta_vars)

    def _refuse(self, reason: str) -> None:
        self.vectorizable = False
        self.reason = reason

    # -- value interning and test LUTs ------------------------------------

    def intern(self, value) -> int:
        """The value's code (``(type, value)``-keyed, see class docstring)."""
        key = (value.__class__, value)
        code = self.vocab.get(key)
        if code is None:
            code = len(self.reps)
            self.vocab[key] = code
            self.reps.append(value)
        return code

    def _luts_for(self, op_idx: int):
        cap = len(self.reps)
        vals = self._lut_vals.get(op_idx)
        if vals is None or len(vals) < cap:
            grown_vals = np.zeros(cap, dtype=bool)
            grown_known = np.zeros(cap, dtype=bool)
            if vals is not None:
                grown_vals[: len(vals)] = vals
                grown_known[: len(vals)] = self._lut_known[op_idx]
            self._lut_vals[op_idx] = vals = grown_vals
            self._lut_known[op_idx] = grown_known
        return vals, self._lut_known[op_idx]

    def value_mask(self, op_idx: int, codes):
        """Field-value test over a code column, via the per-code LUT."""
        vals, known = self._luts_for(op_idx)
        unique = np.unique(codes)
        missing = unique[~known[unique]]
        if len(missing):
            pred = self.ops[op_idx][2]
            reps = self.reps
            for code in missing.tolist():
                vals[code] = pred(reps[code])
                known[code] = True
        return vals[codes]

    def pair_mask(self, op_idx: int, codes1, codes2):
        """Field-field equality, resolved once per distinct code pair.

        Code equality alone would miss cross-type equalities (``1 ==
        True``), so each distinct pair is compared through the actual
        representative values.
        """
        lut = self._pair_luts.get(op_idx)
        if lut is None:
            lut = self._pair_luts[op_idx] = {}
        span = len(self.reps)
        combined = codes1 * span + codes2
        unique = np.unique(combined)
        reps = self.reps
        verdicts = np.empty(len(unique), dtype=bool)
        for position, combo in enumerate(unique.tolist()):
            c1, c2 = divmod(combo, span)
            verdict = lut.get((c1, c2))
            if verdict is None:
                verdict = lut[(c1, c2)] = reps[c1] == reps[c2]
            verdicts[position] = verdict
        return verdicts[np.searchsorted(unique, combined)]


# -- transitive state footprint of a scalar entry -----------------------------


def _touched_vars(network, program: SwitchProgram, entry: int) -> frozenset:
    """Every state variable a run entered at ``entry`` can read or write,
    followed transitively through PAUSE into the owner switches'
    programs.  Used to prove vectorized and fallback rows disjoint."""
    memo = getattr(network, "_vector_var_memo", None)
    if memo is None:
        memo = network._vector_var_memo = {}
    key = (program.switch, entry)
    cached = memo.get(key)
    if cached is not None:
        return cached
    memo[key] = frozenset()  # cycle guard; overwritten below
    touched: set = set()
    seen: set = set()
    stack = [(program, entry)]
    while stack:
        prog, idx = stack.pop()
        walk_key = (prog.switch, idx)
        if walk_key in seen:
            continue
        seen.add(walk_key)
        instr = prog.instructions[idx]
        if isinstance(instr, IBranch):
            if isinstance(instr.test, StateVarTest):
                touched.add(instr.test.var)
            stack.append((prog, instr.on_true))
            stack.append((prog, instr.on_false))
        elif isinstance(instr, (IStateWrite, IStateDelta)):
            touched.add(instr.var)
            stack.append((prog, idx + 1))
        elif isinstance(instr, ISet):
            stack.append((prog, idx + 1))
        elif isinstance(instr, IJump):
            stack.append((prog, instr.target))
        elif isinstance(instr, IFork):
            for target in instr.targets:
                stack.append((prog, target))
        elif isinstance(instr, IPause):
            touched.add(instr.var)
            owner = network.placement.get(instr.var)
            owner_program = network.switches.get(owner)
            if owner_program is not None:
                resumed = owner_program.entries.get(instr.tag)
                if resumed is not None:
                    stack.append((owner_program, resumed))
        # IEmit / IDrop terminate the walk.
    result = frozenset(touched)
    memo[key] = result
    return result


def _commutable_vars(network) -> frozenset:
    """Variables whose deltas commute with *everything* else in the
    program: the same delta-eligibility predicate state-compute
    replication uses (:func:`repro.dataplane.replication
    .replicable_delta_vars` — increment-only, never state-tested,
    integer default), so the vector fast path and the replica planner
    always agree on which variables tolerate reordering.  Cached per
    compiled diagram (root identity), like the shard-plan cache."""
    index = network.index
    root = index.root if index is not None else None
    cached = getattr(network, "_vector_commute_memo", None)
    if cached is not None and cached[0] is root:
        return cached[1]
    if root is None:
        result = frozenset()
    else:
        from repro.dataplane.replication import replicable_delta_vars

        result = replicable_delta_vars(
            root, getattr(network, "state_defaults", {})
        )
    network._vector_commute_memo = (root, result)
    return result


# -- one vector group's batch state -------------------------------------------


class _GroupRun:
    """Columns, frames, and deferred events for one (switch, entry) group.

    A *frame* is ``(idx, overlays, okeys)``: the active rows (positions
    into this group's columns), the SET-modified columns, and — only once
    a FORK has run — each row copy's fork-path order key.  Frames flow
    through the op DAG; the generated kernels and the interpreter both
    drive execution exclusively through the methods below.
    """

    __slots__ = (
        "kernel", "rows", "gidx", "port_list", "base_fields", "cols",
        "idx0", "delta_events", "terminals", "_seq",
    )

    def __init__(self, kernel: _Kernel, rows):
        self.kernel = kernel
        self.rows = rows  # [(global_index, packet, port)] in arrival order
        self.gidx = [row[0] for row in rows]
        self.port_list = [row[2] for row in rows]
        self.base_fields = [row[1]._fields for row in rows]
        self.cols = {}
        self.idx0 = np.arange(len(rows), dtype=np.int64)
        self.delta_events: list = []
        self.terminals: list = []
        self._seq = 0

    def col(self, field: str):
        """The field's base column, interned on first read.

        Lazy on purpose: a field that is always SET before it is read
        (``outport`` under an egress-assignment stage, typically) never
        pays for interning its base values at all.
        """
        column = self.cols.get(field)
        if column is None:
            n = len(self.rows)
            if field == "inport" or field == SNAP_INPORT:
                values = self.port_list
            elif field == SNAP_NODE:
                values = [ROOT_TAG] * n
            elif field == SNAP_OUTPORT:
                values = [None] * n
            else:
                base = self.base_fields
                values = [fields.get(field) for fields in base]
            intern = self.kernel.intern
            column = np.fromiter(
                (intern(v) for v in values), dtype=np.int64, count=n
            )
            self.cols[field] = column
        return column

    # -- frame primitives (shared by interpreter and generated kernels) ----

    def cat(self, parts):
        """Merge the frames arriving at one op (a DAG join point)."""
        if len(parts) == 1:
            return parts[0]
        idx = np.concatenate([part[0] for part in parts])
        overlay_fields: set = set()
        for part in parts:
            overlay_fields.update(part[1])
        overlays = {}
        col = self.col
        for field in overlay_fields:
            pieces = [
                part[1][field] if field in part[1] else col(field)[part[0]]
                for part in parts
            ]
            overlays[field] = np.concatenate(pieces)
        okeys = None
        if any(part[2] is not None for part in parts):
            okeys = []
            for part in parts:
                okeys.extend(
                    part[2] if part[2] is not None else [()] * len(part[0])
                )
        return (idx, overlays, okeys)

    def sel(self, frame, mask):
        idx, overlays, okeys = frame
        selected = {field: arr[mask] for field, arr in overlays.items()}
        if okeys is not None:
            okeys = [okeys[i] for i in np.flatnonzero(mask).tolist()]
        return (idx[mask], selected, okeys)

    def codes(self, frame, field):
        overlay = frame[1].get(field)
        if overlay is not None:
            return overlay
        return self.col(field)[frame[0]]

    def test(self, op_idx: int, frame):
        kernel = self.kernel
        spec = kernel.ops[op_idx]
        if spec[0] == "fv":
            return kernel.value_mask(op_idx, self.codes(frame, spec[1]))
        return kernel.pair_mask(
            op_idx, self.codes(frame, spec[1]), self.codes(frame, spec[2])
        )

    def set_field(self, frame, field: str, code: int):
        idx, overlays, okeys = frame
        overlays = dict(overlays)
        overlays[field] = np.full(len(idx), code, dtype=np.int64)
        return (idx, overlays, okeys)

    def fork_ok(self, frame, target_index: int):
        idx, overlays, okeys = frame
        if okeys is None:
            forked = [(target_index,)] * len(idx)
        else:
            forked = [okey + (target_index,) for okey in okeys]
        return (idx, overlays, forked)

    def delta(self, op_idx: int, frame) -> None:
        _, var, index_spec, delta = self.kernel.ops[op_idx]
        idx = frame[0]
        key_cols = tuple(
            self.codes(frame, spec[1])
            if spec[0] == "f"
            else np.full(len(idx), spec[1], dtype=np.int64)
            for spec in index_spec
        )
        self.delta_events.append(
            (self, self._seq, var, key_cols, delta, idx, frame[2])
        )
        self._seq += 1

    def emit(self, frame) -> None:
        self.terminals.append(("emit", frame))

    def drop(self, frame) -> None:
        self.terminals.append(("drop", frame))

    # -- the interpretive executor ----------------------------------------

    def run_interpreted(self) -> None:
        kernel = self.kernel
        ops = kernel.ops
        pending: dict = {kernel.entry: [(self.idx0, {}, None)]}
        for op_idx in kernel.topo:
            parts = pending.pop(op_idx, None)
            if not parts:
                continue
            frame = self.cat(parts)
            spec = ops[op_idx]
            tag = spec[0]
            if tag == "fv" or tag == "ff":
                mask = self.test(op_idx, frame)
                on_true, on_false = spec[-2], spec[-1]
                if mask.all():
                    pending.setdefault(on_true, []).append(frame)
                elif not mask.any():
                    pending.setdefault(on_false, []).append(frame)
                else:
                    pending.setdefault(on_true, []).append(
                        self.sel(frame, mask)
                    )
                    pending.setdefault(on_false, []).append(
                        self.sel(frame, ~mask)
                    )
            elif tag == "set":
                pending.setdefault(op_idx + 1, []).append(
                    self.set_field(frame, spec[1], spec[2])
                )
            elif tag == "delta":
                self.delta(op_idx, frame)
                pending.setdefault(op_idx + 1, []).append(frame)
            elif tag == "jump":
                pending.setdefault(spec[1], []).append(frame)
            elif tag == "fork":
                for target_index, target in enumerate(spec[1]):
                    pending.setdefault(target, []).append(
                        self.fork_ok(frame, target_index)
                    )
            elif tag == "emit":
                self.emit(frame)
            else:  # drop
                self.drop(frame)


# -- generated kernels ("vector-jit") -----------------------------------------


def _generate_source(kernel: _Kernel) -> str:
    """The columnar pipeline unrolled to straight-line Python source.

    Each reachable op becomes one guarded block over its incoming-frame
    list; the topological emission order guarantees every producer block
    precedes its consumers, so one pass executes the whole DAG with no
    dispatch loop.
    """
    lines = [
        f"def _kernel(rt):  # {kernel.program.switch} @{kernel.entry}",
        "    _cat = rt.cat; _sel = rt.sel; _test = rt.test",
        "    _set = rt.set_field; _delta = rt.delta; _fork = rt.fork_ok",
        "    _emit = rt.emit; _drop = rt.drop",
    ]
    emit = lines.append
    for op_idx in kernel.topo:
        emit(f"    _p{op_idx} = []")
    emit(f"    _p{kernel.entry}.append((rt.idx0, {{}}, None))")
    for op_idx in kernel.topo:
        spec = kernel.ops[op_idx]
        tag = spec[0]
        emit(f"    if _p{op_idx}:")
        emit(f"        _f = _cat(_p{op_idx})")
        if tag == "fv" or tag == "ff":
            on_true, on_false = spec[-2], spec[-1]
            emit(f"        _m = _test({op_idx}, _f)")
            emit(f"        if _m.all(): _p{on_true}.append(_f)")
            emit(f"        elif not _m.any(): _p{on_false}.append(_f)")
            emit("        else:")
            emit(f"            _p{on_true}.append(_sel(_f, _m))")
            emit(f"            _p{on_false}.append(_sel(_f, ~_m))")
        elif tag == "set":
            emit(
                f"        _p{op_idx + 1}.append"
                f"(_set(_f, {spec[1]!r}, {spec[2]}))"
            )
        elif tag == "delta":
            emit(f"        _delta({op_idx}, _f)")
            emit(f"        _p{op_idx + 1}.append(_f)")
        elif tag == "jump":
            emit(f"        _p{spec[1]}.append(_f)")
        elif tag == "fork":
            for target_index, target in enumerate(spec[1]):
                emit(f"        _p{target}.append(_fork(_f, {target_index}))")
        elif tag == "emit":
            emit("        _emit(_f)")
        else:
            emit("        _drop(_f)")
    return "\n".join(lines)


def _compiled_kernel(kernel: _Kernel):
    if kernel.fn is None:
        kernel.source = _generate_source(kernel)
        namespace: dict = {}
        exec(kernel.source, namespace)  # noqa: S102 - our own generated source
        kernel.fn = namespace["_kernel"]
        KERNEL_STATS["compiles"] += 1
    return kernel.fn


# -- the vector lane ----------------------------------------------------------


class VectorLane:
    """One shard's columnar execution lane (drop-in for ``_Lane``).

    Same contract as the scalar lane: :meth:`run` returns
    ``({global_index: [DeliveryRecord]}, {link: count})`` with exactly
    the records, ordering, and counters the sequential engine produces.
    """

    __slots__ = ("network", "shard", "batch", "jit", "commute", "_scalar",
                 "_counter")

    def __init__(self, network, shard: Shard, batch, jit: bool = False,
                 commute: bool = False):
        self.network = network
        self.shard = shard
        self.batch = batch
        self.jit = jit
        #: opt-in commutative-overlap fast path (see :meth:`run`)
        self.commute = commute
        self._scalar = _Lane(network, shard, [])
        self._counter = 0

    # -- group planning ----------------------------------------------------

    def _resolve_groups(self):
        """Split the batch by resolved ``(switch, entry)``; returns
        ``(groups, group_of_port)`` where groups maps ``(switch, entry)``
        to ``(program, rows)``."""
        net = self.network
        ports = net.topology.ports
        switches = net.switches
        resolved: dict = {}  # port -> (switch, entry, program)
        groups: dict = {}
        for row in self.batch:
            _, packet, port = row
            cached = resolved.get(port)
            if cached is None:
                switch = ports[port]
                program = switches[switch]
                fields = dict(packet._fields)
                fields["inport"] = port
                fields[SNAP_INPORT] = port
                fields[SNAP_NODE] = ROOT_TAG
                tagged = Packet.__new__(Packet)
                tagged._fields = fields
                tagged._hash = None
                entry = program.resolve_inport_entry(ROOT_TAG, tagged, port)
                cached = resolved[port] = (switch, entry, program)
            switch, entry, program = cached
            bucket = groups.get((switch, entry))
            if bucket is None:
                bucket = groups[(switch, entry)] = (program, [])
            bucket[1].append(row)
        return groups, resolved

    def run(self):
        if np is None or not self.batch:
            if np is None and self.batch:
                _demote("no-numpy", len(self.batch))
            self._scalar.batch = self.batch
            return self._scalar.run()
        net = self.network
        groups, resolved = self._resolve_groups()
        vector_groups = []
        fallback_keys: set = set()
        for group_key, (program, rows) in groups.items():
            kernel = _kernel_for(net, program, group_key[1])
            if kernel.vectorizable:
                vector_groups.append((kernel, rows))
            else:
                fallback_keys.add(group_key)
                _demote("non-vectorizable", len(rows))
        if not vector_groups:
            self._scalar.batch = self.batch
            return self._scalar.run()
        if fallback_keys:
            vector_vars = frozenset().union(
                *(kernel.delta_vars for kernel, _ in vector_groups)
            )
            fallback_vars = frozenset().union(
                *(
                    _touched_vars(net, groups[key][0], key[1])
                    for key in fallback_keys
                )
            )
            overlap = vector_vars & fallback_vars
            if overlap and not (
                self.commute and overlap <= _commutable_vars(net)
            ):
                # Deferred deltas cannot be reordered around scalar rows
                # that share state: the whole batch runs scalar.  The
                # opt-in fast path keeps the vector groups when the
                # effect analysis proves every overlapping variable is
                # increment-only and never read — then the deltas
                # commute with anything the scalar rows can do.
                _demote("state-overlap", len(self.batch))
                self._scalar.batch = self.batch
                return self._scalar.run()

        results: dict = {}
        out: dict = {}  # global_index -> [(phase, okey, counter, record)]
        delta_events: list = []
        try:
            for kernel, rows in vector_groups:
                with kernel.lock:
                    run = _GroupRun(kernel, rows)
                    if self.jit:
                        _compiled_kernel(kernel)(run)
                    else:
                        run.run_interpreted()
                    KERNEL_STATS["kernel_calls"] += 1
                    delta_events.extend(run.delta_events)
                    self._collect_records(run, out, results)
        except TypeError:
            # An unhashable field value cannot be interned: the columnar
            # form does not apply — rerun everything on the scalar lane
            # (no state was touched yet; deltas are deferred).
            _demote("unhashable-field", len(self.batch))
            self._scalar = _Lane(self.network, self.shard, self.batch)
            return self._scalar.run()
        _apply_delta_events(delta_events)
        for gidx, entries in out.items():
            if len(entries) == 1:
                results[gidx] = [entries[0][3]]
            else:
                entries.sort(key=lambda entry: entry[:3])
                results[gidx] = [entry[3] for entry in entries]
        if fallback_keys:
            fallback_ports = {
                port
                for port, (switch, entry, _) in resolved.items()
                if (switch, entry) in fallback_keys
            }
            self._scalar.batch = [
                row for row in self.batch if row[2] in fallback_ports
            ]
        else:
            self._scalar.batch = []
        fallback_results, links = self._scalar.run()
        results.update(fallback_results)
        sampler = postcards.active_sampler()
        if sampler is not None:
            # No per-packet interpreter to hang events on: sampled rows
            # that ran columnar get a delivery-level summary postcard.
            # (Fallback rows already produced full postcards inside the
            # scalar lane's own sampling hook.)
            kind = "vector-jit" if self.jit else "vector"
            for _, rows in vector_groups:
                for gidx, _packet, port in rows:
                    if sampler.should(gidx):
                        postcards.record_summary(
                            gidx, port, results.get(gidx, ()), kind
                        )
        return results, links

    # -- record materialization -------------------------------------------

    def _segment(self, switch: str, ingress: int, egress: int):
        key = (switch, ingress, egress, DONE_TAG)
        scalar = self._scalar
        segment = scalar._segments.get(key)
        if segment is None:
            segment = scalar._walk(switch, ingress, egress, DONE_TAG)
            scalar._segments[key] = segment
        return key, segment

    def _collect_records(self, run: _GroupRun, out: dict,
                         results: dict) -> None:
        kernel = run.kernel
        switch = kernel.program.switch
        ports = self.network.topology.ports
        reps = kernel.reps
        seg_counts = self._scalar._seg_counts
        # Fork-free programs produce exactly one record per row, so
        # record ordering is trivial: write the finished singleton lists
        # straight into ``results`` and skip the order-entry machinery.
        direct = not kernel.has_fork
        for kind, frame in run.terminals:
            idx, overlays, okeys = frame
            idx_list = idx.tolist()
            mods = [
                (arr.tolist(), field) for field, arr in overlays.items()
            ]
            dropping = kind == "drop"
            if dropping:
                route = None
            else:
                # Classify each distinct egress value once.
                out_codes = run.codes(frame, "outport").tolist()
                route = {}
                for code in set(out_codes):
                    egress = reps[code]
                    if egress is None or egress not in ports:
                        route[code] = ("invalid", None, 0, None)
                    elif ports[egress] == switch:
                        route[code] = ("local", egress, 0, None)
                    else:
                        route[code] = ("remote", egress, None, {})
            gidx = run.gidx
            port_list = run.port_list
            base_fields = run.base_fields
            counter = self._counter
            for position, row in enumerate(idx_list):
                port = port_list[row]
                if dropping:
                    cls, egress, hops = "invalid", None, 0
                else:
                    cls, egress, hops, seg_cache = route[out_codes[position]]
                    if cls == "remote":
                        cached = seg_cache.get(port)
                        if cached is None:
                            key, segment = self._segment(switch, port, egress)
                            hops = len(segment[1])
                            if hops > MAX_HOPS:
                                raise DataPlaneError(
                                    "packet exceeded hop limit "
                                    "(routing loop?)"
                                )
                            cached = seg_cache[port] = (key, hops)
                        key, hops = cached
                        seg_counts[key] = seg_counts.get(key, 0) + 1
                fields = dict(base_fields[row])
                fields["inport"] = port
                for values, field in mods:
                    fields[field] = reps[values[position]]
                if cls == "invalid":
                    # Drops and invalid egresses keep the SNAP headers,
                    # exactly like the scalar interpreter's packets.
                    fields[SNAP_INPORT] = port
                    fields[SNAP_NODE] = ROOT_TAG
                    egress = None
                packet = Packet.__new__(Packet)
                packet._fields = fields
                packet._hash = None
                record = DeliveryRecord(packet, egress, hops)
                if direct:
                    results[gidx[row]] = [record]
                    continue
                phase = 1 if cls == "remote" else 0
                okey = okeys[position] if okeys is not None else ()
                entry = (phase, okey, counter, record)
                counter += 1
                bucket = out.get(gidx[row])
                if bucket is None:
                    out[gidx[row]] = [entry]
                else:
                    bucket.append(entry)
            self._counter = counter


# -- deferred state-delta application -----------------------------------------


def _apply_delta_events(events: list) -> None:
    """Apply the deferred STDELTA events byte-identically.

    Fast path: when every delta is an integer and every touched entry
    currently holds an integer (or is unset with an integer-or-None
    default), increments commute exactly — group them per state key and
    apply one write per key.  Otherwise (float values, corrupted
    tables), replay every event one by one in the sequential engine's
    exact order — ``(arrival, fork path, program order)`` — so float
    associativity and mid-batch errors reproduce bit-for-bit.
    """
    if not events:
        return
    prepared = []
    groupable = True
    for run, seq, var_name, key_cols, delta, idx, okeys in events:
        variable = run.kernel.program.store.variable(var_name)
        reps = run.kernel.reps
        if len(key_cols) == 1:
            unique, counts = np.unique(key_cols[0], return_counts=True)
            keys = [(reps[code],) for code in unique.tolist()]
        else:
            stacked = np.column_stack(key_cols)
            unique, counts = np.unique(stacked, axis=0, return_counts=True)
            keys = [
                tuple(reps[code] for code in row)
                for row in unique.tolist()
            ]
        prepared.append((variable, keys, counts.tolist()))
        if groupable:
            if not isinstance(delta, int):
                groupable = False
            else:
                table = variable._table
                default = variable.default
                for key in keys:
                    current = table.get(key, default)
                    if current is None:
                        continue
                    if isinstance(current, int) and not isinstance(
                        current, bool
                    ):
                        continue
                    groupable = False
                    break
    if groupable:
        totals: dict = {}
        for position, (variable, keys, counts) in enumerate(prepared):
            delta = events[position][4]
            for key, count in zip(keys, counts):
                slot = (variable, key)
                totals[slot] = totals.get(slot, 0) + delta * count
        for (variable, key), total in totals.items():
            current = variable._table.get(key, variable.default)
            if current is None:
                current = 0
            variable._table[key] = current + total
        return
    # Exact replay: flatten to per-token events and sort into the order
    # the sequential interpreter would have applied them in.
    flat = []
    for run, seq, var_name, key_cols, delta, idx, okeys in events:
        variable = run.kernel.program.store.variable(var_name)
        reps = run.kernel.reps
        gidx = run.gidx
        idx_list = idx.tolist()
        columns = [col.tolist() for col in key_cols]
        for position, row in enumerate(idx_list):
            key = tuple(reps[column[position]] for column in columns)
            okey = okeys[position] if okeys is not None else ()
            flat.append((gidx[row], okey, seq, variable, key, delta))
    flat.sort(key=lambda event: event[:3])
    for _, _, _, variable, key, delta in flat:
        variable.increment(key, delta)


# -- engines and lane factory -------------------------------------------------


class VectorEngine(ShardedEngine):
    """The sharded lane planner with columnar lanes.

    Identical shard analysis, batching, deterministic merge, and failure
    contract as :class:`~repro.dataplane.engine.ShardedEngine`; each lane
    runs the vector tier (falling back per-group to the scalar lane, see
    the module docstring).  Stateless: kernels and vocabularies live in
    the module-level cache keyed by execution-program tokens, so fresh
    engine instances reuse warm kernels.
    """

    name = "vector"
    jit = False

    def __init__(self, max_workers: int | None = None,
                 commute_fastpath: bool | None = None,
                 replicate_state: bool | None = None):
        if np is None:
            raise DataPlaneError(
                "the vector engines require numpy, which is not installed; "
                "use engine='sharded' (or install numpy)"
            )
        super().__init__(max_workers, replicate_state=replicate_state)
        # Opt-in: keep vector groups when every variable shared with the
        # scalar fallback is proven increment-only and never tested (see
        # VectorLane.run).  Default stays the conservative whole-batch
        # demotion; SNAP_VECTOR_COMMUTE=1 flips the default.
        if commute_fastpath is None:
            commute_fastpath = os.environ.get("SNAP_VECTOR_COMMUTE") == "1"
        self.commute_fastpath = commute_fastpath

    def replica_plan(self, network):
        """State-compute replication, promoted from ``commute_fastpath``.

        The vector tier's default is the conservative one its tests pin:
        no reordering of state updates unless the user opted in — so a
        default-configured vector engine only replicates when
        ``replicate_state=True`` is passed explicitly or the
        ``commute_fastpath`` opt-in (which already asserts tolerance to
        delta reordering) is on.  Both draw from the same eligibility
        predicate, so opting into one opts into the other coherently.
        """
        from repro.dataplane.replication import replica_plan_for

        if self.replicate_state is None and not self.commute_fastpath:
            return replica_plan_for(network, False)
        return super().replica_plan(network)

    def _make_lane(self, network, shard: Shard, batch):
        return VectorLane(
            network, shard, batch, jit=self.jit,
            commute=self.commute_fastpath,
        )

    def __repr__(self):
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class VectorJitEngine(VectorEngine):
    """The vector tier with generated per-program kernels (see
    :func:`_generate_source`); cached by ``_exec_program_key`` so TE
    rewires re-``exec`` nothing."""

    name = "vector-jit"
    jit = True


def make_vector_lane(kind: str, network, shard: Shard, batch):
    """A lane for the cluster worker's opt-in (scalar when numpy is
    missing on the worker host — semantics are identical either way)."""
    if np is None:
        return _Lane(network, shard, batch)
    return VectorLane(network, shard, batch, jit=(kind == "vector-jit"))
