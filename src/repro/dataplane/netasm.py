"""A NetASM-like switch backend (§5).

"The compiler's output for each switch is a set of switch-level
instructions in a low-level language called NetASM ... we traverse the
xFDD and generate a branch instruction for each test node ... we generate
instructions to create two tables for each state variable, one for the
indices and one for the values ... we generate store instructions that
modify the packet fields and state tables ... we use NetASM support for
atomic execution."

Instruction set (one list per switch, entry points by xFDD tag):

    BRANCH  test, true_target, false_target    -- stateless or local-state test
    PAUSE   tag, var                           -- tag packet, await var's switch
    FORK    targets...                         -- copy packet per leaf sequence
    SET     field, value
    STWRITE var, index_exprs, value_exprs      -- local state table write
    STDELTA var, index_exprs, delta            -- local increment/decrement
    DROP
    EMIT

The interpreter (:meth:`SwitchProgram.process`) executes a packet's run
atomically with respect to the switch's state tables, mirroring NetASM's
atomic table updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataplane.header import SNAP_NODE
from repro.dataplane.split import NodeIndex, _ordered_seqs, leaf_groups, state_owner
from repro.lang import ast
from repro.lang.errors import DataPlaneError
from repro.lang.packet import Packet
from repro.lang.state import Store
from repro.lang.values import matches
from repro.util.ipaddr import IPPrefix
from repro.xfdd.actions import DropAction, FieldAssign, StateAssign, StateDelta
from repro.xfdd.diagram import Branch, Leaf, XFDD
from repro.xfdd.tests import FieldFieldTest, FieldValueTest, StateVarTest

# -- instructions -------------------------------------------------------------


class Instr:
    __slots__ = ()


class IBranch(Instr):
    __slots__ = ("test", "on_true", "on_false")

    def __init__(self, test, on_true: int, on_false: int):
        self.test = test
        self.on_true = on_true
        self.on_false = on_false

    def __repr__(self):
        return f"BRANCH {self.test!r} ? @{self.on_true} : @{self.on_false}"


class IPause(Instr):
    __slots__ = ("tag", "var")

    def __init__(self, tag: int, var: str):
        self.tag = tag
        self.var = var

    def __repr__(self):
        return f"PAUSE tag={self.tag} var={self.var}"


class IFork(Instr):
    __slots__ = ("targets",)

    def __init__(self, targets):
        self.targets = tuple(targets)

    def __repr__(self):
        return "FORK " + ", ".join(f"@{t}" for t in self.targets)


class IJump(Instr):
    __slots__ = ("target",)

    def __init__(self, target: int):
        self.target = target

    def __repr__(self):
        return f"JUMP @{self.target}"


class ISet(Instr):
    __slots__ = ("field", "value")

    def __init__(self, field: str, value):
        self.field = field
        self.value = value

    def __repr__(self):
        return f"SET {self.field} <- {self.value!r}"


class IStateWrite(Instr):
    __slots__ = ("var", "index", "value")

    def __init__(self, var, index, value):
        self.var = var
        self.index = index
        self.value = value

    def __repr__(self):
        return f"STWRITE {self.var}[{self.index}] <- {self.value}"


class IStateDelta(Instr):
    __slots__ = ("var", "index", "delta")

    def __init__(self, var, index, delta):
        self.var = var
        self.index = index
        self.delta = delta

    def __repr__(self):
        return f"STDELTA {self.var}[{self.index}] {'+' if self.delta > 0 else ''}{self.delta}"


class IDrop(Instr):
    __slots__ = ()

    def __repr__(self):
        return "DROP"


class IEmit(Instr):
    __slots__ = ()

    def __repr__(self):
        return "EMIT"


# -- fast-path lowering --------------------------------------------------------
#
# The instruction objects above are the readable, reportable program.  For
# execution we lower them once, at program build time, into flat opcode
# tuples whose operands are *precompiled closures*: test nodes become
# predicate functions with their fields/values/state tables already bound,
# and expression tuples become getter functions.  The interpreter then runs
# a tight integer-dispatch loop with no isinstance chains and no
# per-packet expression re-interpretation — the table-driven discipline of
# a real switch pipeline.

OP_BRANCH = 0
OP_PAUSE = 1
OP_FORK = 2
OP_JUMP = 3
OP_SET = 4
OP_STWRITE = 5
OP_STDELTA = 6
OP_DROP = 7
OP_EMIT = 8


def _compile_getter(expr):
    """One scalar expression -> ``f(pkt) -> value``."""
    if isinstance(expr, ast.Field):
        name = expr.name
        # Reach into the packet's field dict directly: this closure runs
        # per packet per instruction and Packet.get is pure indirection.
        return lambda pkt: pkt._fields.get(name)
    value = expr.value
    return lambda pkt: value


def _compile_exprs(exprs: tuple):
    """An expression tuple -> ``f(pkt) -> tuple`` (state-table key)."""
    getters = tuple(_compile_getter(e) for e in exprs)
    if len(getters) == 1:
        g = getters[0]
        return lambda pkt: (g(pkt),)
    return lambda pkt: tuple(g(pkt) for g in getters)


def _compile_packed(exprs: tuple):
    """An expression tuple -> ``f(pkt) -> packed value`` (see pack_value)."""
    if len(exprs) == 1:
        return _compile_getter(exprs[0])
    return _compile_exprs(exprs)


def _compile_test(test, store: Store):
    """Lower one xFDD test to a ``f(pkt) -> bool`` closure.

    Must agree exactly with :func:`repro.xfdd.diagram.eval_test`.
    """
    if isinstance(test, FieldValueTest):
        field, value = test.field, test.value
        if isinstance(value, IPPrefix):
            network, mask = value.network, value.mask

            def prefix_test(pkt):
                v = pkt._fields.get(field)
                if type(v) is int:  # exact: bool is not an address
                    return (v & mask) == network
                return matches(v, value)

            return prefix_test
        # For non-prefix values `matches` is plain equality.
        return lambda pkt: pkt._fields.get(field) == value
    if isinstance(test, FieldFieldTest):
        f1, f2 = test.field1, test.field2
        return lambda pkt: pkt._fields.get(f1) == pkt._fields.get(f2)
    if isinstance(test, StateVarTest):
        variable = store.variable(test.var)
        key_fn = _compile_exprs(test.index)
        want_fn = _compile_packed(test.value)
        return lambda pkt: variable.get(key_fn(pkt)) == want_fn(pkt)
    raise DataPlaneError(f"cannot compile test {test!r}")


def _lower(instructions, store: Store) -> list:
    """Lower Instr objects to flat opcode tuples (same indices)."""
    ops = []
    for instr in instructions:
        if isinstance(instr, IBranch):
            ops.append(
                (OP_BRANCH, _compile_test(instr.test, store),
                 instr.on_true, instr.on_false)
            )
        elif isinstance(instr, IPause):
            ops.append((OP_PAUSE, instr.tag, instr.var))
        elif isinstance(instr, IFork):
            ops.append((OP_FORK, instr.targets))
        elif isinstance(instr, IJump):
            ops.append((OP_JUMP, instr.target))
        elif isinstance(instr, ISet):
            ops.append((OP_SET, instr.field, instr.value))
        elif isinstance(instr, IStateWrite):
            ops.append(
                (OP_STWRITE, store.variable(instr.var),
                 _compile_exprs(instr.index), _compile_packed(instr.value))
            )
        elif isinstance(instr, IStateDelta):
            ops.append(
                (OP_STDELTA, store.variable(instr.var),
                 _compile_exprs(instr.index), instr.delta)
            )
        elif isinstance(instr, IDrop):
            ops.append((OP_DROP,))
        elif isinstance(instr, IEmit):
            ops.append((OP_EMIT,))
        else:
            raise DataPlaneError(f"unknown instruction {instr!r}")
    return ops


# -- outcomes ------------------------------------------------------------------


class Outcome:
    """Result of running one packet copy through a switch program."""

    __slots__ = ("kind", "packet", "var")

    def __init__(self, kind: str, packet: Packet, var: str | None = None):
        self.kind = kind  # "emit" | "pause" | "drop"
        self.packet = packet
        self.var = var

    def __repr__(self):
        return f"Outcome({self.kind}, var={self.var})"


# -- compilation ----------------------------------------------------------------


class SwitchProgram:
    """The NetASM program and state tables of one switch."""

    def __init__(self, switch: str, instructions, entries: dict, store: Store):
        self.switch = switch
        self.instructions = instructions
        self.entries = entries  # xFDD tag -> instruction index
        self.store = store
        # Lowered once; `process` only ever touches the flat form.
        self._ops = _lower(instructions, store)
        # (tag, inport) -> pre-resolved entry, see resolve_inport_entry.
        self._inport_entries: dict = {}
        # idx -> traced-branch helpers, built on first process_traced.
        self._traced_tests: dict | None = None

    def can_process(self, tag: int) -> bool:
        return tag in self.entries

    def resolve_inport_entry(self, tag: int, packet: Packet, port: int) -> int:
        """Entry index with leading ``inport``-only branches pre-resolved.

        Packets of one ingress port all take the same side of every
        branch whose test reads only the ``inport`` field (the shape
        :func:`~repro.analysis.sharding.shard_by_inport` compiles to), so
        the resolution is computed once per (tag, port) — by running the
        *actual lowered test closures* on the first such packet — and
        cached.  Used by the sharded engine's per-shard lanes.
        """
        key = (tag, port)
        cached = self._inport_entries.get(key)
        if cached is not None:
            return cached
        idx = self.entries[tag]
        instructions, ops = self.instructions, self._ops
        while True:
            instr = instructions[idx]
            if not (
                type(instr) is IBranch
                and type(instr.test) is FieldValueTest
                and instr.test.field == "inport"
            ):
                break
            idx = instr.on_true if ops[idx][1](packet) else instr.on_false
        self._inport_entries[key] = idx
        return idx

    def process(self, packet: Packet, entry: int | None = None) -> list:
        """Run the packet (and its forked copies) to pause/emit/drop.

        Executes the lowered opcode table (see ``_lower``); a packet's run
        is atomic with respect to the switch's state tables.  ``entry``
        overrides the tag-derived entry point (for pre-resolved entries
        from :meth:`resolve_inport_entry`).
        """
        if entry is None:
            tag = packet.get(SNAP_NODE)
            entry = self.entries.get(tag)
        if entry is None:
            raise DataPlaneError(
                f"switch {self.switch} cannot process tag {tag!r}"
            )
        outcomes: list[Outcome] = []
        ops = self._ops
        stack = [(entry, packet)]
        while stack:
            idx, pkt = stack.pop()
            while True:
                op = ops[idx]
                code = op[0]
                if code == OP_BRANCH:
                    idx = op[2] if op[1](pkt) else op[3]
                elif code == OP_SET:
                    pkt = pkt.modify(op[1], op[2])
                    idx += 1
                elif code == OP_STWRITE:
                    op[1].set(op[2](pkt), op[3](pkt))
                    idx += 1
                elif code == OP_STDELTA:
                    op[1].increment(op[2](pkt), op[3])
                    idx += 1
                elif code == OP_JUMP:
                    idx = op[1]
                elif code == OP_EMIT:
                    outcomes.append(Outcome("emit", pkt))
                    break
                elif code == OP_PAUSE:
                    outcomes.append(
                        Outcome("pause", pkt.modify(SNAP_NODE, op[1]), op[2])
                    )
                    break
                elif code == OP_FORK:
                    # Reversed push: the LIFO stack then explores targets
                    # in order, so outcomes come out in the leaf's
                    # deterministic trie (emission) order.
                    for target in reversed(op[1]):
                        stack.append((target, pkt))
                    break
                else:  # OP_DROP
                    outcomes.append(Outcome("drop", pkt))
                    break
        return outcomes

    def _traced_table(self) -> dict:
        """``idx -> (var, key_fn, want_fn, variable)`` for every branch
        whose test reads a state table (the events a postcard records)."""
        table = self._traced_tests
        if table is None:
            table = {}
            for idx, instr in enumerate(self.instructions):
                if isinstance(instr, IBranch) and isinstance(
                    instr.test, StateVarTest
                ):
                    test = instr.test
                    table[idx] = (
                        test.var,
                        _compile_exprs(test.index),
                        _compile_packed(test.value),
                        self.store.variable(test.var),
                    )
            self._traced_tests = table
        return table

    def process_traced(
        self, packet: Packet, recorder, entry: int | None = None
    ) -> list:
        """:meth:`process`, with postcard events on the side.

        Executes the *same* lowered opcode table with the same operand
        closures in the same order — state reads/writes, branch
        decisions, fork order, and outcomes are identical to
        :meth:`process` (every operand closure is pure, so evaluating it
        once and reusing the value for both the effect and the event
        cannot diverge).  The only additions are calls on ``recorder``:
        state tests/writes/deltas and the final outcome kind per copy.
        Only sampled packets come through here; the hot path never pays
        for it.
        """
        if entry is None:
            tag = packet.get(SNAP_NODE)
            entry = self.entries.get(tag)
        if entry is None:
            raise DataPlaneError(
                f"switch {self.switch} cannot process tag {tag!r}"
            )
        recorder.process(self.switch)
        traced = self._traced_table()
        outcomes: list[Outcome] = []
        ops = self._ops
        stack = [(entry, packet)]
        while stack:
            idx, pkt = stack.pop()
            while True:
                op = ops[idx]
                code = op[0]
                if code == OP_BRANCH:
                    state_test = traced.get(idx)
                    if state_test is None:
                        idx = op[2] if op[1](pkt) else op[3]
                    else:
                        var, key_fn, want_fn, variable = state_test
                        key = key_fn(pkt)
                        current = variable.get(key)
                        result = current == want_fn(pkt)
                        recorder.state_test(var, key, current, result)
                        idx = op[2] if result else op[3]
                elif code == OP_SET:
                    pkt = pkt.modify(op[1], op[2])
                    idx += 1
                elif code == OP_STWRITE:
                    key, value = op[2](pkt), op[3](pkt)
                    recorder.state_write(self.instructions[idx].var, key, value)
                    op[1].set(key, value)
                    idx += 1
                elif code == OP_STDELTA:
                    key = op[2](pkt)
                    recorder.state_delta(self.instructions[idx].var, key, op[3])
                    op[1].increment(key, op[3])
                    idx += 1
                elif code == OP_JUMP:
                    idx = op[1]
                elif code == OP_EMIT:
                    recorder.outcome("emit")
                    outcomes.append(Outcome("emit", pkt))
                    break
                elif code == OP_PAUSE:
                    recorder.outcome("pause", var=op[2])
                    outcomes.append(
                        Outcome("pause", pkt.modify(SNAP_NODE, op[1]), op[2])
                    )
                    break
                elif code == OP_FORK:
                    for target in reversed(op[1]):
                        stack.append((target, pkt))
                    break
                else:  # OP_DROP
                    recorder.outcome("drop")
                    outcomes.append(Outcome("drop", pkt))
                    break
        return outcomes

    def to_lowered(self) -> "LoweredProgram":
        """The pure-data serialization of this program (see
        :class:`LoweredProgram`)."""
        return LoweredProgram(
            switch=self.switch,
            ops=tuple(_serialize_instr(i) for i in self.instructions),
            entries=dict(self.entries),
            state_defaults=dict(self.store._defaults),
        )

    def to_text(self) -> str:
        """Readable assembly listing (for docs and debugging)."""
        entry_of = {}
        for tag, idx in self.entries.items():
            entry_of.setdefault(idx, []).append(tag)
        lines = [f"; NetASM program for switch {self.switch}"]
        for idx, instr in enumerate(self.instructions):
            marks = entry_of.get(idx)
            prefix = f"tag{sorted(marks)}" if marks else "        "
            lines.append(f"{prefix:>12}  @{idx:<4} {instr!r}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"SwitchProgram({self.switch}, {len(self.instructions)} instrs, "
            f"{len(self.entries)} entries)"
        )


# -- the lowered, shippable program form ---------------------------------------
#
# The compiled fast path above holds precompiled closures, which do not
# pickle.  Following Open Packet Processor's observation that a lowered,
# platform-independent stateful program form is what makes shipping
# programs to independent execution units tractable, `LoweredProgram` is a
# *pure-data* twin of `SwitchProgram`: flat opcode tuples whose operands
# are constants (test/expression descriptors, literal values, jump
# targets) plus the local store's default table.  `from_lowered` rebuilds
# a behaviorally identical `SwitchProgram` — reconstructing the readable
# instruction objects and *re-closing* the test/expression closures — so a
# worker process can rehydrate a shipped program once and run the same
# tight dispatch loop the parent does.
#
# Descriptor grammar (every leaf is a picklable constant):
#
#     expr  ::= ("f", field_name) | ("v", literal)
#     test  ::= ("fv", field, value) | ("ff", f1, f2)
#             | ("sv", var, (expr, ...), (expr, ...))
#     op    ::= (OP_BRANCH, test, on_true, on_false) | (OP_PAUSE, tag, var)
#             | (OP_FORK, (target, ...)) | (OP_JUMP, target)
#             | (OP_SET, field, literal)
#             | (OP_STWRITE, var, (expr, ...), (expr, ...))
#             | (OP_STDELTA, var, (expr, ...), delta)
#             | (OP_DROP,) | (OP_EMIT,)


@dataclass(frozen=True)
class LoweredProgram:
    """Picklable pure-data form of one switch's NetASM program."""

    switch: str
    ops: tuple
    entries: dict = field(compare=True)
    state_defaults: dict = field(compare=True)


def _serialize_expr(expr) -> tuple:
    if isinstance(expr, ast.Field):
        return ("f", expr.name)
    return ("v", expr.value)


def _serialize_exprs(exprs) -> tuple:
    return tuple(_serialize_expr(e) for e in exprs)


def _serialize_test(test) -> tuple:
    if isinstance(test, FieldValueTest):
        return ("fv", test.field, test.value)
    if isinstance(test, FieldFieldTest):
        return ("ff", test.field1, test.field2)
    if isinstance(test, StateVarTest):
        return ("sv", test.var, _serialize_exprs(test.index),
                _serialize_exprs(test.value))
    raise DataPlaneError(f"cannot serialize test {test!r}")


def _serialize_instr(instr: Instr) -> tuple:
    if isinstance(instr, IBranch):
        return (OP_BRANCH, _serialize_test(instr.test),
                instr.on_true, instr.on_false)
    if isinstance(instr, IPause):
        return (OP_PAUSE, instr.tag, instr.var)
    if isinstance(instr, IFork):
        return (OP_FORK, instr.targets)
    if isinstance(instr, IJump):
        return (OP_JUMP, instr.target)
    if isinstance(instr, ISet):
        return (OP_SET, instr.field, instr.value)
    if isinstance(instr, IStateWrite):
        return (OP_STWRITE, instr.var, _serialize_exprs(instr.index),
                _serialize_exprs(instr.value))
    if isinstance(instr, IStateDelta):
        return (OP_STDELTA, instr.var, _serialize_exprs(instr.index),
                instr.delta)
    if isinstance(instr, IDrop):
        return (OP_DROP,)
    if isinstance(instr, IEmit):
        return (OP_EMIT,)
    raise DataPlaneError(f"cannot serialize instruction {instr!r}")


def _revive_expr(data: tuple):
    kind, payload = data
    return ast.Field(payload) if kind == "f" else ast.Value(payload)


def _revive_exprs(data: tuple) -> tuple:
    return tuple(_revive_expr(d) for d in data)


def _revive_test(data: tuple):
    kind = data[0]
    if kind == "fv":
        return FieldValueTest(data[1], data[2])
    if kind == "ff":
        return FieldFieldTest(data[1], data[2])
    return StateVarTest(data[1], _revive_exprs(data[2]), _revive_exprs(data[3]))


def _revive_instr(op: tuple) -> Instr:
    code = op[0]
    if code == OP_BRANCH:
        return IBranch(_revive_test(op[1]), op[2], op[3])
    if code == OP_PAUSE:
        return IPause(op[1], op[2])
    if code == OP_FORK:
        return IFork(op[1])
    if code == OP_JUMP:
        return IJump(op[1])
    if code == OP_SET:
        return ISet(op[1], op[2])
    if code == OP_STWRITE:
        return IStateWrite(op[1], _revive_exprs(op[2]), _revive_exprs(op[3]))
    if code == OP_STDELTA:
        return IStateDelta(op[1], _revive_exprs(op[2]), op[3])
    if code == OP_DROP:
        return IDrop()
    if code == OP_EMIT:
        return IEmit()
    raise DataPlaneError(f"unknown lowered opcode {op!r}")


def from_lowered(lowered: LoweredProgram) -> SwitchProgram:
    """Rehydrate a :class:`SwitchProgram` from its pure-data form.

    Rebuilds the instruction objects and a fresh local store (defaults
    only — shard state is installed separately), then lets
    ``SwitchProgram.__init__`` re-close the fast-path closures.  The
    result is behaviorally identical to the program ``to_lowered`` was
    called on, and ``to_lowered`` of the result round-trips equal.
    """
    instructions = [_revive_instr(op) for op in lowered.ops]
    store = Store(lowered.state_defaults)
    return SwitchProgram(
        lowered.switch, instructions, dict(lowered.entries), store
    )


def lower_programs(switches: dict) -> dict:
    """The pure-data form of a whole data plane: ``{switch: LoweredProgram}``.

    This is the byte-level unit the execution-spec serialization ships to
    worker processes and cluster daemons — pickle it once, key it by the
    network's ``_exec_program_key``, and every executor that already holds
    that key never needs the bytes again (a TE ``rewire`` keeps the key).
    """
    return {name: program.to_lowered() for name, program in switches.items()}


def revive_programs(lowered: dict) -> dict:
    """Rehydrate a whole data plane from :func:`lower_programs` output."""
    return {name: from_lowered(lp) for name, lp in lowered.items()}


def compile_switch(
    switch: str,
    xfdd: XFDD,
    index: NodeIndex,
    placement: dict,
    state_defaults: dict,
    has_ports: bool,
) -> SwitchProgram:
    """Compile the per-switch program.

    Entry points: the root (switches with attached OBS ports) and every
    node whose state variable lives on this switch.  Stateless tests and
    field writes compile anywhere; a remote state test or state action
    compiles to PAUSE with the node's tag.
    """
    instructions: list[Instr] = []
    entries: dict[int, int] = {}
    compiled: dict = {}  # memo: node-or-continuation key -> instruction index

    def emit(instr: Instr) -> int:
        instructions.append(instr)
        return len(instructions) - 1

    def compile_branch(node: Branch) -> int:
        key = ("b", id(node))
        if key in compiled:
            return compiled[key]
        test = node.test
        if isinstance(test, StateVarTest) and state_owner(placement, test.var) != switch:
            idx = emit(IPause(index.branch_tag(node), test.var))
            compiled[key] = idx
            return idx
        # Reserve the slot, then fill in children (handles shared subtrees).
        idx = emit(IBranch(test, -1, -1))
        compiled[key] = idx
        on_true = compile_node(node.hi)
        on_false = compile_node(node.lo)
        instructions[idx] = IBranch(test, on_true, on_false)
        return idx

    def compile_leaf(leaf: Leaf) -> int:
        """Compile the leaf's execution trie: shared prefixes run once,
        packet copies fork only at divergence points (see split.leaf_groups)."""
        key = ("l", id(leaf))
        if key in compiled:
            return compiled[key]
        seqs = _ordered_seqs(leaf)
        idx = compile_group(leaf, seqs, tuple(range(len(seqs))), 0)
        compiled[key] = idx
        return idx

    def compile_group(leaf: Leaf, seqs, members: tuple, depth: int) -> int:
        key = ("g", id(leaf), members, depth)
        if key in compiled:
            return compiled[key]
        groups: dict = {}
        ends = False
        for member in members:
            seq = seqs[member]
            if len(seq) > depth:
                groups.setdefault(seq[depth], []).append(member)
            else:
                ends = True
        targets = []
        if ends:
            targets.append(emit(IEmit()))
        for action in sorted(groups, key=repr):
            targets.append(
                compile_chain(leaf, seqs, tuple(groups[action]), depth)
            )
        idx = targets[0] if len(targets) == 1 else emit(IFork(targets))
        compiled[key] = idx
        return idx

    def compile_chain(leaf: Leaf, seqs, members: tuple, depth: int) -> int:
        """One trie edge: execute the shared action, continue the group."""
        key = ("c", id(leaf), members, depth)
        if key in compiled:
            return compiled[key]
        action = seqs[members[0]][depth]
        if isinstance(action, DropAction):
            idx = emit(IDrop())
            compiled[key] = idx
            return idx
        var = action.writes_state()
        if var is not None and state_owner(placement, var) != switch:
            idx = emit(IPause(index.cont_tag(leaf, min(members), depth), var))
            compiled[key] = idx
            return idx
        if isinstance(action, FieldAssign):
            idx = emit(ISet(action.field, action.value))
        elif isinstance(action, StateAssign):
            idx = emit(IStateWrite(action.var, action.index, action.value))
        else:
            idx = emit(IStateDelta(action.var, action.index, action.delta))
        compiled[key] = idx
        # Reserve the jump slot so the action always falls into it, then
        # patch it once the continuation's location is known.
        jump_slot = emit(IJump(-1))
        continuation = compile_group(leaf, seqs, members, depth + 1)
        instructions[jump_slot] = IJump(continuation)
        return idx

    def compile_node(node: XFDD) -> int:
        if isinstance(node, Branch):
            return compile_branch(node)
        return compile_leaf(node)

    # Local store: only the variables this switch owns.
    local_defaults = {
        var: state_defaults.get(var) for var, owner in placement.items() if owner == switch
    }
    store = Store(local_defaults)

    # Entry: root for port switches.
    if has_ports:
        root_idx = compile_node(index.root)
        entries[0] = root_idx  # ROOT_TAG

    # Entries for every node this switch owns.
    stack = [index.root]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Branch):
            test = node.test
            if isinstance(test, StateVarTest) and state_owner(placement, test.var) == switch:
                tag = index.branch_tag(node)
                entries[tag] = compile_branch(node)
            stack.append(node.hi)
            stack.append(node.lo)
        else:
            seqs = _ordered_seqs(node)
            for members, depth in leaf_groups(node):
                action = seqs[members[0]][depth]
                var = action.writes_state()
                if var is not None and state_owner(placement, var) == switch:
                    tag = index.cont_tag(node, min(members), depth)
                    entries[tag] = compile_chain(node, seqs, members, depth)
    return SwitchProgram(switch, instructions, entries, store)
