"""Sharded parallel data-plane execution (§7.3, Appendix C, made runnable).

SNAP observes that ``s[inport]``-indexed state can be partitioned into
per-port shards "without worrying about synchronization, as the shards
store disjoint parts of s".  This module turns that observation into an
execution engine:

1. **Prove disjointness.**  Walking the xFDD's root-to-leaf paths (the
   same machinery as :func:`repro.analysis.packet_state
   .packet_state_mapping`) yields, for every OBS ingress port, the set of
   state variables a packet entering there can read or write — its
   *ingress state footprint*.
2. **Plan shards.**  Ports sharing any state variable are unioned into
   one shard; the result is a partition of the ingress ports such that
   packets of different shards touch provably disjoint state.  A
   variable every port can touch (an unsharded global counter) simply
   collapses all its ports into a single shard — that shard is the
   "single owner lane" everything unshardable serializes through.
3. **Execute.**  A workload is split into per-shard batches (per-shard
   arrival order preserved) and each batch runs on its own lane — a
   thread-pool worker over the shard's independent ``SwitchProgram``
   state partition.  Safe by construction: lanes share no state
   variables, forwarding state is read-only, and per-lane link counters
   are merged afterwards.
4. **Merge deterministically.**  Per-packet delivery records are
   reassembled in global arrival order, so the sharded engine is
   *delivery-equivalent* to the sequential engine (and therefore to the
   OBS ``eval`` semantics) — the property tests assert exactly that.

Each lane runs a *compiled* fast path rather than the generic
:meth:`Network._run` hop loop: pure-forwarding hop chains are memoized as
*segments* keyed by ``(switch, inport, outport, tag)`` (one dict hit and
one counter bump per traversal instead of per-hop queue churn), and the
xFDD's leading ``inport``-only branches are pre-resolved per shard port
(:meth:`SwitchProgram.resolve_inport_entry`).  Both are exact: segments
replay the same routing lookups ``_forward`` performs, entry resolution
runs the real lowered test closures.

Thread lanes share one interpreter, so CPU-bound packet processing still
serializes on the GIL.  The :class:`ProcessPoolEngine` lifts that limit:
each lane's batch ships to a *worker process* together with the shard's
private state (:meth:`Network.extract_shard_state`), runs there against a
rehydrated copy of the compiled data plane (see
:class:`repro.dataplane.netasm.LoweredProgram` — the compiled closures do
not pickle, the lowered pure-data form does), and the parent merges
delivery records, link counters, and state-store deltas back
deterministically (:meth:`Network.merge_shard_state`).  Workers cache the
rehydrated programs per ``(program_key, generation)`` token, so a
long-lived pool pays the deserialization cost once per program, not per
batch — and a TE ``rewire`` (same programs, new routing) reuses them.

Every engine honors one *lane failure contract*: if a lane raises, the
results of lanes that completed are still merged into the network
(records, link counters, and — for the process engine — state deltas)
before the error is re-raised wrapped in a :class:`DataPlaneError` naming
the failing shard.  The network is therefore never silently
half-updated: what ran is recorded, and the exception says what did not.

Engines are *pluggable*: :func:`register_engine` adds a named engine to
the registry :func:`get_engine` and ``CompilerOptions`` validation
consult, so new execution backends (the cluster daemons of
:mod:`repro.cluster`, future accelerators) plug in without touching this
module.  Select one with ``CompilerOptions(engine="sharded"|"process"|
"cluster")`` (threaded through :meth:`SnapController.network`) or pass
``engine=`` to :func:`repro.workloads.replay`.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.analysis.packet_state import (
    _path_inports,
    _path_reachable,
    _path_reads,
)
from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
)
from repro.dataplane import replication
from repro.dataplane.netasm import revive_programs
from repro.dataplane.network import (
    _EXEC_KEYS,
    MAX_HOPS,
    DeliveryRecord,
    Network,
    exec_network_spec,
    exec_program_spec,
    worker_network,
)
from repro.lang.errors import DataPlaneError
from repro.lang.packet import Packet
from repro.obs import postcards
from repro.obs.runstats import RunStats
from repro.obs.tracing import TRACER
from repro.util.registry import EngineRegistry
from repro.xfdd.diagram import iter_paths


# -- shard analysis -----------------------------------------------------------


def ingress_state_footprint(xfdd, inports) -> dict:
    """State variables reachable per ingress port: ``{port: frozenset}``.

    A variable is in port ``u``'s footprint iff some reachable
    root-to-leaf path compatible with ``inport = u`` reads or writes it.
    Conservative in the same way the packet-state mapping is — over-
    approximating a footprint can only merge shards, never split state
    that actually races.
    """
    footprint: dict = {port: set() for port in inports}
    for path, leaf in iter_paths(xfdd):
        if not _path_reachable(path):
            continue
        states = _path_reads(path) | leaf.written_state_vars()
        if not states:
            continue
        for port in _path_inports(path, inports):
            footprint[port] |= states
    return {port: frozenset(states) for port, states in footprint.items()}


@dataclass(frozen=True)
class Shard:
    """One execution lane: the ports it serves and the state it owns."""

    ports: tuple
    variables: frozenset

    def __repr__(self):
        return f"Shard(ports={list(self.ports)}, vars={sorted(self.variables)})"


class ShardPlan:
    """A proven-disjoint partition of the ingress ports.

    ``shards`` is ordered by lowest member port; ``shard_of`` maps every
    ingress port to its shard index.  ``parallelism`` is the number of
    lanes that can run concurrently; 1 means the program's state fully
    serializes (every stateful port shares a variable).
    """

    def __init__(self, shards, footprint, collapse_reasons=None):
        self.shards = tuple(shards)
        self.footprint = dict(footprint)
        self.shard_of = {
            port: index
            for index, shard in enumerate(self.shards)
            for port in shard.ports
        }
        #: ``{var: reason}`` for every variable that merged two or more
        #: ingress ports into one lane (see :func:`collapse_reasons`).
        self.collapse_reasons = dict(collapse_reasons or {})

    @property
    def parallelism(self) -> int:
        return len(self.shards)

    def summary(self) -> dict:
        """Reporting: lane count and the size of each lane."""
        return {
            "shards": len(self.shards),
            "ports_per_shard": [len(s.ports) for s in self.shards],
            "sharded_vars": sum(len(s.variables) for s in self.shards),
            "collapse_reasons": dict(self.collapse_reasons),
        }

    def __repr__(self):
        return f"ShardPlan({len(self.shards)} shards: {list(self.shards)})"


def group_ports_by_footprint(footprint: dict, ports) -> list:
    """Union-find partition of ``ports`` into disjoint-state groups.

    Every state variable merges all ports whose footprint contains it.
    Ports with empty footprints (pure stateless traffic) become singleton
    groups — they can run on any lane.  Returns
    ``[(ports_tuple, variables_frozenset)]`` ordered by lowest member
    port.  Shared by the data-plane shard planner and the batched OBS
    mirror (:mod:`repro.workloads.obs_engine`).
    """
    ports = list(ports)
    parent = {port: port for port in ports}

    def find(port):
        root = port
        while parent[root] != root:
            root = parent[root]
        while parent[port] != root:  # path compression
            parent[port], port = root, parent[port]
        return root

    var_ports: dict = {}
    for port, states in footprint.items():
        for var in states:
            var_ports.setdefault(var, []).append(port)
    for members in var_ports.values():
        anchor = find(members[0])
        for port in members[1:]:
            parent[find(port)] = anchor

    groups: dict = {}
    for port in ports:
        groups.setdefault(find(port), []).append(port)
    return [
        (
            tuple(members),
            frozenset().union(*(footprint[p] for p in members)),
        )
        for members in sorted(groups.values())
    ]


def collapse_reasons(footprint: dict, shards, root) -> dict:
    """Why multi-port shards collapsed: ``{var: human-readable reason}``.

    A variable reachable from two or more ingress ports forces those
    ports onto one serialized owner lane.  Each reason names the ports,
    the variable's effect kind (from the compiled diagram), and — when
    the kind is replica-mergeable — that state-compute replication could
    lift the collapse (ROADMAP, arXiv:2309.14647).
    """
    from repro.analysis.effects import xfdd_effects

    var_ports: dict = {}
    for port, variables in footprint.items():
        for var in variables:
            var_ports.setdefault(var, []).append(port)
    kinds = xfdd_effects(root) if root is not None else {}
    reasons: dict = {}
    for shard in shards:
        if len(shard.ports) <= 1:
            continue
        for var in sorted(shard.variables):
            ports = sorted(var_ports.get(var, ()))
            if len(ports) <= 1:
                continue
            kind = kinds.get(var)
            kind_name = kind.value if kind is not None else "READ_ONLY"
            if kind is not None and kind.mergeable:
                remedy = (
                    f"its {kind_name} updates are replica-mergeable, so "
                    "state-compute replication could run these ports in "
                    "parallel"
                )
            else:
                remedy = (
                    f"its {kind_name} updates do not commute, so the "
                    "ports must serialize on the owner lane"
                )
            reasons[var] = (
                f"SNAP-W104: state variable '{var}' is reachable from "
                f"ingress ports {ports}, collapsing them into one lane; "
                f"{remedy}"
            )
    return reasons


def plan_shards(network: Network) -> ShardPlan:
    """Partition the network's ingress ports into disjoint-state shards."""
    ports = sorted(network.topology.ports)
    root = network.index.root
    footprint = ingress_state_footprint(root, ports)
    shards = [
        Shard(members, variables)
        for members, variables in group_ports_by_footprint(footprint, ports)
    ]
    return ShardPlan(
        shards, footprint, collapse_reasons(footprint, shards, root)
    )


# -- shard-plan caching -------------------------------------------------------


def _plan_cache_key(network: Network) -> tuple:
    """What the shard plan actually depends on.

    The plan is a function of the xFDD (state footprints walk its paths)
    and the topology's ingress ports.  ``rewire`` builds a fresh object,
    so it never sees a stale cache; but ``adopt_state`` and direct
    ``index``/``switches``/port mutation reuse the object — keying the
    cache on the root diagram and a port fingerprint makes it
    self-invalidating on every such path.  The key holds the root
    *object* (not its ``id``): the cache entry keeps it alive, so a
    recycled address can never masquerade as an unchanged diagram, and
    comparisons use identity (see :func:`_same_key`).
    """
    return (
        network.index.root if network.index is not None else None,
        tuple(sorted(network.topology.ports.items())),
    )


def _same_key(a: tuple, b: tuple) -> bool:
    """Key equality: root diagram by *identity*, ports by value."""
    return a[0] is b[0] and a[1] == b[1]


#: Module-level plan reuse across TE rewires.  ``rewire`` builds a fresh
#: Network object (empty per-object cache) sharing the parent's program
#: token and xFDD; keying a second cache level on that token lets the
#: rewired network's first run revalidate the existing plan against the
#: root-identity/port fingerprint and reuse it instead of re-deriving
#: the footprints from scratch.  Bounded: a long-lived controller sees a
#: new token per policy rebuild.
_SHARD_PLANS: dict = {}
_SHARD_PLAN_LIMIT = 16


def plan_for(network: Network) -> ShardPlan:
    """The network's shard plan, cached on the network *and* on its
    program token, keyed by :func:`_plan_cache_key` so topology/xFDD
    mutation invalidates it while TE rewires reuse it."""
    key = _plan_cache_key(network)
    cached = getattr(network, "_shard_plan", None)
    if cached is not None and _same_key(cached[0], key):
        return cached[1]
    token = getattr(network, "_exec_program_key", None)
    entry = _SHARD_PLANS.get(token)
    if entry is not None and _same_key(entry[0], key):
        network._shard_plan = entry
        return entry[1]
    plan = plan_shards(network)
    entry = (key, plan)
    network._shard_plan = entry
    if token is not None:
        _SHARD_PLANS[token] = entry
        while len(_SHARD_PLANS) > _SHARD_PLAN_LIMIT:
            _SHARD_PLANS.pop(next(iter(_SHARD_PLANS)))
    return plan


def refresh_exec_keys(network: Network) -> None:
    """Mint fresh worker-cache tokens after in-place mutation.

    The exec tokens normally change only through ``__init__`` /
    ``rewire``; grafting a different program onto an existing network
    object (the same mutation path the shard-plan cache self-invalidates
    on) would otherwise hit warm worker caches — in worker processes or
    on cluster daemons — built for the *old* program.  The fingerprint
    matches the plan cache's: the xFDD root by identity plus the port
    map.
    """
    fingerprint = _plan_cache_key(network)
    observed = getattr(network, "_exec_fingerprint", None)
    if observed is None:
        network._exec_fingerprint = fingerprint
    elif not _same_key(observed, fingerprint):
        network._exec_fingerprint = fingerprint
        network._exec_program_key = next(_EXEC_KEYS)
        network._exec_network_key = next(_EXEC_KEYS)


# -- engines ------------------------------------------------------------------


def _split_batches(plan: ShardPlan, arrivals) -> list:
    """Arrival list -> ``[(shard_index, [(global_index, packet, port)])]``,
    ordered by shard index, per-shard arrival order preserved."""
    shard_of = plan.shard_of
    batches: dict = {}
    for index, (packet, port) in enumerate(arrivals):
        shard = shard_of.get(port)
        if shard is None:
            raise DataPlaneError(f"no OBS port {port} in the topology")
        batches.setdefault(shard, []).append((index, packet, port))
    return sorted(batches.items())


def batch_footprint(plan: ShardPlan, batch) -> frozenset:
    """The state variables one batch can actually touch.

    The union of the batch's ingress ports' footprints — a subset of the
    shard's variables (a shard owns the footprints of *all* its ports,
    but a given batch may only enter through some of them).  Shipping
    only this slice to a remote lane is sound for the same reason the
    shards are: packets entering elsewhere provably never read or write
    the rest.
    """
    ports = {port for _, _, port in batch}
    footprint = plan.footprint
    return frozenset().union(
        *(footprint.get(port, frozenset()) for port in ports)
    ) if ports else frozenset()


def _merge_lane_outcomes(network: Network, lane_results, total: int,
                         complete: bool):
    """Deterministic merge: records in global arrival order, link counters
    summed.  With ``complete=False`` (a lane failed) the completed lanes'
    records and counters are still merged — the failure contract — and
    ``None`` is returned instead of a result list."""
    by_index: dict = {}
    link_packets = network.link_packets
    for records_by_index, links in lane_results:
        by_index.update(records_by_index)
        for link, count in links.items():
            link_packets[link] = link_packets.get(link, 0) + count
    deliveries = network.deliveries
    if complete:
        results = [by_index[index] for index in range(total)]
        for records in results:
            deliveries.extend(records)
        return results
    for index in sorted(by_index):
        deliveries.extend(by_index[index])
    return None


def _raise_lane_failure(plan: ShardPlan, shard_index: int, exc: Exception):
    shard = plan.shards[shard_index]
    detail = ""
    reasons = [
        plan.collapse_reasons[var]
        for var in sorted(shard.variables)
        if var in plan.collapse_reasons
    ]
    if reasons:
        detail = " [lane collapse: " + "; ".join(reasons) + "]"
    raise DataPlaneError(
        f"execution lane for shard {shard_index} "
        f"(ports {list(shard.ports)}) failed: {exc}{detail}"
    ) from exc


def _lane_span_runner(runner, parent, shard_index: int, batch_size: int,
                      replicated: bool):
    """Wrap a lane runner in an ``engine.lane`` span.

    Lane runners execute on pool threads where the tracer's thread-local
    stack is empty, so the engine's run span is passed as the explicit
    parent — spans from every lane stitch into one trace.
    """
    def run():
        with TRACER.span(
            "engine.lane", parent=parent, shard=shard_index,
            batch=batch_size, replicated=replicated,
        ):
            return runner()
    return run


class SequentialEngine:
    """Run-to-completion in arrival order — delegates to ``inject_many``."""

    name = "sequential"

    def run(self, network: Network, arrivals) -> list:
        """One record list per injected packet, in arrival order."""
        sampler = postcards.active_sampler()
        if sampler is None:
            return network.inject_many(arrivals)
        # Postcard sampling: sampled packets run the generic traced walk
        # (identical opcode effects and deliveries — see
        # repro.obs.postcards); the rest take the normal path.
        results: list = []
        deliveries = network.deliveries
        run = network._run
        new_arrivals = network._new_arrivals
        for index, (packet, port) in enumerate(arrivals):
            if sampler.should(index):
                records = postcards.run_traced(network, packet, port, index)
            else:
                records = run(new_arrivals(packet, port))
            deliveries.extend(records)
            results.append(records)
        return results

    def __repr__(self):
        return "SequentialEngine()"


class ShardedEngine:
    """Per-shard parallel execution with deterministic merge.

    ``max_workers=None`` sizes the thread pool to the machine
    (``os.cpu_count()``); lanes never exceed the plan's parallelism.
    With one worker (or one shard) the lanes run inline on the calling
    thread — same code path, no pool.

    ``replicate_state`` controls state-compute replication
    (:mod:`repro.dataplane.replication`): ``None`` defers to the
    network's ``replicate_state`` attribute (set by the controller from
    ``CompilerOptions``), a boolean overrides it for this engine.  When
    on, collapse-causing mergeable variables run on per-lane replicas
    and the parent merges their update logs deterministically after
    every lane has stopped; lanes whose batch cannot touch a replicated
    variable run in place on the parent store exactly as before.
    """

    name = "sharded"

    def __init__(self, max_workers: int | None = None,
                 replicate_state: bool | None = None):
        self.max_workers = max_workers
        self.replicate_state = replicate_state
        #: What the previous :meth:`run` planned: lane count, the
        #: per-variable owner-lane collapse reasons (the bench-level
        #: explanation for parallelism flatlines), and — when replication
        #: ran — the replicated variables and their log sizes.
        self.last_run_stats: dict = {}

    def run(self, network: Network, arrivals) -> list:
        arrivals = list(arrivals)
        rplan = self.replica_plan(network)
        plan = rplan.plan
        batches = _split_batches(plan, arrivals)
        stats = RunStats(
            lanes=len(batches),
            parallelism=plan.parallelism,
            collapse_reasons=dict(plan.collapse_reasons),
            replicated_vars=sorted(rplan.replicated),
            replica_reasons=dict(rplan.replica_reasons),
        )
        self.last_run_stats = stats
        replicate = bool(rplan.replicated)
        epoch = replication.next_epoch(network) if replicate else 0
        with TRACER.span(
            "engine.run", engine=self.name, lanes=len(batches),
            parallelism=plan.parallelism, packets=len(arrivals),
        ) as run_span:
            lanes = []
            for shard_index, batch in batches:
                lane_vars = replication.lane_replicas(rplan, batch) \
                    if replicate else {}
                if lane_vars:
                    runner = replication.replica_runner(
                        network, rplan, shard_index, batch, lane_vars, epoch,
                        self._make_lane,
                    )
                else:
                    lane = self._make_lane(
                        network, plan.shards[shard_index], batch
                    )
                    runner = lane.run
                if TRACER.enabled:
                    # Lanes run on pool threads, which cannot inherit the
                    # thread-local parent: pass the run span explicitly.
                    runner = _lane_span_runner(
                        runner, run_span, shard_index, len(batch),
                        bool(lane_vars),
                    )
                lanes.append((shard_index, runner))
            workers = self.max_workers or os.cpu_count() or 1
            workers = min(workers, len(lanes))
            outcomes: list = []
            merges: list = []
            failure = None
            if workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        (shard_index, pool.submit(runner))
                        for shard_index, runner in lanes
                    ]
                    for shard_index, future in futures:
                        try:
                            result = future.result()
                        except Exception as exc:
                            if failure is None:
                                failure = (shard_index, exc)
                            continue
                        outcomes.append(result[:2])
                        if len(result) > 2:
                            merges.append(result[2:])
            else:
                # Inline: lanes run serially in shard order; a failure stops
                # the later lanes from ever starting.
                for shard_index, runner in lanes:
                    try:
                        result = runner()
                    except Exception as exc:
                        failure = (shard_index, exc)
                        break
                    outcomes.append(result[:2])
                    if len(result) > 2:
                        merges.append(result[2:])
            # Replica merges are deferred until every lane has stopped:
            # lanes seed from the parent snapshot, so merging mid-run would
            # double-count.  Completed lanes merge even when another lane
            # failed — the lane failure contract — and the per-kind merges
            # commute, so the merge order cannot matter.
            if merges:
                log_entries = log_bytes = 0
                for state, log in merges:
                    replication.merge_state(network, state)
                    replication.apply_replica_log(
                        network, rplan.replicated, log, epoch
                    )
                    log_entries += replication.log_entries(log)
                    log_bytes += len(
                        pickle.dumps(log, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                stats.replica_log_entries = log_entries
                stats.replica_log_bytes = log_bytes
                run_span.set_attr("replica_log_bytes", log_bytes)
            results = _merge_lane_outcomes(
                network, outcomes, len(arrivals), complete=failure is None
            )
            stats.publish(self.name, packets=len(arrivals))
            if failure is not None:
                run_span.set_attr("failed_shard", failure[0])
                _raise_lane_failure(plan, *failure)
        return results

    def plan_for(self, network: Network) -> ShardPlan:
        """The network's shard plan (cached, mutation-invalidated)."""
        return plan_for(network)

    def replica_plan(self, network: Network):
        """The network's replica plan (cached; see
        :func:`repro.dataplane.replication.replica_plan_for`)."""
        return replication.replica_plan_for(network, self.replicate_state)

    def _make_lane(self, network: Network, shard, batch):
        """The execution lane for one shard's batch.

        Subclasses (the vector engines) override this to swap the
        per-packet interpreter lane for the columnar tier while reusing
        the same planning, batching, merge, and failure contract.
        """
        return _Lane(network, shard, batch)

    def __repr__(self):
        return f"ShardedEngine(max_workers={self.max_workers})"


class ProcessPoolEngine:
    """Per-shard parallel execution on a pool of worker *processes*.

    Each disjoint-state shard's batch ships to a worker along with the
    *footprint-restricted* slice of the shard's private state — only the
    variables the batch's ingress ports can actually touch, the same
    restriction the batched OBS mirror ships — and the worker runs the
    same compiled lane the thread engine uses, against a network
    rehydrated from the pure-data
    :class:`~repro.dataplane.netasm.LoweredProgram` form, sending back
    ``(records, link counters, state deltas)``, which the parent merges
    in deterministic global arrival order.  Workers cache rehydrated
    programs and networks in per-process tables keyed by the network's
    execution tokens, so after the first batch the *rehydration* cost is
    gone; each task still carries the (parent-side cached) spec bytes —
    a worker cannot be targeted, so the parent cannot know which workers
    are warm — but warm workers never deserialize them.
    :attr:`last_run_stats` records what the previous :meth:`run` shipped
    (lanes, state bytes, spec bytes) for the benchmarks.

    The pool is created lazily on first :meth:`run` and survives across
    calls (and across TE ``rewire`` hot swaps — the program token is
    unchanged, so worker caches stay warm).  :meth:`restart` shuts it
    down so the next run starts fresh — the controller calls this on
    policy rebuilds.  With one worker (or on a single-CPU host) lanes run
    inline on the calling thread with identical semantics.

    Lane failures follow the engine failure contract (see module
    docstring): completed lanes' records, counters, *and state deltas*
    are merged before the wrapped :class:`DataPlaneError` is raised.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None,
                 replicate_state: bool | None = None):
        self.max_workers = max_workers
        self.replicate_state = replicate_state
        self._pool = None
        self._spec_cache: tuple | None = None  # (network_key, bytes)
        #: What the previous run shipped: ``{"lanes", "state_bytes",
        #: "spec_bytes"}`` (zeros for inline fallbacks), plus the
        #: replicated variables and their log sizes when replication ran.
        self.last_run_stats: dict = {}

    def run(self, network: Network, arrivals) -> list:
        arrivals = list(arrivals)
        rplan = self.replica_plan(network)
        plan = rplan.plan
        batches = _split_batches(plan, arrivals)
        workers = self.max_workers or os.cpu_count() or 1
        if workers <= 1 or len(batches) <= 1:
            # One worker or one shard: shipping everything to a single
            # process buys no parallelism — run inline with identical
            # semantics (state mutated in place, exactly like a
            # completed worker merge).
            self.last_run_stats = RunStats(
                lanes=len(batches), state_bytes=0, spec_bytes=0,
                collapse_reasons=dict(plan.collapse_reasons),
                replicated_vars=sorted(rplan.replicated),
                replica_reasons=dict(rplan.replica_reasons),
            )
            inline = ShardedEngine(
                max_workers=1, replicate_state=self.replicate_state
            )
            return inline.run(network, arrivals)
        refresh_exec_keys(network)
        program_key = network._exec_program_key
        network_key = network._exec_network_key
        spec_bytes = self._spec_bytes(network, network_key)
        pool = self._ensure_pool(workers)
        replicate = bool(rplan.replicated)
        epoch = replication.next_epoch(network) if replicate else 0
        with TRACER.span(
            "engine.run", engine=self.name, lanes=len(batches),
            packets=len(arrivals),
        ) as run_span:
            sampler = postcards.active_sampler()
            telemetry = None
            if TRACER.enabled or sampler is not None:
                telemetry = {
                    "trace": run_span.context(),
                    "postcard_every": sampler.every if sampler else 0,
                }
            futures = []
            state_bytes = 0
            try:
                for shard_index, batch in batches:
                    shard = plan.shards[shard_index]
                    variables = batch_footprint(plan, batch)
                    lane_vars = replication.lane_replicas(rplan, batch) \
                        if replicate else {}
                    replica_spec = (
                        replication.wire_spec(lane_vars, epoch)
                        if lane_vars else None
                    )
                    # Pre-pickled once: the worker unpickles this blob, so
                    # the byte accounting below is free instead of a second
                    # serialization of the same tables.  Replica seeds ride
                    # in the same slice; the worker diffs against them.
                    state_blob = pickle.dumps(
                        network.extract_shard_state(
                            set(variables) | set(lane_vars)
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    state_bytes += len(state_blob)
                    payload = (
                        program_key,
                        network_key,
                        spec_bytes,
                        shard.ports,
                        tuple(sorted(variables)),
                        replica_spec,
                        state_blob,
                        batch,
                        telemetry,
                    )
                    futures.append(
                        (shard_index, pool.submit(_process_lane, payload))
                    )
            except BrokenProcessPool as exc:
                # The pool died between runs (a worker was killed): discard
                # it so the next run starts fresh, then surface the error.
                self.close()
                raise DataPlaneError(
                    f"process-pool engine lost its workers: {exc}"
                ) from exc
            stats = RunStats(
                lanes=len(batches),
                state_bytes=state_bytes,
                # A worker cannot be targeted, so every task carries the spec.
                spec_bytes=len(spec_bytes) * len(batches),
                collapse_reasons=dict(plan.collapse_reasons),
                replicated_vars=sorted(rplan.replicated),
                replica_reasons=dict(rplan.replica_reasons),
            )
            self.last_run_stats = stats
            outcomes: list = []
            failure = None
            log_entries = log_bytes = 0
            for shard_index, future in futures:
                try:
                    records, links, state, log, lane_obs = future.result()
                except Exception as exc:
                    if failure is None:
                        failure = (shard_index, exc)
                    continue
                # Safe to merge while later lanes still run: every lane's
                # seed was extracted and pickled before the first merge.
                network.merge_shard_state(state)
                if log is not None:
                    replication.apply_replica_log(
                        network, rplan.replicated, log, epoch
                    )
                    log_entries += replication.log_entries(log)
                    log_bytes += len(
                        pickle.dumps(log, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                if lane_obs is not None:
                    TRACER.adopt(lane_obs.get("spans"))
                    postcards.adopt(lane_obs.get("postcards"))
                outcomes.append((records, links))
            if replicate:
                stats.replica_log_entries = log_entries
                stats.replica_log_bytes = log_bytes
            if failure is not None and isinstance(failure[1], BrokenProcessPool):
                # A worker crashed mid-batch: the executor is permanently
                # broken — release it so the next run recreates the pool.
                self.close()
            results = _merge_lane_outcomes(
                network, outcomes, len(arrivals), complete=failure is None
            )
            stats.publish(self.name, packets=len(arrivals))
            if failure is not None:
                run_span.set_attr("failed_shard", failure[0])
                _raise_lane_failure(plan, *failure)
        return results

    def plan_for(self, network: Network) -> ShardPlan:
        """The network's shard plan (cached, mutation-invalidated)."""
        return plan_for(network)

    def replica_plan(self, network: Network):
        """The network's replica plan (cached; see
        :func:`repro.dataplane.replication.replica_plan_for`)."""
        return replication.replica_plan_for(network, self.replicate_state)

    # -- pool and spec lifecycle ------------------------------------------

    def _spec_bytes(self, network: Network, network_key) -> bytes:
        cached = self._spec_cache
        if cached is not None and cached[0] == network_key:
            return cached[1]
        spec_bytes = _network_spec_bytes(network)
        self._spec_cache = (network_key, spec_bytes)
        return spec_bytes

    def _ensure_pool(self, workers: int):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
            _LIVE_POOLS.append(self._pool)
        return self._pool

    def restart(self) -> None:
        """Shut the worker pool down; the next run starts a fresh one.

        Fresh workers mean fresh rehydration caches — the controller
        calls this on policy rebuilds, where the old compiled programs
        can never be reused.  TE rewires do *not* restart the pool.
        """
        self.close()

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        pool, self._pool = self._pool, None
        self._spec_cache = None
        if pool is not None:
            if pool in _LIVE_POOLS:
                _LIVE_POOLS.remove(pool)
            pool.shutdown(wait=True, cancel_futures=True)

    def __repr__(self):
        state = "live" if self._pool is not None else "idle"
        return f"ProcessPoolEngine(max_workers={self.max_workers}, {state})"


#: Pools not yet closed explicitly; drained at interpreter exit so stray
#: worker processes never outlive the parent.
_LIVE_POOLS: list = []


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - exit path
    while _LIVE_POOLS:
        _LIVE_POOLS.pop().shutdown(wait=False, cancel_futures=True)


# -- the engine registry ------------------------------------------------------
#
# Engines plug in by name: an entry maps a name to a factory (a callable
# returning a fresh engine, or a lazy "module:attr" string resolved on
# first use, so registering a name does not import its implementation).
# *Stateful* engines own OS resources (worker pools, daemons); their
# *name* resolves to one shared instance so ad-hoc ``replay(...,
# engine="process")`` calls reuse one pool instead of leaking a pool per
# call, while sessions get a private instance via make_session_engine.

_ENGINE_REGISTRY = EngineRegistry("data-plane engine")


def register_engine(name: str, factory, *, stateful: bool = False) -> None:
    """Register (or replace) a named data-plane engine.

    ``factory`` is a zero-argument callable returning an engine, or a
    ``"module:attr"`` string resolved lazily on first use.  ``stateful``
    engines are shared per name by :func:`get_engine` and instantiated
    privately per session by :func:`make_session_engine`.
    """
    _ENGINE_REGISTRY.register(name, factory, stateful=stateful)


def engine_names() -> tuple:
    """The registered engine names ``CompilerOptions`` accepts."""
    return _ENGINE_REGISTRY.names()


def get_engine(engine):
    """Resolve an engine name (or pass an engine instance through)."""
    return _ENGINE_REGISTRY.resolve(engine)


def make_session_engine(engine):
    """A *private* instance for a session, or None to use the name as-is.

    Stateful engine names (``"process"``, ``"cluster"``) get one
    instance per controller session, so the session lifecycle (pool
    survives TE rewires, restarts on policy rebuilds, ``close()`` tears
    it down) never touches a pool other sessions or ad-hoc replays are
    using.  Stateless names and engine instances return None — the
    caller passes them through unchanged.
    """
    return _ENGINE_REGISTRY.session_instance(engine)


register_engine("sequential", SequentialEngine)
register_engine("sharded", ShardedEngine)
register_engine("process", ProcessPoolEngine, stateful=True)
# Lazy: resolving the name imports repro.cluster only when first used.
register_engine("cluster", "repro.cluster.engine:ClusterEngine", stateful=True)
# Lazy: the vector tier imports numpy only when first used.  Stateless —
# kernel caches are module-global, keyed by execution-program tokens.
register_engine("vector", "repro.dataplane.vector:VectorEngine")
register_engine("vector-jit", "repro.dataplane.vector:VectorJitEngine")


def make_lane(kind, network: "Network", shard: "Shard", batch):
    """A lane of the requested kind (``None``/"scalar", "vector",
    "vector-jit") — the cluster worker's entry point for lane opt-in.
    Degrades to the scalar lane when numpy is unavailable."""
    if kind in (None, "", "scalar"):
        return _Lane(network, shard, batch)
    if kind in ("vector", "vector-jit"):
        try:
            from repro.dataplane.vector import make_vector_lane
        except ImportError:  # pragma: no cover - only without numpy
            return _Lane(network, shard, batch)
        return make_vector_lane(kind, network, shard, batch)
    raise DataPlaneError(f"unknown lane kind {kind!r}")


# -- the per-shard lane -------------------------------------------------------

_STRIP = (SNAP_INPORT, SNAP_OUTPORT, SNAP_NODE)


class _Lane:
    """One shard's compiled execution lane.

    Processes its batch in per-shard arrival order, producing exactly the
    records the sequential engine would (same packets, egresses, and hop
    counts — the equivalence property tests compare them field by field).
    Forwarding hop chains are memoized as segments; per-segment traversal
    counters are expanded into per-link packet counts at the end.
    """

    __slots__ = ("network", "shard", "batch", "_segments", "_seg_counts")

    def __init__(self, network: Network, shard: Shard, batch):
        self.network = network
        self.shard = shard
        self.batch = batch  # [(global_index, packet, port)]
        self._segments: dict = {}  # (switch, u, v, tag) -> (stop, links)
        self._seg_counts: dict = {}

    def run(self):
        """Returns ``({global_index: [DeliveryRecord]}, {link: count})``."""
        results: dict = {}
        run_packet = self._run_packet
        sampler = postcards.active_sampler()
        traced_links: dict = {}
        if sampler is None:
            for index, packet, port in self.batch:
                results[index] = run_packet(packet, port)
        else:
            # Sampled packets take the generic traced walk (identical
            # records and state effects; link counts land in the local
            # ``traced_links`` so lanes never race on shared counters).
            net = self.network
            should = sampler.should
            for index, packet, port in self.batch:
                if should(index):
                    results[index] = postcards.run_traced(
                        net, packet, port, index, links=traced_links
                    )
                else:
                    results[index] = run_packet(packet, port)
        links: dict = {}
        segments = self._segments
        for key, count in self._seg_counts.items():
            for link in segments[key][1]:
                links[link] = links.get(link, 0) + count
        for link, count in traced_links.items():
            links[link] = links.get(link, 0) + count
        return results, links

    # -- per-packet interpreter -------------------------------------------

    def _run_packet(self, packet: Packet, port: int) -> list:
        net = self.network
        ports = net.topology.ports
        segments = self._segments
        seg_counts = self._seg_counts
        # Inlined add_header: one dict copy for tag + inport.
        fields = dict(packet._fields)
        fields["inport"] = port
        fields[SNAP_INPORT] = port
        fields[SNAP_NODE] = ROOT_TAG
        tagged = Packet.__new__(Packet)
        tagged._fields = fields
        tagged._hash = None

        program = net.switches[ports[port]]
        entry = program.resolve_inport_entry(ROOT_TAG, tagged, port)

        # Fast path: one outcome that emits to a valid egress — the
        # overwhelmingly common case — needs no copy stack at all.
        outcomes = program.process(tagged, entry=entry)
        if len(outcomes) == 1 and outcomes[0].kind == "emit":
            outcome = outcomes[0]
            fields = outcome.packet._fields
            egress = fields.get("outport")
            if egress is not None and egress in ports:
                switch = program.switch
                total = 0
                if ports[egress] != switch:
                    key = (switch, port, egress, DONE_TAG)
                    seg = segments.get(key)
                    if seg is None:
                        seg = self._walk(switch, port, egress, DONE_TAG)
                        segments[key] = seg
                    seg_counts[key] = seg_counts.get(key, 0) + 1
                    total = len(seg[1])
                    if total > MAX_HOPS:
                        raise DataPlaneError(
                            "packet exceeded hop limit (routing loop?)"
                        )
                stripped = dict(fields)
                del stripped[SNAP_INPORT]
                stripped.pop(SNAP_OUTPORT, None)
                del stripped[SNAP_NODE]
                out = Packet.__new__(Packet)
                out._fields = stripped
                out._hash = None
                return [DeliveryRecord(out, egress, total)]

        records: list = []
        # Depth-first over packet copies, first-emitted first — the same
        # order the (fixed) sequential ``_run`` processes them in.  Stack
        # items are resume tuples or DeliveryRecords; a record on the
        # stack is an already-computed delivery whose forwarding hops the
        # sequential engine would still be walking, so it surfaces in the
        # same depth-first position.  ``outcomes`` (already produced
        # above — processing is stateful, never rerun) seeds the loop.
        stack: list = []
        switch = program.switch
        hops = 0
        while True:
            in_flight = None
            for outcome in outcomes:
                kind = outcome.kind
                if kind == "emit":
                    # Inlined emit hot path.  A DONE packet is never
                    # processed again, so the SNAP-header writes the
                    # generic ``_handle_outcome`` makes before forwarding
                    # would be stripped unread at the egress: deliver the
                    # stripped packet directly and save both copies.
                    fields = outcome.packet._fields
                    egress = fields.get("outport")
                    if egress is None or egress not in ports:
                        records.append(
                            DeliveryRecord(outcome.packet, None, hops)
                        )
                        continue
                    local = ports[egress] == switch
                    total = hops
                    if not local:
                        u = fields.get(SNAP_INPORT)
                        key = (switch, u, egress, DONE_TAG)
                        seg = segments.get(key)
                        if seg is None:
                            seg = self._walk(switch, u, egress, DONE_TAG)
                            segments[key] = seg
                        seg_counts[key] = seg_counts.get(key, 0) + 1
                        total += len(seg[1])
                        if total > MAX_HOPS:
                            raise DataPlaneError(
                                "packet exceeded hop limit (routing loop?)"
                            )
                    stripped = dict(fields)
                    del stripped[SNAP_INPORT]
                    stripped.pop(SNAP_OUTPORT, None)
                    del stripped[SNAP_NODE]
                    out = Packet.__new__(Packet)
                    out._fields = stripped
                    out._hash = None
                    record = DeliveryRecord(out, egress, total)
                    if local:
                        # Delivered at this switch: surfaces before any
                        # queued copy, exactly like Network._step.
                        records.append(record)
                    elif in_flight is None:
                        in_flight = [record]
                    else:
                        in_flight.append(record)
                elif kind == "drop":
                    records.append(DeliveryRecord(outcome.packet, None, hops))
                else:
                    resume = self._handle_pause(outcome, switch, hops)
                    if in_flight is None:
                        in_flight = [resume]
                    else:
                        in_flight.append(resume)
            if in_flight is not None:
                stack.extend(reversed(in_flight))
            while stack and type(stack[-1]) is DeliveryRecord:
                records.append(stack.pop())
            if not stack:
                return records
            program, pkt, entry, hops = stack.pop()
            switch = program.switch
            outcomes = program.process(pkt, entry=entry)

    def _handle_pause(self, outcome, switch: str, hops: int):
        """A pause outcome -> the next processing stop.

        Mirrors :meth:`Network._handle_outcome`'s retag logic + the
        pure-forwarding hops up to the variable's owner switch, with the
        forwarding collapsed into a memoized segment.
        """
        pkt = outcome.packet
        net = self.network
        fields = pkt._fields
        u = fields.get(SNAP_INPORT)
        # Ensure the tagged egress candidate can reach the variable
        # (identical logic to Network._handle_outcome).
        var = outcome.var
        v = fields.get(SNAP_OUTPORT)
        needs_retag = True
        if v is not None:
            pos = net._path_pos.get((u, v))
            if (
                pos is not None
                and switch in pos
                and var in net.mapping.states_for(u, v)
            ):
                owner = net.placement[var]
                if owner in pos and pos[owner] >= pos[switch]:
                    needs_retag = False
        if needs_retag:
            candidate = net._candidate_egress(u, var, switch)
            if candidate is None:
                raise DataPlaneError(
                    f"no candidate egress for flow from port {u} pausing on "
                    f"{var!r} at {switch}"
                )
            pkt = pkt.modify(SNAP_OUTPORT, candidate)
            v = candidate
        tag = fields.get(SNAP_NODE)
        key = (switch, u, v, tag)
        seg = self._segments.get(key)
        if seg is None:
            seg = self._walk(switch, u, v, tag)
            self._segments[key] = seg
        self._seg_counts[key] = self._seg_counts.get(key, 0) + 1
        hops += len(seg[1])
        if hops > MAX_HOPS:
            raise DataPlaneError("packet exceeded hop limit (routing loop?)")
        program = net.switches[seg[0]]
        return (program, pkt, program.entries[tag], hops)

    def _walk(self, switch: str, u: int, v: int, tag: int):
        """Replay ``Network._forward``'s hop decisions until the packet
        reaches a switch that can act on it (process the tag, or deliver
        a DONE packet at its egress)."""
        net = self.network
        switches = net.switches
        rules = net.rules
        done = tag == DONE_TAG
        egress_switch = net.topology.port_switch(v)
        links = []
        current = switch
        while True:
            nxt = rules.next_hop(current, u, v)
            if nxt is None:
                chain = net._path_next.get((u, v))
                if chain is not None:
                    nxt = chain.get(current)
            if nxt is None and done:
                nxt = net._default_next_hop(current, egress_switch)
            if nxt is None:
                raise DataPlaneError(
                    f"no route at {current} for flow ({u}, {v}) (tag={tag})"
                )
            links.append((current, nxt))
            if len(links) > MAX_HOPS:
                raise DataPlaneError(
                    "packet exceeded hop limit (routing loop?)"
                )
            current = nxt
            if done:
                if current == egress_switch:
                    return current, tuple(links)
            elif tag in switches[current].entries:
                return current, tuple(links)


# -- process-pool worker side -------------------------------------------------
#
# A worker never sees the parent's Network: it receives a *spec* — a
# pickled dict of pure data (see network.exec_network_spec /
# exec_program_spec) — and rehydrates a lane-capable Network from it.
# Rehydration happens once per process per network token; the per-program
# half (closure re-closing, the expensive part) is cached separately so
# TE rewires reuse it.


def _network_spec_bytes(network: Network) -> bytes:
    """Serialize everything a worker lane needs, as pure data."""
    spec = exec_network_spec(network)
    spec["programs"] = exec_program_spec(network)
    return pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)


#: Per-process rehydration caches (worker globals).  Bounded: a worker
#: serving a long-lived session sees a new network token per hot swap,
#: and old entries must not accumulate.
_WORKER_PROGRAMS: dict = {}
_WORKER_NETWORKS: dict = {}
_WORKER_CACHE_LIMIT = 4


def _trim_cache(cache: dict) -> None:
    while len(cache) > _WORKER_CACHE_LIMIT:
        cache.pop(next(iter(cache)))


def _worker_network(program_key, network_key, spec_bytes: bytes) -> Network:
    network = _WORKER_NETWORKS.get(network_key)
    if network is not None:
        return network
    spec = pickle.loads(spec_bytes)
    programs = _WORKER_PROGRAMS.get(program_key)
    if programs is None:
        programs = revive_programs(spec["programs"])
        _WORKER_PROGRAMS[program_key] = programs
        _trim_cache(_WORKER_PROGRAMS)
    network = worker_network(spec, programs, program_key, network_key)
    _WORKER_NETWORKS[network_key] = network
    _trim_cache(_WORKER_NETWORKS)
    return network


def _process_lane(payload: tuple):
    """One shard's batch, executed in a worker process.

    Returns ``(records_by_index, link_counts, shard_state, replica_log,
    lane_obs)`` — the same lane output the thread engine produces, plus
    the shard's post-run state for the parent to merge, (when the lane
    carried a replica spec) the update log diffed against the shipped
    seed, and (when the run shipped telemetry) the spans and postcards
    recorded while the lane ran, for the parent to adopt.
    """
    (program_key, network_key, spec_bytes,
     ports, variables, replica_spec, state_blob, batch, telemetry) = payload
    network = _worker_network(program_key, network_key, spec_bytes)
    seed = pickle.loads(state_blob)
    network.install_shard_state(seed)
    lane = _Lane(network, Shard(tuple(ports), frozenset(variables)), batch)
    if telemetry is None:
        records, links = lane.run()
        lane_obs = None
    else:
        # Workers serve one lane at a time, so the capture windows slice
        # out exactly this job's spans and postcards for the reply.
        with TRACER.capture() as spans, postcards.capture() as cards, \
                postcards.sampling(telemetry.get("postcard_every", 0)):
            with TRACER.span(
                "engine.lane", parent=telemetry.get("trace"),
                batch=len(batch), worker=os.getpid(),
            ):
                records, links = lane.run()
        lane_obs = {"spans": spans, "postcards": cards}
    state = network.extract_shard_state(variables)
    log = None
    if replica_spec is not None:
        lane_vars = replication.replicas_from_spec(replica_spec)
        log = replication.replica_log(
            lane_vars, seed,
            replication.extract_state(network, lane_vars),
            replica_spec["epoch"],
        )
    return records, links, state, log, lane_obs
