"""Sharded parallel data-plane execution (§7.3, Appendix C, made runnable).

SNAP observes that ``s[inport]``-indexed state can be partitioned into
per-port shards "without worrying about synchronization, as the shards
store disjoint parts of s".  This module turns that observation into an
execution engine:

1. **Prove disjointness.**  Walking the xFDD's root-to-leaf paths (the
   same machinery as :func:`repro.analysis.packet_state
   .packet_state_mapping`) yields, for every OBS ingress port, the set of
   state variables a packet entering there can read or write — its
   *ingress state footprint*.
2. **Plan shards.**  Ports sharing any state variable are unioned into
   one shard; the result is a partition of the ingress ports such that
   packets of different shards touch provably disjoint state.  A
   variable every port can touch (an unsharded global counter) simply
   collapses all its ports into a single shard — that shard is the
   "single owner lane" everything unshardable serializes through.
3. **Execute.**  A workload is split into per-shard batches (per-shard
   arrival order preserved) and each batch runs on its own lane — a
   thread-pool worker over the shard's independent ``SwitchProgram``
   state partition.  Safe by construction: lanes share no state
   variables, forwarding state is read-only, and per-lane link counters
   are merged afterwards.
4. **Merge deterministically.**  Per-packet delivery records are
   reassembled in global arrival order, so the sharded engine is
   *delivery-equivalent* to the sequential engine (and therefore to the
   OBS ``eval`` semantics) — the property tests assert exactly that.

Each lane runs a *compiled* fast path rather than the generic
:meth:`Network._run` hop loop: pure-forwarding hop chains are memoized as
*segments* keyed by ``(switch, inport, outport, tag)`` (one dict hit and
one counter bump per traversal instead of per-hop queue churn), and the
xFDD's leading ``inport``-only branches are pre-resolved per shard port
(:meth:`SwitchProgram.resolve_inport_entry`).  Both are exact: segments
replay the same routing lookups ``_forward`` performs, entry resolution
runs the real lowered test closures.

Select the engine with ``CompilerOptions(engine="sharded")`` (threaded
through :meth:`SnapController.network`) or pass ``engine=`` to
:func:`repro.workloads.replay`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.analysis.packet_state import (
    _path_inports,
    _path_reachable,
    _path_reads,
)
from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
)
from repro.dataplane.network import MAX_HOPS, DeliveryRecord, Network
from repro.lang.errors import DataPlaneError, SnapError
from repro.lang.packet import Packet
from repro.xfdd.diagram import iter_paths

#: The engine names CompilerOptions accepts.
ENGINE_NAMES = ("sequential", "sharded")


# -- shard analysis -----------------------------------------------------------


def ingress_state_footprint(xfdd, inports) -> dict:
    """State variables reachable per ingress port: ``{port: frozenset}``.

    A variable is in port ``u``'s footprint iff some reachable
    root-to-leaf path compatible with ``inport = u`` reads or writes it.
    Conservative in the same way the packet-state mapping is — over-
    approximating a footprint can only merge shards, never split state
    that actually races.
    """
    footprint: dict = {port: set() for port in inports}
    for path, leaf in iter_paths(xfdd):
        if not _path_reachable(path):
            continue
        states = _path_reads(path) | leaf.written_state_vars()
        if not states:
            continue
        for port in _path_inports(path, inports):
            footprint[port] |= states
    return {port: frozenset(states) for port, states in footprint.items()}


@dataclass(frozen=True)
class Shard:
    """One execution lane: the ports it serves and the state it owns."""

    ports: tuple
    variables: frozenset

    def __repr__(self):
        return f"Shard(ports={list(self.ports)}, vars={sorted(self.variables)})"


class ShardPlan:
    """A proven-disjoint partition of the ingress ports.

    ``shards`` is ordered by lowest member port; ``shard_of`` maps every
    ingress port to its shard index.  ``parallelism`` is the number of
    lanes that can run concurrently; 1 means the program's state fully
    serializes (every stateful port shares a variable).
    """

    def __init__(self, shards, footprint):
        self.shards = tuple(shards)
        self.footprint = dict(footprint)
        self.shard_of = {
            port: index
            for index, shard in enumerate(self.shards)
            for port in shard.ports
        }

    @property
    def parallelism(self) -> int:
        return len(self.shards)

    def summary(self) -> dict:
        """Reporting: lane count and the size of each lane."""
        return {
            "shards": len(self.shards),
            "ports_per_shard": [len(s.ports) for s in self.shards],
            "sharded_vars": sum(len(s.variables) for s in self.shards),
        }

    def __repr__(self):
        return f"ShardPlan({len(self.shards)} shards: {list(self.shards)})"


def plan_shards(network: Network) -> ShardPlan:
    """Partition the network's ingress ports into disjoint-state shards.

    Union-find over ports: every state variable merges all ports whose
    footprint contains it.  Ports with empty footprints (pure stateless
    traffic) become singleton shards — they can run on any lane.
    """
    ports = sorted(network.topology.ports)
    footprint = ingress_state_footprint(network.index.root, ports)

    parent = {port: port for port in ports}

    def find(port):
        root = port
        while parent[root] != root:
            root = parent[root]
        while parent[port] != root:  # path compression
            parent[port], port = root, parent[port]
        return root

    var_ports: dict = {}
    for port, states in footprint.items():
        for var in states:
            var_ports.setdefault(var, []).append(port)
    for members in var_ports.values():
        anchor = find(members[0])
        for port in members[1:]:
            parent[find(port)] = anchor

    groups: dict = {}
    for port in ports:
        groups.setdefault(find(port), []).append(port)
    shards = [
        Shard(
            tuple(members),
            frozenset().union(*(footprint[p] for p in members)),
        )
        for members in sorted(groups.values())
    ]
    return ShardPlan(shards, footprint)


# -- engines ------------------------------------------------------------------


class SequentialEngine:
    """Run-to-completion in arrival order — delegates to ``inject_many``."""

    name = "sequential"

    def run(self, network: Network, arrivals) -> list:
        """One record list per injected packet, in arrival order."""
        return network.inject_many(arrivals)

    def __repr__(self):
        return "SequentialEngine()"


class ShardedEngine:
    """Per-shard parallel execution with deterministic merge.

    ``max_workers=None`` sizes the thread pool to the machine
    (``os.cpu_count()``); lanes never exceed the plan's parallelism.
    With one worker (or one shard) the lanes run inline on the calling
    thread — same code path, no pool.
    """

    name = "sharded"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(self, network: Network, arrivals) -> list:
        arrivals = list(arrivals)
        plan = self.plan_for(network)
        shard_of = plan.shard_of
        batches: dict = {}
        for index, (packet, port) in enumerate(arrivals):
            shard = shard_of.get(port)
            if shard is None:
                raise DataPlaneError(f"no OBS port {port} in the topology")
            batches.setdefault(shard, []).append((index, packet, port))

        lanes = [
            _Lane(network, plan.shards[shard], batch)
            for shard, batch in sorted(batches.items())
        ]
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(lanes))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                lane_results = list(pool.map(_Lane.run, lanes))
        else:
            lane_results = [lane.run() for lane in lanes]

        # Deterministic merge: records in global arrival order, link
        # counters summed.
        by_index: dict = {}
        link_packets = network.link_packets
        for records_by_index, links in lane_results:
            by_index.update(records_by_index)
            for link, count in links.items():
                link_packets[link] = link_packets.get(link, 0) + count
        results = [by_index[index] for index in range(len(arrivals))]
        deliveries = network.deliveries
        for records in results:
            deliveries.extend(records)
        return results

    def plan_for(self, network: Network) -> ShardPlan:
        """The network's shard plan (computed once per network)."""
        plan = getattr(network, "_shard_plan", None)
        if plan is None:
            plan = plan_shards(network)
            network._shard_plan = plan
        return plan

    def __repr__(self):
        return f"ShardedEngine(max_workers={self.max_workers})"


def get_engine(engine):
    """Resolve an engine name (or pass an engine instance through)."""
    if engine is None or engine == "sequential":
        return SequentialEngine()
    if engine == "sharded":
        return ShardedEngine()
    if hasattr(engine, "run"):
        return engine
    raise SnapError(
        f"unknown data-plane engine {engine!r}; expected one of "
        f"{ENGINE_NAMES} or an engine instance"
    )


# -- the per-shard lane -------------------------------------------------------

_STRIP = (SNAP_INPORT, SNAP_OUTPORT, SNAP_NODE)


class _Lane:
    """One shard's compiled execution lane.

    Processes its batch in per-shard arrival order, producing exactly the
    records the sequential engine would (same packets, egresses, and hop
    counts — the equivalence property tests compare them field by field).
    Forwarding hop chains are memoized as segments; per-segment traversal
    counters are expanded into per-link packet counts at the end.
    """

    __slots__ = ("network", "shard", "batch", "_segments", "_seg_counts")

    def __init__(self, network: Network, shard: Shard, batch):
        self.network = network
        self.shard = shard
        self.batch = batch  # [(global_index, packet, port)]
        self._segments: dict = {}  # (switch, u, v, tag) -> (stop, links)
        self._seg_counts: dict = {}

    def run(self):
        """Returns ``({global_index: [DeliveryRecord]}, {link: count})``."""
        results: dict = {}
        run_packet = self._run_packet
        for index, packet, port in self.batch:
            results[index] = run_packet(packet, port)
        links: dict = {}
        segments = self._segments
        for key, count in self._seg_counts.items():
            for link in segments[key][1]:
                links[link] = links.get(link, 0) + count
        return results, links

    # -- per-packet interpreter -------------------------------------------

    def _run_packet(self, packet: Packet, port: int) -> list:
        net = self.network
        ports = net.topology.ports
        segments = self._segments
        seg_counts = self._seg_counts
        # Inlined add_header: one dict copy for tag + inport.
        fields = dict(packet._fields)
        fields["inport"] = port
        fields[SNAP_INPORT] = port
        fields[SNAP_NODE] = ROOT_TAG
        tagged = Packet.__new__(Packet)
        tagged._fields = fields
        tagged._hash = None

        program = net.switches[ports[port]]
        entry = program.resolve_inport_entry(ROOT_TAG, tagged, port)

        # Fast path: one outcome that emits to a valid egress — the
        # overwhelmingly common case — needs no copy stack at all.
        outcomes = program.process(tagged, entry=entry)
        if len(outcomes) == 1 and outcomes[0].kind == "emit":
            outcome = outcomes[0]
            fields = outcome.packet._fields
            egress = fields.get("outport")
            if egress is not None and egress in ports:
                switch = program.switch
                total = 0
                if ports[egress] != switch:
                    key = (switch, port, egress, DONE_TAG)
                    seg = segments.get(key)
                    if seg is None:
                        seg = self._walk(switch, port, egress, DONE_TAG)
                        segments[key] = seg
                    seg_counts[key] = seg_counts.get(key, 0) + 1
                    total = len(seg[1])
                    if total > MAX_HOPS:
                        raise DataPlaneError(
                            "packet exceeded hop limit (routing loop?)"
                        )
                stripped = dict(fields)
                del stripped[SNAP_INPORT]
                stripped.pop(SNAP_OUTPORT, None)
                del stripped[SNAP_NODE]
                out = Packet.__new__(Packet)
                out._fields = stripped
                out._hash = None
                return [DeliveryRecord(out, egress, total)]

        records: list = []
        # Depth-first over packet copies, first-emitted first — the same
        # order the (fixed) sequential ``_run`` processes them in.  Stack
        # items are resume tuples or DeliveryRecords; a record on the
        # stack is an already-computed delivery whose forwarding hops the
        # sequential engine would still be walking, so it surfaces in the
        # same depth-first position.  ``outcomes`` (already produced
        # above — processing is stateful, never rerun) seeds the loop.
        stack: list = []
        switch = program.switch
        hops = 0
        while True:
            in_flight = None
            for outcome in outcomes:
                kind = outcome.kind
                if kind == "emit":
                    # Inlined emit hot path.  A DONE packet is never
                    # processed again, so the SNAP-header writes the
                    # generic ``_handle_outcome`` makes before forwarding
                    # would be stripped unread at the egress: deliver the
                    # stripped packet directly and save both copies.
                    fields = outcome.packet._fields
                    egress = fields.get("outport")
                    if egress is None or egress not in ports:
                        records.append(
                            DeliveryRecord(outcome.packet, None, hops)
                        )
                        continue
                    local = ports[egress] == switch
                    total = hops
                    if not local:
                        u = fields.get(SNAP_INPORT)
                        key = (switch, u, egress, DONE_TAG)
                        seg = segments.get(key)
                        if seg is None:
                            seg = self._walk(switch, u, egress, DONE_TAG)
                            segments[key] = seg
                        seg_counts[key] = seg_counts.get(key, 0) + 1
                        total += len(seg[1])
                        if total > MAX_HOPS:
                            raise DataPlaneError(
                                "packet exceeded hop limit (routing loop?)"
                            )
                    stripped = dict(fields)
                    del stripped[SNAP_INPORT]
                    stripped.pop(SNAP_OUTPORT, None)
                    del stripped[SNAP_NODE]
                    out = Packet.__new__(Packet)
                    out._fields = stripped
                    out._hash = None
                    record = DeliveryRecord(out, egress, total)
                    if local:
                        # Delivered at this switch: surfaces before any
                        # queued copy, exactly like Network._step.
                        records.append(record)
                    elif in_flight is None:
                        in_flight = [record]
                    else:
                        in_flight.append(record)
                elif kind == "drop":
                    records.append(DeliveryRecord(outcome.packet, None, hops))
                else:
                    resume = self._handle_pause(outcome, switch, hops)
                    if in_flight is None:
                        in_flight = [resume]
                    else:
                        in_flight.append(resume)
            if in_flight is not None:
                stack.extend(reversed(in_flight))
            while stack and type(stack[-1]) is DeliveryRecord:
                records.append(stack.pop())
            if not stack:
                return records
            program, pkt, entry, hops = stack.pop()
            switch = program.switch
            outcomes = program.process(pkt, entry=entry)

    def _handle_pause(self, outcome, switch: str, hops: int):
        """A pause outcome -> the next processing stop.

        Mirrors :meth:`Network._handle_outcome`'s retag logic + the
        pure-forwarding hops up to the variable's owner switch, with the
        forwarding collapsed into a memoized segment.
        """
        pkt = outcome.packet
        net = self.network
        fields = pkt._fields
        u = fields.get(SNAP_INPORT)
        # Ensure the tagged egress candidate can reach the variable
        # (identical logic to Network._handle_outcome).
        var = outcome.var
        v = fields.get(SNAP_OUTPORT)
        needs_retag = True
        if v is not None:
            pos = net._path_pos.get((u, v))
            if (
                pos is not None
                and switch in pos
                and var in net.mapping.states_for(u, v)
            ):
                owner = net.placement[var]
                if owner in pos and pos[owner] >= pos[switch]:
                    needs_retag = False
        if needs_retag:
            candidate = net._candidate_egress(u, var, switch)
            if candidate is None:
                raise DataPlaneError(
                    f"no candidate egress for flow from port {u} pausing on "
                    f"{var!r} at {switch}"
                )
            pkt = pkt.modify(SNAP_OUTPORT, candidate)
            v = candidate
        tag = fields.get(SNAP_NODE)
        key = (switch, u, v, tag)
        seg = self._segments.get(key)
        if seg is None:
            seg = self._walk(switch, u, v, tag)
            self._segments[key] = seg
        self._seg_counts[key] = self._seg_counts.get(key, 0) + 1
        hops += len(seg[1])
        if hops > MAX_HOPS:
            raise DataPlaneError("packet exceeded hop limit (routing loop?)")
        program = net.switches[seg[0]]
        return (program, pkt, program.entries[tag], hops)

    def _walk(self, switch: str, u: int, v: int, tag: int):
        """Replay ``Network._forward``'s hop decisions until the packet
        reaches a switch that can act on it (process the tag, or deliver
        a DONE packet at its egress)."""
        net = self.network
        switches = net.switches
        rules = net.rules
        done = tag == DONE_TAG
        egress_switch = net.topology.port_switch(v)
        links = []
        current = switch
        while True:
            nxt = rules.next_hop(current, u, v)
            if nxt is None:
                chain = net._path_next.get((u, v))
                if chain is not None:
                    nxt = chain.get(current)
            if nxt is None and done:
                nxt = net._default_next_hop(current, egress_switch)
            if nxt is None:
                raise DataPlaneError(
                    f"no route at {current} for flow ({u}, {v}) (tag={tag})"
                )
            links.append((current, nxt))
            if len(links) > MAX_HOPS:
                raise DataPlaneError(
                    "packet exceeded hop limit (routing loop?)"
                )
            current = nxt
            if done:
                if current == egress_switch:
                    return current, tuple(links)
            elif tag in switches[current].entries:
                return current, tuple(links)
