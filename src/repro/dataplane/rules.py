"""Match-action routing rules (§4.5 phase 2).

"We generate a set of match-action rules that take packets through the
paths decided by the MILP ... packets contain the path identifier (the OBS
inport and outport) and the routing match-action rules are generated in
terms of this identifier."
"""

from __future__ import annotations

from repro.lang.errors import DataPlaneError
from repro.milp.results import RoutingPaths


class RoutingRule:
    """Forward packets of flow (u, v) from this switch to ``next_hop``."""

    __slots__ = ("inport", "outport", "next_hop")

    def __init__(self, inport: int, outport: int, next_hop: str):
        self.inport = inport
        self.outport = outport
        self.next_hop = next_hop

    def __repr__(self):
        return (
            f"match(snap.inport={self.inport}, snap.outport={self.outport}) "
            f"-> forward({self.next_hop})"
        )


class RuleTables:
    """Per-switch routing tables keyed by the SNAP path identifier."""

    def __init__(self, tables: dict):
        #: switch -> {(u, v): next_hop}
        self.tables = tables

    def next_hop(self, switch: str, u: int, v: int):
        return self.tables.get(switch, {}).get((u, v))

    def rules_for(self, switch: str):
        return [
            RoutingRule(u, v, nxt)
            for (u, v), nxt in sorted(self.tables.get(switch, {}).items())
        ]

    def rule_counts(self) -> dict:
        return {switch: len(rules) for switch, rules in self.tables.items()}

    def total_rules(self) -> int:
        return sum(len(rules) for rules in self.tables.values())


def build_rule_tables(routing: RoutingPaths) -> RuleTables:
    """Compile installed paths into per-switch next-hop tables."""
    tables: dict = {}
    for (u, v), path in routing.paths.items():
        for current, nxt in zip(path, path[1:]):
            table = tables.setdefault(current, {})
            existing = table.get((u, v))
            if existing is not None and existing != nxt:
                raise DataPlaneError(
                    f"conflicting next hops for flow {(u, v)} at {current}: "
                    f"{existing} vs {nxt}"
                )
            table[(u, v)] = nxt
    return RuleTables(tables)
