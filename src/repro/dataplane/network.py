"""The distributed data-plane simulator — our Mininet substitute.

Each switch runs its compiled NetASM program over its local state tables;
packets carry the SNAP header and are forwarded by the per-switch
match-action tables along the MILP-selected (u, v) path.

Egress selection (Appendix D): when a packet pauses on a state variable
before its egress is known, the ingress tags it with a candidate egress
whose flow needs that variable (weighted by demand); when the leaf finally
assigns the real outport, the packet is re-tagged and continues along the
new path from its current switch — which the MILP guarantees lies on that
path too.

Two delivery modes:

* sequential (default): each injected packet runs to completion before the
  next — this must agree exactly with the OBS ``eval`` semantics, and the
  property tests check that it does;
* concurrent: hops of in-flight packets interleave round-robin, exposing
  the §2.1 transaction hazards that ``atomic()`` exists to prevent.
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
    add_header,
    strip_header,
)
from repro.dataplane.netasm import SwitchProgram, compile_switch
from repro.dataplane.rules import RuleTables, build_rule_tables
from repro.dataplane.split import NodeIndex
from repro.lang.errors import DataPlaneError
from repro.lang.packet import Packet
from repro.lang.state import Store
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology

MAX_HOPS = 1000


class DeliveryRecord:
    """One packet's fate: delivered at a port, or dropped."""

    __slots__ = ("packet", "egress", "hops")

    def __init__(self, packet: Packet, egress: int | None, hops: int):
        self.packet = packet
        self.egress = egress  # None = dropped
        self.hops = hops

    def __repr__(self):
        where = f"port {self.egress}" if self.egress is not None else "dropped"
        return f"DeliveryRecord({where}, hops={self.hops})"


class Network:
    """Topology + per-switch programs + routing tables + link stats."""

    def __init__(
        self,
        topology: Topology,
        xfdd,
        placement: dict,
        routing: RoutingPaths,
        mapping,
        demands: dict | None = None,
        state_defaults: dict | None = None,
    ):
        self.topology = topology
        self.placement = dict(placement)
        self.routing = routing
        self.mapping = mapping
        self.demands = dict(demands or {})
        self.index = NodeIndex(xfdd)
        self.rules: RuleTables = build_rule_tables(routing)
        port_switches = set(topology.ports.values())
        defaults = dict(state_defaults or {})
        self.state_defaults = defaults
        self.switches: dict[str, SwitchProgram] = {
            name: compile_switch(
                name, xfdd, self.index, self.placement, defaults,
                has_ports=name in port_switches,
            )
            for name in topology.switches()
        }
        self.link_packets: dict = {}
        self.deliveries: list[DeliveryRecord] = []
        # Default routes: shortest-path next hop toward each switch, used
        # for processing-complete packets with no installed (u, v) rule —
        # e.g. hairpin flows (egress == ingress port) or re-tagged egresses.
        # Such packets have no remaining state constraints, so any route
        # to the egress is semantically equivalent.
        self._default_next: dict = {}
        for target in set(topology.ports.values()):
            paths = nx.shortest_path(topology.graph, target=target)
            for source, path in paths.items():
                if len(path) >= 2:
                    self._default_next[(source, target)] = path[1]

    # -- state access ------------------------------------------------------

    def global_store(self) -> Store:
        """Union of all switches' local state (for OBS equivalence checks)."""
        merged = Store(self.state_defaults)
        for program in self.switches.values():
            for name in program.store.names():
                var = program.store.variable(name)
                target = merged.variable(name)
                target.default = var.default
                for key, value in var.items():
                    target.set(key, value)
        return merged

    # -- egress selection (Appendix D) ----------------------------------------

    def _candidate_egress(self, u: int, var: str, current: str):
        """Pick a candidate egress whose (u, v) flow needs ``var`` and whose
        installed path passes through ``current``; weighted by demand."""
        best, best_demand = None, -1.0
        for (fu, fv), states in self.mapping.items():
            if fu != u or var not in states:
                continue
            path = self.routing.path(fu, fv)
            if path is None or current not in path:
                continue
            demand = self.demands.get((fu, fv), 0.0)
            if demand > best_demand:
                best, best_demand = fv, demand
        return best

    # -- packet walking -----------------------------------------------------------

    def inject(self, packet: Packet, port: int) -> list[DeliveryRecord]:
        """Sequential mode: run one packet to completion."""
        records = self._run(self._new_arrivals(packet, port))
        self.deliveries.extend(records)
        return records

    def inject_concurrent(self, packets_with_ports, scheduler=None) -> list[DeliveryRecord]:
        """Concurrent mode: all packets in flight, hops interleaved.

        ``scheduler(pending)`` picks which pending hop advances next (index
        into the list); the default is FIFO.  Adversarial schedulers model
        in-flight packet reordering — the hazard §2.1's transactions exist
        to contain.
        """
        queue: deque = deque()
        for packet, port in packets_with_ports:
            queue.extend(self._new_arrivals(packet, port))
        records = self._run(queue, interleave=True, scheduler=scheduler)
        self.deliveries.extend(records)
        return records

    def _new_arrivals(self, packet: Packet, port: int):
        switch = self.topology.port_switch(port)
        tagged = add_header(packet, port)
        return deque([(tagged, switch, 0)])

    def _run(
        self, queue: deque, interleave: bool = False, scheduler=None
    ) -> list[DeliveryRecord]:
        records = []
        while queue:
            if scheduler is not None:
                pending = list(queue)
                index = scheduler(pending)
                packet, switch, hops = pending[index]
                del queue[index]
            elif interleave:
                packet, switch, hops = queue.popleft()
            else:
                packet, switch, hops = queue.pop()
            if hops > MAX_HOPS:
                raise DataPlaneError("packet exceeded hop limit (routing loop?)")
            for item in self._step(packet, switch, hops):
                if isinstance(item, DeliveryRecord):
                    records.append(item)
                else:
                    queue.append(item)
        return records

    def _step(self, packet: Packet, switch: str, hops: int):
        """Process-or-forward one packet at one switch."""
        tag = packet.get(SNAP_NODE)
        program = self.switches[switch]
        if tag != DONE_TAG and program.can_process(tag):
            for outcome in program.process(packet):
                yield from self._handle_outcome(outcome, switch, hops)
            return
        yield from self._forward(packet, switch, hops)

    def _handle_outcome(self, outcome, switch: str, hops: int):
        packet = outcome.packet
        u = packet.get(SNAP_INPORT)
        if outcome.kind == "drop":
            yield DeliveryRecord(packet, None, hops)
            return
        if outcome.kind == "emit":
            egress = packet.get("outport")
            if egress is None or egress not in self.topology.ports:
                yield DeliveryRecord(packet, None, hops)
                return
            packet = packet.modify_many({SNAP_OUTPORT: egress, SNAP_NODE: DONE_TAG})
            yield from self._forward(packet, switch, hops)
            return
        # pause: ensure the tagged egress candidate can reach the variable.
        var = outcome.var
        v = packet.get(SNAP_OUTPORT)
        needs_retag = True
        if v is not None:
            path = self.routing.path(u, v)
            if (
                path is not None
                and switch in path
                and var in self.mapping.states_for(u, v)
            ):
                owner = self.placement[var]
                if owner in path and path.index(owner) >= path.index(switch):
                    needs_retag = False
        if needs_retag:
            candidate = self._candidate_egress(u, var, switch)
            if candidate is None:
                raise DataPlaneError(
                    f"no candidate egress for flow from port {u} pausing on "
                    f"{var!r} at {switch}"
                )
            packet = packet.modify(SNAP_OUTPORT, candidate)
        yield from self._forward(packet, switch, hops)

    def _forward(self, packet: Packet, switch: str, hops: int):
        u = packet.get(SNAP_INPORT)
        v = packet.get(SNAP_OUTPORT)
        if v is None:
            raise DataPlaneError(f"packet at {switch} has no egress tag")
        if switch == self.topology.port_switch(v) and packet.get(SNAP_NODE) == DONE_TAG:
            yield DeliveryRecord(strip_header(packet), v, hops)
            return
        nxt = self.rules.next_hop(switch, u, v)
        if nxt is None:
            # Re-tagged packets may join the (u, v) path midway; recover by
            # walking the installed path from the current switch.
            path = self.routing.path(u, v)
            if path is not None and switch in path:
                idx = path.index(switch)
                nxt = path[idx + 1] if idx + 1 < len(path) else None
        if nxt is None and packet.get(SNAP_NODE) == DONE_TAG:
            # Processing finished: any route to the egress works.
            nxt = self._default_next.get((switch, self.topology.port_switch(v)))
        if nxt is None:
            raise DataPlaneError(
                f"no route at {switch} for flow ({u}, {v}) "
                f"(tag={packet.get(SNAP_NODE)})"
            )
        self.link_packets[(switch, nxt)] = self.link_packets.get((switch, nxt), 0) + 1
        yield (packet, nxt, hops + 1)

    # -- reporting -------------------------------------------------------------

    def instruction_counts(self) -> dict:
        return {
            name: len(program.instructions) for name, program in self.switches.items()
        }

    def __repr__(self):
        return (
            f"Network({self.topology.name}, switches={len(self.switches)}, "
            f"rules={self.rules.total_rules()})"
        )
