"""The distributed data-plane simulator — our Mininet substitute.

Each switch runs its compiled NetASM program over its local state tables;
packets carry the SNAP header and are forwarded by the per-switch
match-action tables along the MILP-selected (u, v) path.

Egress selection (Appendix D): when a packet pauses on a state variable
before its egress is known, the ingress tags it with a candidate egress
whose flow needs that variable (weighted by demand); when the leaf finally
assigns the real outport, the packet is re-tagged and continues along the
new path from its current switch — which the MILP guarantees lies on that
path too.

Two delivery modes:

* sequential (default): each injected packet runs to completion before the
  next — this must agree exactly with the OBS ``eval`` semantics, and the
  property tests check that it does;
* concurrent: hops of in-flight packets interleave round-robin, exposing
  the §2.1 transaction hazards that ``atomic()`` exists to prevent.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.dataplane.header import (
    DONE_TAG,
    ROOT_TAG,
    SNAP_INPORT,
    SNAP_NODE,
    SNAP_OUTPORT,
    add_header,
    strip_header,
)
from repro.dataplane.netasm import SwitchProgram, compile_switch
from repro.dataplane.rules import RuleTables, build_rule_tables
from repro.dataplane.split import NodeIndex
from repro.lang.errors import DataPlaneError
from repro.lang.packet import Packet
from repro.lang.state import Store
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology

MAX_HOPS = 1000

#: Monotonic tokens identifying (a) a compiled switch-program set and (b)
#: one Network instance built around it.  The process-pool engine keys its
#: worker-side rehydration caches on these: a TE ``rewire`` shares the
#: compiled programs (same program key, new network key), while a policy
#: rebuild mints a fresh program key.
_EXEC_KEYS = itertools.count(1)


class DeliveryRecord:
    """One packet's fate: delivered at a port, or dropped."""

    __slots__ = ("packet", "egress", "hops")

    def __init__(self, packet: Packet, egress: int | None, hops: int):
        self.packet = packet
        self.egress = egress  # None = dropped
        self.hops = hops

    def __repr__(self):
        where = f"port {self.egress}" if self.egress is not None else "dropped"
        return f"DeliveryRecord({where}, hops={self.hops})"


class Network:
    """Topology + per-switch programs + routing tables + link stats."""

    def __init__(
        self,
        topology: Topology,
        xfdd,
        placement: dict,
        routing: RoutingPaths,
        mapping,
        demands: dict | None = None,
        state_defaults: dict | None = None,
        rules: RuleTables | None = None,
    ):
        self.topology = topology
        self.placement = dict(placement)
        self.routing = routing
        self.mapping = mapping
        self.demands = dict(demands or {})
        self.index = NodeIndex(xfdd)
        self.rules: RuleTables = (
            rules if rules is not None else build_rule_tables(routing)
        )
        port_switches = set(topology.ports.values())
        defaults = dict(state_defaults or {})
        self.state_defaults = defaults
        self.switches: dict[str, SwitchProgram] = {
            name: compile_switch(
                name, xfdd, self.index, self.placement, defaults,
                has_ports=name in port_switches,
            )
            for name in topology.switches()
        }
        self.link_packets: dict = {}
        self.deliveries: list[DeliveryRecord] = []
        #: Engine :func:`repro.workloads.replay` uses when none is passed
        #: explicitly (a name or an engine instance; the controller sets
        #: it from ``CompilerOptions.engine``).
        self.default_engine: object = "sequential"
        #: Whether parallel engines may run state-compute replication
        #: (:mod:`repro.dataplane.replication`) on this network; the
        #: controller sets it from ``CompilerOptions.replicate_state``,
        #: and an engine's own ``replicate_state=`` overrides it.
        self.replicate_state: bool = True
        # Worker-cache keys for the process engine (see _EXEC_KEYS).
        self._exec_program_key = next(_EXEC_KEYS)
        self._exec_network_key = next(_EXEC_KEYS)
        self._init_routing_indices()

    def _init_routing_indices(self) -> None:
        """(Re)build everything derived from routing/topology/demands."""
        # Per-flow path indices: (u, v) -> {switch: position} and
        # (u, v) -> {switch: next_hop}, so the per-hop "is this switch on
        # the installed path / what comes after it" questions are dict
        # lookups instead of list scans.
        self._path_pos: dict = {}
        self._path_next: dict = {}
        for (u, v), path in self.routing.paths.items():
            self._path_pos[(u, v)] = {sw: i for i, sw in enumerate(path)}
            self._path_next[(u, v)] = dict(zip(path, path[1:]))
        # Candidate-egress index (Appendix D): (u, var) -> flows needing
        # ``var``, highest demand first (stable, so ties keep the mapping's
        # iteration order — the same flow the per-query scan used to pick).
        self._egress_index: dict = {}
        for (fu, fv), states in self.mapping.items():
            pos = self._path_pos.get((fu, fv))
            if pos is None:
                continue
            demand = self.demands.get((fu, fv), 0.0)
            for var in states:
                self._egress_index.setdefault((fu, var), []).append(
                    (demand, fv, pos)
                )
        for candidates in self._egress_index.values():
            candidates.sort(key=lambda entry: -entry[0])
        # Default routes: shortest-path next hop toward each switch, used
        # for processing-complete packets with no installed (u, v) rule —
        # e.g. hairpin flows (egress == ingress port) or re-tagged egresses.
        # Such packets have no remaining state constraints, so any route
        # to the egress is semantically equivalent.  Computed lazily: one
        # reverse BFS per egress switch covers every source at once, and
        # only egresses that actually need a default route pay for it.
        self._default_next: dict = {}
        self._default_done: set = set()

    def rewire(self, topology: Topology, routing: RoutingPaths,
               demands: dict | None = None,
               rules: RuleTables | None = None) -> "Network":
        """A new network with routing/topology/demands replaced.

        For hot swaps where the xFDD and placement are unchanged (TE
        events): the compiled switch programs — and with them the state
        stores — are *shared* with this network, so state carries over
        for free and no per-switch recompilation happens; only the rule
        tables and routing-derived indices are rebuilt.
        """
        dup = object.__new__(Network)
        dup.topology = topology
        dup.placement = dict(self.placement)
        dup.routing = routing
        dup.mapping = self.mapping
        dup.demands = dict(demands if demands is not None else self.demands)
        dup.index = self.index
        dup.rules = rules if rules is not None else build_rule_tables(routing)
        dup.state_defaults = self.state_defaults
        dup.switches = self.switches
        dup.link_packets = {}
        dup.deliveries = []
        dup.default_engine = self.default_engine
        dup.replicate_state = getattr(self, "replicate_state", True)
        # Same compiled programs -> same program key (process-pool workers
        # keep their rehydrated programs); new routing -> new network key.
        dup._exec_program_key = self._exec_program_key
        dup._exec_network_key = next(_EXEC_KEYS)
        dup._init_routing_indices()
        return dup

    # -- state access ------------------------------------------------------

    def global_store(self) -> Store:
        """Union of all switches' local state (for OBS equivalence checks)."""
        merged = Store(self.state_defaults)
        for program in self.switches.values():
            for name in program.store.names():
                var = program.store.variable(name)
                target = merged.variable(name)
                target.default = var.default
                for key, value in var.items():
                    target.set(key, value)
        return merged

    def adopt_state(self, previous: "Network") -> None:
        """Carry ``previous``'s state-store contents into this network.

        The live-reconfiguration half of a controller hot swap: every
        explicit entry of every state variable in the old data plane is
        written into the variable's new owner switch, so counters and
        flags survive a recompilation even when the placement moved.
        Variables the new program no longer declares are dropped; new
        variables keep their (fresh) defaults.
        """
        merged = previous.global_store()
        for name in merged.names():
            owner = self.placement.get(name)
            if owner is None:
                continue  # variable retired by the new program
            source = merged.variable(name)
            target = self.switches[owner].store.variable(name)
            for key, value in source.items():
                target.set(key, value)

    # -- per-shard state transfer (process-engine contract) ----------------

    # The one implementation of the slice transfer lives in
    # :mod:`repro.dataplane.replication` (imported lazily — replication
    # imports this module at load time); these methods survive as the
    # engine-facing contract every caller already uses.

    def extract_shard_state(self, variables) -> dict:
        """Snapshot the named state variables from their owner switches.

        Returns ``{var: (default, {key: value})}`` — pure data, picklable,
        suitable for shipping a shard's private state to a worker process.
        Variables without a placed owner are skipped (they cannot hold
        data-plane state).
        """
        from repro.dataplane.replication import extract_state

        return extract_state(self, variables)

    def install_shard_state(self, state: dict) -> None:
        """Replace the named variables' contents with ``state``.

        The worker-side half of the transfer: a cached worker network may
        hold a previous batch's values, so installation *replaces* each
        variable's table rather than merging into it.
        """
        from repro.dataplane.replication import install_state

        install_state(self, state)

    def merge_shard_state(self, state: dict) -> None:
        """Apply a worker's post-run shard state back into this network.

        The parent-side half: every entry the worker's run produced is
        written into the variable's owner switch.  Shards are provably
        disjoint, and state tables never delete keys, so entry-wise update
        reproduces exactly the state a sequential run would have left.
        Replicated variables travel through
        :func:`repro.dataplane.replication.apply_replica_log` instead.
        """
        from repro.dataplane.replication import merge_state

        merge_state(self, state)

    # -- egress selection (Appendix D) ----------------------------------------

    def _candidate_egress(self, u: int, var: str, current: str):
        """Pick a candidate egress whose (u, v) flow needs ``var`` and whose
        installed path passes through ``current``; weighted by demand.

        The per-(u, var) candidate list is precomputed in ``__init__`` and
        kept sorted by demand, so this is a short scan for the first
        candidate whose path covers ``current`` instead of a pass over the
        whole packet-state mapping per pause."""
        for _, fv, pos in self._egress_index.get((u, var), ()):
            if current in pos:
                return fv
        return None

    # -- default routes -------------------------------------------------------

    def _default_next_hop(self, source: str, target: str):
        """Next hop from ``source`` on some shortest path toward ``target``.

        One reverse BFS from ``target`` fills in the next hop for *every*
        source (the BFS parent pointers point toward the target), replacing
        the per-source shortest-path calls this table was built from."""
        if target not in self._default_done:
            default_next = self._default_next
            adjacency = self.topology.graph.pred  # reverse edges of the DiGraph
            visited = {target}
            frontier = deque((target,))
            while frontier:
                node = frontier.popleft()
                for prev in adjacency[node]:
                    if prev not in visited:
                        visited.add(prev)
                        default_next[(prev, target)] = node
                        frontier.append(prev)
            # Marked done only after the table is fully populated, so a
            # concurrent reader (sharded-engine lanes share this cache)
            # never observes a half-filled route table.
            self._default_done.add(target)
        return self._default_next.get((source, target))

    # -- packet walking -----------------------------------------------------------

    def inject(self, packet: Packet, port: int) -> list[DeliveryRecord]:
        """Sequential mode: run one packet to completion."""
        records = self._run(self._new_arrivals(packet, port))
        self.deliveries.extend(records)
        return records

    def inject_many(self, packets_with_ports) -> list[list[DeliveryRecord]]:
        """Batched sequential mode: each packet runs to completion in order.

        Semantically identical to calling :meth:`inject` per packet, but
        amortizes per-call overhead for replay workloads; returns one
        record list per injected packet.
        """
        results: list[list[DeliveryRecord]] = []
        run = self._run
        arrivals = self._new_arrivals
        deliveries = self.deliveries
        for packet, port in packets_with_ports:
            records = run(arrivals(packet, port))
            deliveries.extend(records)
            results.append(records)
        return results

    def inject_concurrent(self, packets_with_ports, scheduler=None) -> list[DeliveryRecord]:
        """Concurrent mode: all packets in flight, hops interleaved.

        ``scheduler(pending)`` picks which pending hop advances next (index
        into the list); the default is FIFO.  Adversarial schedulers model
        in-flight packet reordering — the hazard §2.1's transactions exist
        to contain.
        """
        queue: deque = deque()
        for packet, port in packets_with_ports:
            queue.extend(self._new_arrivals(packet, port))
        records = self._run(queue, interleave=True, scheduler=scheduler)
        self.deliveries.extend(records)
        return records

    def _new_arrivals(self, packet: Packet, port: int):
        switch = self.topology.port_switch(port)
        tagged = add_header(packet, port)
        return deque([(tagged, switch, 0)])

    def _run(
        self,
        queue: deque,
        interleave: bool = False,
        scheduler=None,
        links=None,
        recorder=None,
    ) -> list[DeliveryRecord]:
        """Drain the arrival queue; the generic (uncompiled) packet walk.

        ``links`` redirects the per-link packet counters into a caller-
        owned dict (thread lanes keep counts lane-local and merge once,
        instead of racing on ``self.link_packets``); ``recorder`` is a
        :class:`repro.obs.postcards.PostcardRecorder` for sampled
        packets — when present, switch programs run through
        ``process_traced`` (identical opcode effects, plus events).
        """
        records = []
        step = self._step
        if links is not None or recorder is not None:
            step = lambda packet, switch, hops: self._step(  # noqa: E731
                packet, switch, hops, links=links, recorder=recorder
            )
        while queue:
            if scheduler is not None:
                # The deque is handed to the scheduler directly (it only
                # needs len() and indexing); copying it to a list every
                # hop made adversarial-scheduler soaks quadratic.
                index = scheduler(queue)
                packet, switch, hops = queue[index]
                del queue[index]
            elif interleave:
                packet, switch, hops = queue.popleft()
            else:
                packet, switch, hops = queue.pop()
            if hops > MAX_HOPS:
                raise DataPlaneError("packet exceeded hop limit (routing loop?)")
            items = step(packet, switch, hops)
            in_flight = []
            for item in items:
                if type(item) is DeliveryRecord:
                    records.append(item)
                else:
                    in_flight.append(item)
            if interleave or scheduler is not None:
                queue.extend(in_flight)
            else:
                # Sequential mode pops from the right: push copies in
                # reverse so they run depth-first in the order the switch
                # emitted them, matching the OBS evaluation order.
                queue.extend(reversed(in_flight))
        return records

    def _step(
        self, packet: Packet, switch: str, hops: int, links=None, recorder=None
    ) -> list:
        """Process-or-forward one packet at one switch.

        Returns a list of :class:`DeliveryRecord` (done) and
        ``(packet, next_switch, hops)`` tuples (still in flight) — one item
        per packet copy.
        """
        tag = packet.get(SNAP_NODE)
        program = self.switches[switch]
        if tag != DONE_TAG and program.can_process(tag):
            handle = self._handle_outcome
            outcomes = (
                program.process(packet)
                if recorder is None
                else program.process_traced(packet, recorder)
            )
            return [
                handle(outcome, switch, hops, links=links, recorder=recorder)
                for outcome in outcomes
            ]
        return [self._forward(packet, switch, hops, links, recorder)]

    def _handle_outcome(
        self, outcome, switch: str, hops: int, links=None, recorder=None
    ):
        packet = outcome.packet
        u = packet.get(SNAP_INPORT)
        kind = outcome.kind
        if kind == "drop":
            return DeliveryRecord(packet, None, hops)
        if kind == "emit":
            egress = packet.get("outport")
            if egress is None or egress not in self.topology.ports:
                return DeliveryRecord(packet, None, hops)
            packet = packet.modify_many({SNAP_OUTPORT: egress, SNAP_NODE: DONE_TAG})
            return self._forward(packet, switch, hops, links, recorder)
        # pause: ensure the tagged egress candidate can reach the variable.
        var = outcome.var
        v = packet.get(SNAP_OUTPORT)
        needs_retag = True
        if v is not None:
            pos = self._path_pos.get((u, v))
            if (
                pos is not None
                and switch in pos
                and var in self.mapping.states_for(u, v)
            ):
                owner = self.placement[var]
                if owner in pos and pos[owner] >= pos[switch]:
                    needs_retag = False
        if needs_retag:
            candidate = self._candidate_egress(u, var, switch)
            if candidate is None:
                raise DataPlaneError(
                    f"no candidate egress for flow from port {u} pausing on "
                    f"{var!r} at {switch}"
                )
            packet = packet.modify(SNAP_OUTPORT, candidate)
        return self._forward(packet, switch, hops, links, recorder)

    def _forward(
        self, packet: Packet, switch: str, hops: int, links=None, recorder=None
    ):
        fields = packet._fields
        u = fields.get(SNAP_INPORT)
        v = fields.get(SNAP_OUTPORT)
        if v is None:
            raise DataPlaneError(f"packet at {switch} has no egress tag")
        if switch == self.topology.port_switch(v) and fields.get(SNAP_NODE) == DONE_TAG:
            return DeliveryRecord(strip_header(packet), v, hops)
        nxt = self.rules.next_hop(switch, u, v)
        if nxt is None:
            # Re-tagged packets may join the (u, v) path midway; recover by
            # walking the installed path from the current switch.
            chain = self._path_next.get((u, v))
            if chain is not None:
                nxt = chain.get(switch)
        if nxt is None and fields.get(SNAP_NODE) == DONE_TAG:
            # Processing finished: any route to the egress works.
            nxt = self._default_next_hop(switch, self.topology.port_switch(v))
        if nxt is None:
            raise DataPlaneError(
                f"no route at {switch} for flow ({u}, {v}) "
                f"(tag={packet.get(SNAP_NODE)})"
            )
        counters = self.link_packets if links is None else links
        counters[(switch, nxt)] = counters.get((switch, nxt), 0) + 1
        if recorder is not None:
            recorder.hop(switch, nxt)
        return (packet, nxt, hops + 1)

    # -- reporting -------------------------------------------------------------

    def instruction_counts(self) -> dict:
        return {
            name: len(program.instructions) for name, program in self.switches.items()
        }

    def __repr__(self):
        return (
            f"Network({self.topology.name}, switches={len(self.switches)}, "
            f"rules={self.rules.total_rules()})"
        )


# -- execution-spec serialization (worker processes and cluster daemons) ------
#
# A remote executor never sees the parent's Network: it receives a *spec*
# of pure data and rehydrates a lane-capable Network from it.  The spec is
# split along the exec-token boundary: the *program* half (the lowered
# switch programs, keyed ``_exec_program_key``) is the expensive part and
# survives TE rewires; the *network* half (routing tables, port map,
# reverse adjacency, packet-state mapping, placement, demands, keyed
# ``_exec_network_key``) is rebuilt per rewire.  Shipping them separately
# is what lets a cluster coordinator rewire a warm worker with zero
# program bytes on the wire.


class _WorkerGraph:
    """Reverse-adjacency view backing ``topology.graph.pred``."""

    __slots__ = ("pred",)

    def __init__(self, pred: dict):
        self.pred = pred


class _WorkerTopology:
    """Just enough topology for the per-lane fast path."""

    __slots__ = ("ports", "graph", "name")

    def __init__(self, ports: dict, pred: dict):
        self.ports = ports
        self.graph = _WorkerGraph(pred)
        self.name = "worker"

    def port_switch(self, port: int) -> str:
        try:
            return self.ports[port]
        except KeyError:
            raise DataPlaneError(f"unknown OBS port {port}") from None


class _WorkerRouting:
    """Path table shim satisfying ``Network._init_routing_indices``."""

    __slots__ = ("paths",)

    def __init__(self, paths: dict):
        self.paths = paths


def exec_program_spec(network: Network) -> dict:
    """The program half of the execution spec: ``{switch: LoweredProgram}``."""
    from repro.dataplane.netasm import lower_programs

    return lower_programs(network.switches)


def exec_network_spec(network: Network) -> dict:
    """The network half of the execution spec (pure data, no programs)."""
    topology = network.topology
    graph = topology.graph
    return {
        "ports": dict(topology.ports),
        "pred": {node: tuple(graph.pred[node]) for node in graph.pred},
        "paths": {flow: tuple(path) for flow, path in network.routing.paths.items()},
        "tables": {sw: dict(tbl) for sw, tbl in network.rules.tables.items()},
        "mapping": network.mapping,
        "placement": dict(network.placement),
        "demands": dict(network.demands),
        "state_defaults": dict(network.state_defaults),
    }


def worker_network(
    spec: dict, programs: dict, program_key, network_key
) -> Network:
    """A lane-capable Network rehydrated from an execution spec.

    ``programs`` is the (already revived, possibly cached) switch-program
    set; two networks rehydrated with the same programs share state
    stores, exactly like the parent's ``rewire`` path.  The result runs
    the compiled per-shard lane but never consults an xFDD.
    """
    network = object.__new__(Network)
    network.topology = _WorkerTopology(spec["ports"], spec["pred"])
    network.placement = spec["placement"]
    network.routing = _WorkerRouting(spec["paths"])
    network.mapping = spec["mapping"]
    network.demands = spec["demands"]
    network.index = None  # lanes never consult the xFDD
    network.rules = RuleTables(spec["tables"])
    network.state_defaults = spec["state_defaults"]
    network.switches = programs
    network.link_packets = {}
    network.deliveries = []
    network.default_engine = "sequential"
    network.replicate_state = False  # worker lanes never re-plan
    network._exec_program_key = program_key
    network._exec_network_key = network_key
    network._init_routing_indices()
    return network
