"""Deprecated single-compilation entry point.

The pipeline now lives in three places:

* :mod:`repro.core.controller` — :class:`SnapController`, the long-lived
  session whose events (``submit`` / ``update_policy`` /
  ``update_topology`` / ``fail_link`` / ``restore_link`` /
  ``set_demands``) run the Table 4 phase sets;
* :mod:`repro.core.result` — the immutable :class:`Snapshot`
  (``CompilationResult`` is its compatibility alias) and the
  ``SCENARIO_PHASES`` table;
* :mod:`repro.milp.backends` — the pluggable ST/TE solver backends
  (``solver="milp" | "greedy"``).

:class:`Compiler` remains as a thin shim that owns a controller and maps
the old scenario methods onto events.  New code should use the
controller directly — see ``docs/api.md`` for the migration guide.
"""

from __future__ import annotations

import warnings

from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.core.result import (  # noqa: F401  (re-exported compat names)
    SCENARIO_PHASES,
    CompilationResult,
    Snapshot,
)
from repro.topology.graph import Topology


class Compiler:
    """Deprecated: compiles one program onto one topology.

    A thin delegation shim over :class:`SnapController` kept so existing
    callers (and the paper-era examples in older docs) keep working.
    """

    def __init__(
        self,
        topology: Topology,
        program: Program,
        demands: dict | None = None,
        stateful_switches=None,
        use_heuristic: bool = False,
        solver_time_limit: float | None = None,
        mip_rel_gap: float | None = None,
        validate: bool = True,
    ):
        warnings.warn(
            "Compiler is deprecated; use repro.SnapController "
            "(see docs/api.md for the migration guide)",
            DeprecationWarning,
            stacklevel=2,
        )
        options = CompilerOptions(
            solver="greedy" if use_heuristic else "milp",
            solver_time_limit=solver_time_limit,
            mip_rel_gap=mip_rel_gap,
            validate=validate,
            stateful_switches=(
                tuple(stateful_switches) if stateful_switches is not None else None
            ),
        )
        self._controller = SnapController(
            topology, program, demands=demands, options=options
        )

    # -- state the old class exposed as attributes --------------------------

    @property
    def controller(self) -> SnapController:
        """The underlying session (for incremental migration)."""
        return self._controller

    @property
    def topology(self) -> Topology:
        return self._controller.topology

    @topology.setter
    def topology(self, topology: Topology) -> None:
        # Legacy callers assigned and then ran a scenario; replacing the
        # base graph invalidates the standing model and failure set.
        self._controller.replace_topology(topology)

    @property
    def program(self) -> Program:
        return self._controller.program

    @program.setter
    def program(self, program: Program) -> None:
        # Routed through the controller mutator so the standing TE model
        # and solve-retention key are invalidated (assigning `_program`
        # directly left them stale).
        self._controller.replace_program(program)

    @property
    def demands(self) -> dict:
        # The *live* dict, not the controller's read-only view: legacy
        # callers mutated `compiler.demands` in place before a scenario
        # call, and that must keep affecting the next compilation.
        return self._controller._demands

    @demands.setter
    def demands(self, demands: dict) -> None:
        self._controller._demands = dict(demands)

    @property
    def use_heuristic(self) -> bool:
        return self._controller.backend.name == "greedy"

    @property
    def stateful_switches(self):
        return self._controller.options.stateful_switches

    @property
    def solver_time_limit(self):
        return self._controller.options.solver_time_limit

    @property
    def mip_rel_gap(self):
        return self._controller.options.mip_rel_gap

    @property
    def validate(self) -> bool:
        return self._controller.options.validate

    @property
    def _last(self):
        return self._controller.current

    @property
    def _te_model(self):
        return self._controller._te_model

    @property
    def _te_failed(self) -> set:
        return set(self._controller.failed_links)

    def _analysis_phases(self, program, timer):
        """P1-P3 against the session topology (legacy perf-harness hook)."""
        return self._controller._analysis(
            program, self._controller.topology, timer
        )

    # -- scenarios (Table 4) ------------------------------------------------

    def cold_start(self) -> CompilationResult:
        """First compilation: all phases including MILP creation."""
        return self._controller.submit()

    def policy_change(self, new_program: Program | None = None) -> CompilationResult:
        """Recompile for a new policy (placement re-decided, ST)."""
        controller = self._controller
        if controller.current is None:
            # Legacy: policy_change as the *first* compilation ran the
            # full ST compile (no cold-start precondition existed).
            if new_program is not None:
                controller._program = new_program
            return controller._compile_st("policy_change")
        return controller.update_policy(new_program)

    def topology_change(
        self,
        new_topology: Topology | None = None,
        new_demands: dict | None = None,
        failed_links=None,
    ) -> CompilationResult:
        """Re-optimize routing only (TE), keeping the last placement.

        Legacy semantics preserved: ``failed_links`` *replaces* the whole
        failure set (``None`` restores everything), ``new_topology``
        forces a fresh standing model.  The controller spelling is
        ``update_topology`` / ``fail_link`` / ``restore_link`` /
        ``set_demands`` / ``reroute``.
        """
        if new_topology is not None:
            return self._controller.update_topology(
                new_topology, demands=new_demands
            )
        return self._controller.reroute(
            failed_links=tuple(failed_links or ()),
            demands=new_demands,
        )

    def __repr__(self):
        return f"Compiler(shim for {self._controller!r})"
