"""The SNAP compiler pipeline (Figure 5, phases of Table 4).

    P1  state dependency analysis        (§4.1)
    P2  xFDD generation                  (§4.2)
    P3  packet-state mapping             (§4.3)
    P4  MILP creation                    (§4.4)
    P5  MILP solving — ST (placement+routing) or TE (routing only)
    P6  rule generation                  (§4.5)

Scenario entry points mirror Table 4:

* :meth:`Compiler.cold_start` — all phases, ST.
* :meth:`Compiler.policy_change` — P1, P2, P3, P5(ST), P6.  (The paper
  updates the standing MILP incrementally in milliseconds; we rebuild it
  and report the rebuild separately as P4 so scenario totals can follow
  Table 4's phase sets.)
* :meth:`Compiler.topology_change` — P5(TE), P6 with placement fixed.
"""

from __future__ import annotations

from repro.analysis.dependency import DependencyInfo, analyze_dependencies
from repro.analysis.packet_state import PacketStateMapping, packet_state_mapping
from repro.core.program import Program
from repro.dataplane.network import Network
from repro.dataplane.rules import build_rule_tables
from repro.milp.placement import PlacementModel, PlacementInputs
from repro.milp.heuristic import greedy_solution
from repro.milp.results import RoutingPaths, extract_paths, validate_solution
from repro.milp.te import build_te_model
from repro.topology.graph import Topology
from repro.topology.traffic import gravity_traffic_matrix
from repro.util.timer import PhaseTimer
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DiagramFactory
from repro.xfdd.order import TestOrder

#: Table 4: which phases run in each scenario.
SCENARIO_PHASES = {
    "cold_start": ("P1", "P2", "P3", "P4", "P5", "P6"),
    "policy_change": ("P1", "P2", "P3", "P5", "P6"),
    "topology_change": ("P5", "P6"),
}


class CompilationResult:
    """Everything the compiler produced, plus per-phase timings."""

    def __init__(
        self,
        program: Program,
        topology: Topology,
        demands: dict,
        xfdd,
        dependencies: DependencyInfo,
        mapping: PacketStateMapping,
        placement: dict,
        routing: RoutingPaths,
        objective: float,
        timer: PhaseTimer,
        scenario: str,
        model_stats: dict | None = None,
        diagram_factory: DiagramFactory | None = None,
    ):
        self.program = program
        self.topology = topology
        self.demands = demands
        self.xfdd = xfdd
        self.dependencies = dependencies
        self.mapping = mapping
        self.placement = placement
        self.routing = routing
        self.objective = objective
        self.timer = timer
        self.scenario = scenario
        self.model_stats = model_stats or {}
        #: The hash-consing session that built ``xfdd`` (None for scenarios
        #: that reuse a previous compilation's diagram).
        self.diagram_factory = diagram_factory

    def scenario_time(self, scenario: str | None = None) -> float:
        """Total time of the phases Table 4 assigns to the scenario."""
        phases = SCENARIO_PHASES[scenario or self.scenario]
        return self.timer.total(phases)

    def build_network(self) -> Network:
        """Instantiate the simulated data plane for this compilation."""
        return Network(
            self.topology,
            self.xfdd,
            self.placement,
            self.routing,
            self.mapping,
            self.demands,
            self.program.state_defaults,
        )

    def __repr__(self):
        return (
            f"CompilationResult({self.program.name!r} on {self.topology.name!r}, "
            f"scenario={self.scenario}, placement={self.placement})"
        )


class Compiler:
    """Compiles one program onto one topology."""

    def __init__(
        self,
        topology: Topology,
        program: Program,
        demands: dict | None = None,
        stateful_switches=None,
        use_heuristic: bool = False,
        solver_time_limit: float | None = None,
        mip_rel_gap: float | None = None,
        validate: bool = True,
    ):
        self.topology = topology
        self.program = program
        ports = sorted(topology.ports)
        self.demands = (
            dict(demands)
            if demands is not None
            else gravity_traffic_matrix(ports, total_demand=1000.0, seed=0)
        )
        self.stateful_switches = stateful_switches
        self.use_heuristic = use_heuristic
        self.solver_time_limit = solver_time_limit
        self.mip_rel_gap = mip_rel_gap
        self.validate = validate
        self._last: CompilationResult | None = None
        self._te_model = None
        self._te_failed: set = set()

    # -- shared phase implementations -------------------------------------

    def _analysis_phases(self, program: Program, timer: PhaseTimer):
        with timer.phase("P1"):
            dependencies = analyze_dependencies(program.full_policy())
        with timer.phase("P2"):
            order = TestOrder(program.registry, dependencies.state_rank)
            # One hash-consing session and apply-cache per compilation:
            # the intern table cannot leak across runs, and cache hit
            # counters describe exactly this program.
            factory = DiagramFactory()
            composer = Composer(order, factory=factory)
            xfdd = to_xfdd(program.full_policy(), composer)
        with timer.phase("P3"):
            ports = sorted(self.topology.ports)
            mapping = packet_state_mapping(xfdd, ports, ports)
        xfdd_stats = {
            f"xfdd_{name}": value for name, value in composer.cache_stats().items()
        }
        return dependencies, xfdd, mapping, xfdd_stats, factory

    def _solve_st(self, dependencies, mapping, timer: PhaseTimer):
        if self.use_heuristic:
            with timer.phase("P4"):
                pass
            with timer.phase("P5"):
                solution, routing = greedy_solution(
                    self.topology, self.demands, mapping, dependencies,
                    self.stateful_switches,
                )
            return solution, routing, {}
        with timer.phase("P4"):
            inputs = PlacementInputs(
                self.topology, self.demands, mapping, dependencies,
                self.stateful_switches,
            )
            model = PlacementModel(inputs)
        stats = {
            "variables": model.model.num_vars,
            "integer_variables": model.model.num_integer_vars,
            "constraints": model.model.num_constraints,
        }
        with timer.phase("P5"):
            solution = model.solve(
                time_limit=self.solver_time_limit, mip_rel_gap=self.mip_rel_gap
            )
        routing = None
        return solution, routing, stats

    def _finish(self, program, dependencies, xfdd, mapping, solution, routing,
                timer: PhaseTimer, scenario: str, stats: dict,
                diagram_factory: DiagramFactory | None = None):
        with timer.phase("P6"):
            if routing is None:
                routing = extract_paths(solution, self.topology, mapping, dependencies)
            if self.validate:
                validate_solution(routing, self.topology, mapping, dependencies)
            build_rule_tables(routing)
        result = CompilationResult(
            program=program,
            topology=self.topology,
            demands=self.demands,
            xfdd=xfdd,
            dependencies=dependencies,
            mapping=mapping,
            placement=solution.placement,
            routing=routing,
            objective=solution.objective,
            timer=timer,
            scenario=scenario,
            model_stats=stats,
            diagram_factory=diagram_factory,
        )
        self._last = result
        return result

    # -- scenarios (Table 4) -------------------------------------------------

    def cold_start(self) -> CompilationResult:
        """First compilation: all phases including MILP creation."""
        timer = PhaseTimer()
        deps, xfdd, mapping, xfdd_stats, factory = self._analysis_phases(
            self.program, timer
        )
        solution, routing, stats = self._solve_st(deps, mapping, timer)
        return self._finish(
            self.program, deps, xfdd, mapping, solution, routing, timer,
            "cold_start", {**stats, **xfdd_stats}, factory,
        )

    def policy_change(self, new_program: Program | None = None) -> CompilationResult:
        """Recompile for a new policy (placement re-decided, ST)."""
        if new_program is not None:
            self.program = new_program
        timer = PhaseTimer()
        deps, xfdd, mapping, xfdd_stats, factory = self._analysis_phases(
            self.program, timer
        )
        solution, routing, stats = self._solve_st(deps, mapping, timer)
        return self._finish(
            self.program, deps, xfdd, mapping, solution, routing, timer,
            "policy_change", {**stats, **xfdd_stats}, factory,
        )

    def topology_change(
        self,
        new_topology: Topology | None = None,
        new_demands: dict | None = None,
        failed_links=None,
    ) -> CompilationResult:
        """Re-optimize routing only (TE), keeping the last placement.

        Two paths:

        * ``new_topology`` — full TE model rebuild against the new graph;
        * ``failed_links`` / ``new_demands`` — *incremental* (§6.2.2): the
          standing TE model is patched (failed links pinned to zero,
          demand coefficients rewritten) and re-solved.
        """
        if self._last is None:
            raise RuntimeError("run cold_start() before topology_change()")
        previous = self._last
        if new_demands is not None:
            self.demands = dict(new_demands)
        timer = PhaseTimer()
        if new_topology is not None:
            self.topology = new_topology
            self._te_model = None
            self._te_failed = set()
        effective_topology = self.topology
        with timer.phase("P5"):
            if new_topology is None and (
                failed_links is not None or self._te_model is not None
            ):
                # Incremental path: patch the cached standing model.
                if self._te_model is None:
                    self._te_model = build_te_model(
                        self.topology,
                        self.demands,
                        previous.mapping,
                        previous.dependencies,
                        previous.placement,
                        self.stateful_switches,
                    )
                model = self._te_model
                wanted = {tuple(sorted(link)) for link in (failed_links or ())}
                for a, b in self._te_failed - wanted:
                    model.restore_link(a, b)
                for a, b in wanted - self._te_failed:
                    model.fail_link(a, b)
                self._te_failed = wanted
                if new_demands is not None:
                    model.set_demands(self.demands)
                for a, b in sorted(wanted):
                    effective_topology = effective_topology.without_link(a, b)
            else:
                model = build_te_model(
                    self.topology,
                    self.demands,
                    previous.mapping,
                    previous.dependencies,
                    previous.placement,
                    self.stateful_switches,
                )
            solution = model.solve(time_limit=self.solver_time_limit)
        saved_topology = self.topology
        self.topology = effective_topology
        try:
            return self._finish(
                previous.program,
                previous.dependencies,
                previous.xfdd,
                previous.mapping,
                solution,
                None,
                timer,
                "topology_change",
                {},
                previous.diagram_factory,
            )
        finally:
            self.topology = saved_topology
