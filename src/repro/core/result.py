"""Immutable compilation snapshots.

Every event a :class:`~repro.core.controller.SnapController` handles
yields one :class:`Snapshot`: a frozen, keyword-only record of everything
that compilation produced, stamped with a monotonically increasing
``generation`` and the ``event`` that produced it.  Snapshots are values
— the controller never edits one in place, and callers can hold onto any
generation (for diffing, rollback inspection, or serving) without it
changing underneath them.

``CompilationResult`` is the snapshot's pre-session name, kept as an
alias for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.analysis.dependency import DependencyInfo
from repro.analysis.packet_state import PacketStateMapping
from repro.core.program import Program
from repro.milp.results import RoutingPaths
from repro.topology.graph import Topology
from repro.util.timer import PhaseTimer
from repro.xfdd.diagram import DiagramFactory

#: Table 4: which phases run in each scenario.
SCENARIO_PHASES = {
    "cold_start": ("P1", "P2", "P3", "P4", "P5", "P6"),
    "policy_change": ("P1", "P2", "P3", "P5", "P6"),
    "topology_change": ("P5", "P6"),
}

#: Controller event -> Table 4 scenario (phase-set key).
EVENT_SCENARIOS = {
    "cold_start": "cold_start",
    "policy_change": "policy_change",
    "topology_change": "topology_change",
    "link_failure": "topology_change",
    "link_restore": "topology_change",
    "demand_change": "topology_change",
}


@dataclass(frozen=True, kw_only=True, repr=False, eq=False)
class Snapshot:
    """One compilation, immutably.

    ``topology`` is the *effective* topology this compilation was solved
    against (base topology minus currently failed links) — routing,
    validation, and the data plane all agree with it by construction.
    ``scenario`` keys :data:`SCENARIO_PHASES`; ``event`` records which
    controller event produced the snapshot (provenance, see
    :data:`EVENT_SCENARIOS`).

    Compares (and hashes) by identity: each compilation is a distinct
    point in the session's history even when two solves happen to agree,
    so snapshots work as dict keys / set members out of the box.
    """

    generation: int
    event: str
    scenario: str
    program: Program
    topology: Topology
    demands: Mapping
    xfdd: Any
    dependencies: DependencyInfo
    mapping: PacketStateMapping
    placement: Mapping
    routing: RoutingPaths
    objective: float
    timer: PhaseTimer
    #: Per-switch next-hop tables compiled from ``routing`` in P6 (so
    #: data planes built from this snapshot reuse them, not rebuild).
    rules: Any = None
    model_stats: Mapping = field(default_factory=dict)
    #: Per-subpolicy provenance: label -> :class:`~repro.core.artifacts.
    #: SubPolicyArtifact` (fingerprint, sub-xFDD, dependency slice,
    #: effect report, reused/recompiled flag).  Empty for TE events,
    #: which reuse the previous compilation's artifacts wholesale.
    artifacts: Mapping = field(default_factory=dict)
    #: The hash-consing session that built ``xfdd`` (None for scenarios
    #: that reuse a previous compilation's diagram).
    diagram_factory: DiagramFactory | None = None

    def __post_init__(self):
        # Mapping-typed fields are defensively copied and exposed through
        # read-only proxies: a snapshot's contents cannot drift even if
        # the caller still holds the dict it passed in.
        for name in ("demands", "placement", "model_stats", "artifacts"):
            object.__setattr__(
                self, name, MappingProxyType(dict(getattr(self, name)))
            )

    def scenario_time(self, scenario: str | None = None) -> float:
        """Total time of the phases Table 4 assigns to the scenario."""
        phases = SCENARIO_PHASES[scenario or self.scenario]
        return self.timer.total(phases)

    def build_network(self):
        """Instantiate a fresh simulated data plane for this snapshot.

        Each call returns an independent :class:`~repro.dataplane.network.
        Network` with empty state tables; use
        :meth:`SnapController.network` for the live, state-carrying one.
        """
        from repro.dataplane.network import Network

        return Network(
            self.topology,
            self.xfdd,
            dict(self.placement),
            self.routing,
            self.mapping,
            dict(self.demands),
            self.program.state_defaults,
            rules=self.rules,
        )

    def __repr__(self):
        return (
            f"Snapshot(gen={self.generation}, {self.program.name!r} on "
            f"{self.topology.name!r}, event={self.event}, "
            f"placement={dict(self.placement)})"
        )


#: Backwards-compatible name for the result type.
CompilationResult = Snapshot
