"""A SNAP *program*: policy + assumption + metadata.

Bundles what an operator hands the compiler: the OBS policy, an optional
``assumption`` predicate (§4.3 — operator knowledge such as "traffic with
srcip in subnet i enters at port i"), state-variable defaults, and the
field registry in use.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import SnapError
from repro.lang.fields import DEFAULT_REGISTRY, FieldRegistry
from repro.lang.parser import parse, parse_predicate


class Program:
    """An OBS program ready for compilation."""

    def __init__(
        self,
        policy: ast.Policy,
        assumption: ast.Predicate | None = None,
        state_defaults: dict | None = None,
        registry: FieldRegistry | None = None,
        name: str = "program",
    ):
        if not isinstance(policy, ast.Policy):
            raise SnapError("Program needs a Policy")
        if assumption is not None and not isinstance(assumption, ast.Predicate):
            raise SnapError("assumption must be a predicate")
        self.policy = policy
        self.assumption = assumption
        self.registry = registry or DEFAULT_REGISTRY
        inferred = ast.infer_state_defaults(policy)
        inferred.update(state_defaults or {})
        self.state_defaults = inferred
        self.name = name

    @classmethod
    def from_source(
        cls,
        source: str,
        assumption: str | None = None,
        definitions: dict | None = None,
        params: dict | None = None,
        state_defaults: dict | None = None,
        registry: FieldRegistry | None = None,
        name: str = "program",
    ) -> "Program":
        registry = registry or DEFAULT_REGISTRY
        policy = parse(source, fields=registry, definitions=definitions, params=params)
        pred = (
            parse_predicate(assumption, fields=registry, params=params)
            if assumption
            else None
        )
        return cls(policy, pred, state_defaults, registry, name)

    def full_policy(self) -> ast.Policy:
        """The policy actually compiled: ``assumption ; policy``."""
        if self.assumption is None:
            return self.policy
        return ast.Seq(self.assumption, self.policy)

    def compose_parallel(self, other: "Program", name: str | None = None) -> "Program":
        """``self + other`` with merged metadata (Figure 11's workload).

        Assumptions are operator knowledge (§4.3) and both still hold of
        the composed program, so they conjoin (predicate intersection);
        identical assumptions — the common case when components share a
        port assumption — collapse to one.
        """
        if self.assumption is None:
            assumption = other.assumption
        elif other.assumption is None or other.assumption == self.assumption:
            assumption = self.assumption
        else:
            assumption = ast.And(self.assumption, other.assumption)
        merged_defaults = dict(self.state_defaults)
        merged_defaults.update(other.state_defaults)
        return Program(
            ast.Parallel(self.policy, other.policy),
            assumption,
            merged_defaults,
            self.registry,
            name or f"{self.name}+{other.name}",
        )

    def __repr__(self):
        return f"Program({self.name!r})"
