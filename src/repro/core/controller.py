"""The long-lived compilation session (Figure 5 run as a service).

SNAP's Table 4 scenarios — cold start, policy change, topology/TM change
— are events arriving at a controller that outlives any one compilation.
:class:`SnapController` models exactly that: one session owns the base
topology, the current program, the traffic matrix, the standing TE model
(§6.2.2), and the live data plane; every event method returns a new
immutable :class:`~repro.core.result.Snapshot` and never mutates a
previously returned one.

Event → phase-set mapping (Table 4):

=================  =====================  ==========================
event method       Table 4 scenario       phases run
=================  =====================  ==========================
``submit``         cold start             P1 P2 P3 P4 P5(ST) P6
``update_policy``  policy change          P1 P2 P3 P4 P5(ST) P6 [#]_
``update_topology``  topology/TM change   P5(TE, fresh model) P6
``fail_link``      topology/TM change     P5(TE, patched model) P6
``restore_link``   topology/TM change     P5(TE, patched model) P6
``set_demands``    topology/TM change     P5(TE, patched model) P6
=================  =====================  ==========================

.. [#] The paper updates the standing MILP incrementally; we rebuild it
   and report the rebuild separately as P4 so scenario totals can follow
   Table 4's phase sets (``Snapshot.scenario_time``).

Link events patch the *standing* TE model — built once per placement and
re-solved with failed links pinned to zero / demand coefficients
rewritten — instead of rebuilding it (§6.2.2).  Policy events invalidate
it, since a new placement makes the old routing LP meaningless.

:meth:`network` returns the session's live data plane.  When a later
event produces a new snapshot, the live network is *hot-swapped*: a new
data plane is compiled and the old one's state-store contents (every
``count``/``seen``/``blacklist`` entry) are carried over, so a policy
update does not forget what the network has learned — the OpenState /
Open Packet Processor notion of reconfiguring a stateful data plane
without losing its state.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import replace
from types import MappingProxyType
from typing import NamedTuple

from repro.analysis.dependency import analyze_dependencies, st_dep
from repro.analysis.effects import analyze_effects
from repro.analysis.packet_state import packet_state_mapping
from repro.core.artifacts import SubPolicyArtifact, split_units
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.core.result import EVENT_SCENARIOS, Snapshot
from repro.dataplane.engine import make_session_engine
from repro.dataplane.network import Network
from repro.dataplane.rules import build_rule_tables
from repro.lang.ast import state_variables
from repro.lang.errors import SnapError
from repro.lang.fingerprint import fingerprint_hex
from repro.milp.backends import get_backend
from repro.milp.results import extract_paths, validate_solution
from repro.topology.graph import Topology
from repro.topology.traffic import gravity_traffic_matrix
from repro.obs import configure as _configure_telemetry
from repro.obs.metrics import counter, gauge
from repro.obs.tracing import TRACER
from repro.util.timer import PhaseTimer
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DiagramFactory
from repro.xfdd.incremental import CompileSession
from repro.xfdd.order import TestOrder

#: Bound on the content-keyed ST-solve memo: each entry pins a solution
#: and routing (small), and real event streams alternate among a handful
#: of placements (A/B policy flips, threshold sweeps).
SOLVE_MEMO_CAP = 32

_CONTROLLER_EVENTS = counter(
    "snap_controller_events_total",
    "Controller events processed, by event kind",
)
_GENERATION = gauge(
    "snap_controller_generation", "Generation of the latest snapshot"
)


def _norm_link(a, b=None):
    """Canonical undirected link key."""
    if b is None:
        a, b = a
    return tuple(sorted((a, b)))


class AnalysisResult(NamedTuple):
    """What P1-P3 produce for one compilation."""

    dependencies: object
    xfdd: object
    mapping: object
    stats: dict
    factory: object
    artifacts: dict
    reused: int
    recompiled: int


class SnapController:
    """One compilation session: events in, immutable snapshots out."""

    def __init__(
        self,
        topology: Topology,
        program: Program | None = None,
        demands: dict | None = None,
        options: CompilerOptions | None = None,
        **overrides,
    ):
        if options is None:
            options = CompilerOptions(**overrides)
        elif overrides:
            options = replace(options, **overrides)
        self._options = options
        if options.telemetry is not None:
            # Session-scoped telemetry override: applied process-wide
            # (the registry and tracer are shared), same as calling
            # repro.obs.configure() before constructing the session.
            _configure_telemetry(options.telemetry)
        self._backend = get_backend(options.solver)
        self._topology = topology
        self._program = program
        ports = sorted(topology.ports)
        self._demands = (
            dict(demands)
            if demands is not None
            else gravity_traffic_matrix(ports, total_demand=1000.0, seed=0)
        )
        #: Currently failed links (canonical undirected keys).
        self._failed: frozenset = frozenset()
        self._generation = -1
        self._current: Snapshot | None = None
        # Bounded: old snapshots (and the xFDD factories they pin) are
        # evicted once the limit is reached; `current` is always kept.
        self._history: deque = deque(maxlen=options.history_limit)
        self._network: Network | None = None
        # Resolved engine for the live data plane.  Engines that own OS
        # resources (the process pool) must be one instance per session,
        # not one per replay call — created lazily in network().
        self._engine_runner = None
        # Standing TE model (§6.2.2) and the failure set applied to it.
        self._te_model = None
        self._model_failed: set = set()
        # Incremental delta compilation (ROADMAP): one persistent
        # CompileSession carries the hash-consing factory, apply-cache,
        # sub-xFDD/effects memos, dependency slicer, and path-summary
        # memo across generations; the solve memo reuses whole ST
        # solutions when nothing the MILP sees changed.
        self._session = CompileSession() if options.incremental else None
        self._solve_memo: OrderedDict = OrderedDict()
        self._last_solve_key = None

    # -- introspection -----------------------------------------------------

    @property
    def options(self) -> CompilerOptions:
        return self._options

    @property
    def backend(self):
        """The solver backend (its ``calls`` counters included)."""
        return self._backend

    @property
    def topology(self) -> Topology:
        """The base topology (failed links *not* removed)."""
        return self._topology

    @property
    def program(self) -> Program | None:
        return self._program

    @property
    def demands(self):
        """Read-only view of the current traffic matrix."""
        return MappingProxyType(self._demands)

    @property
    def failed_links(self) -> frozenset:
        return self._failed

    @property
    def current(self) -> Snapshot | None:
        """The latest snapshot, or None before the first ``submit``."""
        return self._current

    @property
    def generation(self) -> int:
        """Generation of the latest snapshot (-1 before ``submit``)."""
        return self._generation

    def history(self) -> tuple:
        """Recent snapshots, oldest first (the newest
        ``options.history_limit`` of them; ``None`` retains all)."""
        return tuple(self._history)

    def effective_topology(self) -> Topology:
        """The base topology with currently failed links removed."""
        topology = self._topology
        for a, b in sorted(self._failed):
            topology = topology.without_link(a, b)
        return topology

    # -- ST events (placement re-decided) ----------------------------------

    def submit(self, program: Program | None = None) -> Snapshot:
        """Cold start: compile ``program`` from scratch (all phases, ST).

        Resets session event state (failed links, standing TE model) and
        every incremental cache — a resubmit is a genuine cold start.
        """
        with self._event_transaction():
            if program is not None:
                self._program = program
            if self._program is None:
                raise SnapError("no program: pass one to submit() or __init__")
            self._failed = frozenset()
            if self._session is not None:
                self._session.reset()
            self._solve_memo.clear()
            self._last_solve_key = None
            return self._compile_st("cold_start")

    def update_policy(
        self, program: Program | None = None, *, incremental: bool | None = None
    ) -> Snapshot:
        """Policy change: recompile (placement re-decided, ST).

        Failed links stay failed — the new placement is solved against
        the current effective topology.  ``incremental`` overrides
        ``options.incremental`` for this one event: ``False`` forces the
        from-scratch path (the escape hatch, and what the equivalence
        tests compare against); the session's caches are left alone
        either way.
        """
        self._require_current("update_policy")
        use_incremental = (
            self._options.incremental if incremental is None else incremental
        )
        with self._event_transaction():
            if program is not None:
                self._program = program
            return self._compile_st("policy_change", incremental=use_incremental)

    # -- TE events (placement fixed, routing re-optimized) -----------------

    def update_topology(
        self, topology: Topology, demands: dict | None = None
    ) -> Snapshot:
        """Replace the base topology; re-route with a fresh TE model.

        The failure set and standing model are discarded — they describe
        the old graph.
        """
        self._require_current("update_topology")
        with self._event_transaction():
            self._topology = topology
            self._failed = frozenset()
            self._invalidate_te()
            if demands is not None:
                self._demands = dict(demands)
            return self._reoptimize("topology_change")

    def fail_link(self, a, b) -> Snapshot:
        """A link went down: patch the standing model, re-route."""
        self._require_current("fail_link")
        with self._event_transaction():
            self._failed = self._failed | {_norm_link(a, b)}
            return self._reoptimize("link_failure")

    def restore_link(self, a, b) -> Snapshot:
        """A failed link came back: patch the standing model, re-route."""
        self._require_current("restore_link")
        with self._event_transaction():
            self._failed = self._failed - {_norm_link(a, b)}
            return self._reoptimize("link_restore")

    def set_demands(self, demands: dict) -> Snapshot:
        """Traffic-matrix change: rewrite demand coefficients, re-route.

        The current failure set stays in force.
        """
        self._require_current("set_demands")
        with self._event_transaction():
            self._demands = dict(demands)
            return self._reoptimize("demand_change", demands_changed=True)

    def reroute(
        self,
        failed_links=None,
        demands: dict | None = None,
        event: str = "topology_change",
    ) -> Snapshot:
        """General TE event: replace the whole failure set and/or the
        traffic matrix in one re-optimization.

        ``failed_links=None`` keeps the current set; ``[]`` restores
        everything.  This is the bulk form of ``fail_link`` /
        ``restore_link`` / ``set_demands`` (and what the legacy
        ``Compiler.topology_change`` delegates to).  ``event`` labels the
        snapshot's provenance and must map to the topology/TM-change
        scenario.
        """
        self._require_current("reroute")
        if EVENT_SCENARIOS.get(event) != "topology_change":
            known = sorted(
                e for e, s in EVENT_SCENARIOS.items() if s == "topology_change"
            )
            raise SnapError(
                f"reroute event must be one of {known}, got {event!r}"
            )
        with self._event_transaction():
            demands_changed = False
            if demands is not None:
                self._demands = dict(demands)
                demands_changed = True
            if failed_links is not None:
                self._failed = frozenset(
                    _norm_link(link) for link in failed_links
                )
            return self._reoptimize(event, demands_changed=demands_changed)

    # -- session input mutators (no compilation) ---------------------------

    def replace_program(self, program: Program | None) -> None:
        """Set the session's program without compiling it yet.

        The next ST event (``submit``/``update_policy``) compiles it.
        The standing TE model and the solve-retention key are dropped:
        they describe the previous program, and a later TE event must
        not re-route against inputs the session no longer holds.  (The
        deprecated ``Compiler.program`` setter used to poke
        ``_program`` directly with no invalidation — this is the
        sanctioned spelling.)
        """
        self._program = program
        self._invalidate_te()
        self._last_solve_key = None

    def replace_topology(self, topology: Topology) -> None:
        """Replace the base topology without re-routing yet.

        The failure set is reset (it names links of the old graph) and
        the standing TE model and solve-retention key are dropped.
        ``update_topology`` is the compiling form of this.
        """
        self._topology = topology
        self._failed = frozenset()
        self._invalidate_te()
        self._last_solve_key = None

    # -- the live data plane -----------------------------------------------

    def network(self) -> Network:
        """The session's live data plane for the current snapshot.

        Built on first call; after each subsequent event the controller
        hot-swaps it — the new snapshot's data plane is instantiated and
        the old one's state-store contents are carried over, so state
        like ``count``/``seen`` survives live reconfiguration.
        """
        self._require_current("network")
        if self._network is None:
            self._network = self._current.build_network()
            self._network.default_engine = self._session_engine()
            self._network.replicate_state = self._options.replicate_state
        return self._network

    def close(self) -> None:
        """Release session resources — the process-engine worker pool or
        the cluster engine's worker daemons (no orphan children survive).

        Safe to call repeatedly; a closed session can keep issuing events
        — the engine recreates its pool on the next replay.
        """
        runner = self._engine_runner
        if runner is not None and hasattr(runner, "close"):
            runner.close()

    def _session_engine(self):
        """``options.engine``, resolved once per session when stateful.

        Stateful engine names (``"process"``, ``"cluster"``, anything
        registered stateful) resolve to one session-owned instance —
        a *private* one, not :func:`get_engine`'s shared one, because the
        hot-swap restart on policy rebuilds must not tear down a pool
        other sessions or ad-hoc replays are using — so worker pools,
        daemons, and their rehydration caches survive across replays and
        TE hot swaps.  Stateless engine names pass through by name.
        """
        engine = self._options.engine
        if self._engine_runner is None:
            self._engine_runner = make_session_engine(engine)
        if self._engine_runner is not None:
            return self._engine_runner
        return engine

    # -- internals ---------------------------------------------------------

    def _require_current(self, what: str) -> None:
        if self._current is None:
            raise RuntimeError(f"run submit() before {what}()")

    @contextmanager
    def _event_transaction(self):
        """Roll session inputs back if an event fails mid-flight.

        Event methods set ``_program``/``_topology``/``_demands``/
        ``_failed`` before compiling; if the solve then raises (bad
        program, infeasible model), those inputs are restored so the
        session still describes ``current`` — the caller can catch the
        error and keep issuing events.  The standing TE model is
        invalidated on failure rather than unpatched: the next TE event
        rebuilds it from the (restored) session state.
        """
        saved = (self._program, self._topology, self._demands, self._failed)
        try:
            yield
        except Exception:
            self._program, self._topology, self._demands, self._failed = saved
            self._invalidate_te()
            raise

    def _invalidate_te(self) -> None:
        self._te_model = None
        self._model_failed = set()

    def _analysis(
        self,
        program: Program,
        topology: Topology,
        timer: PhaseTimer,
        session: CompileSession | None = None,
    ) -> AnalysisResult:
        """Phases P1-P3 against an explicit topology (never ``self``'s).

        With a ``session``, P1-P3 run their delta paths: the dependency
        slicer, the fingerprint-memoized sub-xFDD build, and the node-id
        path-summary memo all reuse prior-generation work, and the
        reported xfdd counters are *per-compile deltas* of the session's
        cumulative counters (so they describe this compilation, same as
        the cold path's fresh counters do).  Without one, behaviour is
        the original from-scratch compile.
        """
        full = program.full_policy()
        with timer.phase("P1"):
            slicer = session.dep_slicer if session is not None else None
            dependencies = analyze_dependencies(full, slicer=slicer)
        with timer.phase("P2"):
            if session is not None:
                composer = session.begin_compile(
                    program.registry, dependencies.state_rank
                )
                factory = session.factory
                pre = composer.cache_stats()
                memo_pre = session.stats()
                xfdd = session.build(full)
            else:
                order = TestOrder(program.registry, dependencies.state_rank)
                # One hash-consing session and apply-cache per
                # compilation: the intern table cannot leak across runs,
                # and cache hit counters describe exactly this program.
                factory = DiagramFactory()
                composer = Composer(order, factory=factory)
                xfdd = to_xfdd(full, composer)
        with timer.phase("P3"):
            ports = sorted(topology.ports)
            memo = session.mapping_memo if session is not None else None
            mapping = packet_state_mapping(xfdd, ports, ports, memo=memo)
        stats = dict(composer.cache_stats())
        if session is not None:
            counters = (
                "cache_hits", "cache_misses",
                "leaf_hits", "leaf_misses",
                "branch_hits", "branch_misses",
            )
            for name in counters:
                if name in pre:
                    stats[name] = stats[name] - pre[name]
            lookups = stats["cache_hits"] + stats["cache_misses"]
            stats["cache_hit_rate"] = (
                stats["cache_hits"] / lookups if lookups else 0.0
            )
            memo_post = session.stats()
            stats["session_memo_hits"] = (
                memo_post["session_memo_hits"] - memo_pre["session_memo_hits"]
            )
            stats["session_memo_misses"] = (
                memo_post["session_memo_misses"]
                - memo_pre["session_memo_misses"]
            )
            stats["session_memo_entries"] = memo_post["session_memo_entries"]
            stats["session_compile_no"] = memo_post["session_compile_no"]
        # Per-unit provenance artifacts (after the counter capture, so
        # the re-translation below cannot pollute per-compile numbers —
        # it is apply-cache/memo hits over already-interned nodes).
        artifacts: dict = {}
        reused = recompiled = 0
        for label, unit in split_units(full):
            if session is not None:
                was_reused = session.was_reused(unit)
                sub = session.subdiagram(unit)
                effects = session.effect_report(unit)
                unit_slice = session.dep_slicer.slice(unit)
                edges = unit_slice.edges
                unit_vars = unit_slice.reads | unit_slice.writes
            else:
                was_reused = False
                sub = to_xfdd(unit, composer)
                effects = analyze_effects(unit)
                edges = st_dep(unit)
                unit_vars = frozenset(state_variables(unit))
            reused += 1 if was_reused else 0
            recompiled += 0 if was_reused else 1
            artifacts[label] = SubPolicyArtifact(
                fingerprint=fingerprint_hex(unit),
                label=label,
                policy=unit,
                xfdd=sub,
                dep_edges=edges,
                state_vars=frozenset(unit_vars),
                effects=effects,
                reused=was_reused,
            )
        xfdd_stats = {f"xfdd_{name}": value for name, value in stats.items()}
        return AnalysisResult(
            dependencies, xfdd, mapping, xfdd_stats, factory,
            artifacts, reused, recompiled,
        )

    def _solve_key(self, topology: Topology, mapping, dependencies) -> tuple:
        """Content key over everything the ST solve reads.

        Two compilations with equal keys get byte-identical solutions
        (the MILP backend is deterministic given identical inputs), so
        the solve memo and standing-model retention are sound exactly
        when this key captures every solve input: the effective graph,
        the traffic matrix, S_uv, the dependency constraints, and the
        solver options.
        """
        return (
            topology.name,
            tuple(topology.switches()),
            tuple(sorted(topology.ports.items())),
            tuple(sorted(topology.links())),
            tuple(sorted(self._demands.items())),
            tuple(
                sorted(
                    (pair, tuple(sorted(vars_)))
                    for pair, vars_ in mapping.items()
                )
            ),
            tuple(sorted(map(tuple, map(sorted, dependencies.tied)))),
            tuple(sorted(dependencies.dep)),
            tuple(sorted(dependencies.state_rank.items())),
            self._options.stateful_switches,
            self._options.solver_time_limit,
            self._options.mip_rel_gap,
        )

    def _compile_st(self, event: str, incremental: bool = True) -> Snapshot:
        """Full recompilation: P1-P3, ST solve (or memo hit), finish."""
        with TRACER.span(f"controller.{event}", event=event) as span:
            snapshot = self._compile_st_traced(event, incremental)
            stats = snapshot.model_stats
            span.set_attr("generation", snapshot.generation)
            span.set_attr("incremental", stats.get("incremental"))
            span.set_attr(
                "incremental_reused", stats.get("incremental_reused")
            )
            span.set_attr(
                "incremental_recompiled", stats.get("incremental_recompiled")
            )
            span.set_attr("solve_reused", stats.get("solve_reused"))
            return snapshot

    def _compile_st_traced(self, event: str, incremental: bool) -> Snapshot:
        timer = PhaseTimer()
        topology = self.effective_topology()
        use_incremental = incremental and self._session is not None
        session = self._session if use_incremental else None
        analysis = self._analysis(self._program, topology, timer, session=session)
        solve_key = None
        cached = None
        if use_incremental:
            solve_key = self._solve_key(
                topology, analysis.mapping, analysis.dependencies
            )
            cached = self._solve_memo.get(solve_key)
        if cached is not None:
            # Nothing the MILP sees changed: reuse the recorded solution
            # (deterministic solver — recompute would be byte-identical).
            # P4/P5 are entered so the snapshot's phase set still follows
            # Table 4; they record ~0, which is the honest cost.
            solution, routing, solve_stats = cached
            with timer.phase("P4"):
                pass
            with timer.phase("P5"):
                pass
            self._solve_memo.move_to_end(solve_key)
        else:
            solution, routing, solve_stats = self._backend.solve_st(
                topology,
                self._demands,
                analysis.mapping,
                analysis.dependencies,
                self._options.stateful_switches,
                timer,
                time_limit=self._options.solver_time_limit,
                mip_rel_gap=self._options.mip_rel_gap,
            )
        # The standing TE model is fixed to a placement; it survives this
        # recompilation only when the solve inputs (hence the placement)
        # are provably unchanged.
        if solve_key is None or solve_key != self._last_solve_key:
            self._invalidate_te()
        self._last_solve_key = solve_key
        stats = {
            **solve_stats,
            **analysis.stats,
            "incremental": use_incremental,
            "incremental_reused": analysis.reused,
            "incremental_recompiled": analysis.recompiled,
            "solve_reused": cached is not None,
        }
        snapshot = self._finish(
            topology, self._program, analysis.dependencies, analysis.xfdd,
            analysis.mapping, solution, routing, timer, event, stats,
            analysis.factory, artifacts=analysis.artifacts,
        )
        if use_incremental and cached is None:
            self._solve_memo[solve_key] = (solution, routing, dict(solve_stats))
            while len(self._solve_memo) > SOLVE_MEMO_CAP:
                self._solve_memo.popitem(last=False)
        return snapshot

    def _reoptimize(self, event: str, demands_changed: bool = False) -> Snapshot:
        """TE re-solve against the standing model (built on first need)."""
        with TRACER.span(f"controller.{event}", event=event) as span:
            snapshot = self._reoptimize_traced(event, demands_changed)
            span.set_attr("generation", snapshot.generation)
            return snapshot

    def _reoptimize_traced(self, event: str, demands_changed: bool) -> Snapshot:
        previous = self._current
        timer = PhaseTimer()
        with timer.phase("P5"):
            model = self._te_model
            if model is None:
                # Fresh standing model: built on the *base* topology with
                # current demands; failures are applied as patches below,
                # keeping model state and self._failed in one scheme.
                model = self._backend.build_te_model(
                    self._topology,
                    self._demands,
                    previous.mapping,
                    previous.dependencies,
                    dict(previous.placement),
                    self._options.stateful_switches,
                )
                self._te_model = model
                self._model_failed = set()
            elif demands_changed:
                model.set_demands(self._demands)
            wanted = set(self._failed)
            for a, b in sorted(self._model_failed - wanted):
                model.restore_link(a, b)
            for a, b in sorted(wanted - self._model_failed):
                model.fail_link(a, b)
            self._model_failed = wanted
            solution = self._backend.solve_te(
                model, time_limit=self._options.solver_time_limit
            )
        return self._finish(
            self.effective_topology(),
            previous.program,
            previous.dependencies,
            previous.xfdd,
            previous.mapping,
            solution,
            None,
            timer,
            event,
            {},
            previous.diagram_factory,
            artifacts=previous.artifacts,
        )

    def _finish(
        self, topology, program, dependencies, xfdd, mapping, solution,
        routing, timer, event, stats, diagram_factory, artifacts=None,
    ) -> Snapshot:
        """P6 + snapshot construction + live-network hot swap.

        ``topology`` is the effective topology this solve ran against,
        threaded explicitly — the session's base topology is never
        temporarily mutated to smuggle it in.
        """
        with timer.phase("P6"):
            if routing is None:
                routing = extract_paths(solution, topology, mapping, dependencies)
            if self._options.validate:
                validate_solution(routing, topology, mapping, dependencies)
            rules = build_rule_tables(routing)
        # Every snapshot carries the static effect report (update-kind
        # classification + race findings) — the merge-safety oracle for
        # replication/sharding consumers; the AST walk is microseconds,
        # so re-deriving it on reoptimize paths (which pass stats={}) is
        # cheaper than threading it through every caller.  The session
        # memoizes it by fingerprint across generations.
        if self._session is not None:
            effects = self._session.effect_report(program.policy)
        else:
            effects = analyze_effects(program.policy)
        stats = {**stats, "effects": effects}
        self._generation += 1
        _CONTROLLER_EVENTS.labels(event=event).inc()
        _GENERATION.set(self._generation)
        snapshot = Snapshot(
            generation=self._generation,
            event=event,
            scenario=EVENT_SCENARIOS[event],
            program=program,
            topology=topology,
            demands=self._demands,
            xfdd=xfdd,
            dependencies=dependencies,
            mapping=mapping,
            placement=solution.placement,
            routing=routing,
            objective=solution.objective,
            timer=timer,
            rules=rules,
            model_stats=stats,
            artifacts=artifacts if artifacts is not None else {},
            diagram_factory=diagram_factory,
        )
        self._current = snapshot
        self._history.append(snapshot)
        if self._network is not None:
            self._network = self._swap_network(self._network, snapshot)
        return snapshot

    def _swap_network(self, live: Network, snapshot: Snapshot) -> Network:
        """The next live data plane after ``snapshot``.

        * cold start — genuinely cold: fresh stores, nothing carried;
        * TE events (same xFDD, same placement) — ``rewire``: the
          compiled switch programs and their state stores are shared,
          only routing-derived structure is rebuilt.  A process-engine
          worker pool *survives* this path: the program token is
          unchanged, so worker-side rehydration caches stay warm;
        * policy changes — full rebuild, then state-store contents
          adopted into the new placement.  The old compiled programs are
          gone, so a process-engine pool is restarted (fresh workers,
          fresh caches).
        """
        if (
            snapshot.event != "cold_start"
            and snapshot.xfdd is live.index.root
            and dict(snapshot.placement) == live.placement
            # The compiled switch set is only reusable if the new graph
            # has the same switches and the same port attachments (link
            # failures qualify; a replacement topology may not).
            and set(snapshot.topology.switches()) == set(live.topology.switches())
            and snapshot.topology.ports == live.topology.ports
        ):
            return live.rewire(
                snapshot.topology, snapshot.routing, dict(snapshot.demands),
                rules=snapshot.rules,
            )
        fresh = snapshot.build_network()
        fresh.default_engine = live.default_engine
        fresh.replicate_state = getattr(live, "replicate_state", True)
        if snapshot.event != "cold_start":
            fresh.adopt_state(live)
        if (
            fresh.default_engine is self._engine_runner
            and self._engine_runner is not None
        ):
            # Restart only the pool this session owns: a shared or
            # user-supplied engine instance may be serving other
            # sessions, whose runs must not be cancelled under them
            # (their worker caches key on exec tokens, so correctness
            # never depends on the restart — it is memory hygiene).
            self._engine_runner.restart()
        return fresh

    def __repr__(self):
        name = self._program.name if self._program is not None else None
        return (
            f"SnapController({name!r} on {self._topology.name!r}, "
            f"generation={self._generation}, solver={self._backend.name!r})"
        )
