"""The long-lived compilation session (Figure 5 run as a service).

SNAP's Table 4 scenarios — cold start, policy change, topology/TM change
— are events arriving at a controller that outlives any one compilation.
:class:`SnapController` models exactly that: one session owns the base
topology, the current program, the traffic matrix, the standing TE model
(§6.2.2), and the live data plane; every event method returns a new
immutable :class:`~repro.core.result.Snapshot` and never mutates a
previously returned one.

Event → phase-set mapping (Table 4):

=================  =====================  ==========================
event method       Table 4 scenario       phases run
=================  =====================  ==========================
``submit``         cold start             P1 P2 P3 P4 P5(ST) P6
``update_policy``  policy change          P1 P2 P3 P4 P5(ST) P6 [#]_
``update_topology``  topology/TM change   P5(TE, fresh model) P6
``fail_link``      topology/TM change     P5(TE, patched model) P6
``restore_link``   topology/TM change     P5(TE, patched model) P6
``set_demands``    topology/TM change     P5(TE, patched model) P6
=================  =====================  ==========================

.. [#] The paper updates the standing MILP incrementally; we rebuild it
   and report the rebuild separately as P4 so scenario totals can follow
   Table 4's phase sets (``Snapshot.scenario_time``).

Link events patch the *standing* TE model — built once per placement and
re-solved with failed links pinned to zero / demand coefficients
rewritten — instead of rebuilding it (§6.2.2).  Policy events invalidate
it, since a new placement makes the old routing LP meaningless.

:meth:`network` returns the session's live data plane.  When a later
event produces a new snapshot, the live network is *hot-swapped*: a new
data plane is compiled and the old one's state-store contents (every
``count``/``seen``/``blacklist`` entry) are carried over, so a policy
update does not forget what the network has learned — the OpenState /
Open Packet Processor notion of reconfiguring a stateful data plane
without losing its state.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import replace
from types import MappingProxyType

from repro.analysis.dependency import analyze_dependencies
from repro.analysis.effects import analyze_effects
from repro.analysis.packet_state import packet_state_mapping
from repro.core.options import CompilerOptions
from repro.core.program import Program
from repro.core.result import EVENT_SCENARIOS, Snapshot
from repro.dataplane.engine import make_session_engine
from repro.dataplane.network import Network
from repro.dataplane.rules import build_rule_tables
from repro.lang.errors import SnapError
from repro.milp.backends import get_backend
from repro.milp.results import extract_paths, validate_solution
from repro.topology.graph import Topology
from repro.topology.traffic import gravity_traffic_matrix
from repro.util.timer import PhaseTimer
from repro.xfdd.build import to_xfdd
from repro.xfdd.compose import Composer
from repro.xfdd.diagram import DiagramFactory
from repro.xfdd.order import TestOrder


def _norm_link(a, b=None):
    """Canonical undirected link key."""
    if b is None:
        a, b = a
    return tuple(sorted((a, b)))


class SnapController:
    """One compilation session: events in, immutable snapshots out."""

    def __init__(
        self,
        topology: Topology,
        program: Program | None = None,
        demands: dict | None = None,
        options: CompilerOptions | None = None,
        **overrides,
    ):
        if options is None:
            options = CompilerOptions(**overrides)
        elif overrides:
            options = replace(options, **overrides)
        self._options = options
        self._backend = get_backend(options.solver)
        self._topology = topology
        self._program = program
        ports = sorted(topology.ports)
        self._demands = (
            dict(demands)
            if demands is not None
            else gravity_traffic_matrix(ports, total_demand=1000.0, seed=0)
        )
        #: Currently failed links (canonical undirected keys).
        self._failed: frozenset = frozenset()
        self._generation = -1
        self._current: Snapshot | None = None
        # Bounded: old snapshots (and the xFDD factories they pin) are
        # evicted once the limit is reached; `current` is always kept.
        self._history: deque = deque(maxlen=options.history_limit)
        self._network: Network | None = None
        # Resolved engine for the live data plane.  Engines that own OS
        # resources (the process pool) must be one instance per session,
        # not one per replay call — created lazily in network().
        self._engine_runner = None
        # Standing TE model (§6.2.2) and the failure set applied to it.
        self._te_model = None
        self._model_failed: set = set()

    # -- introspection -----------------------------------------------------

    @property
    def options(self) -> CompilerOptions:
        return self._options

    @property
    def backend(self):
        """The solver backend (its ``calls`` counters included)."""
        return self._backend

    @property
    def topology(self) -> Topology:
        """The base topology (failed links *not* removed)."""
        return self._topology

    @property
    def program(self) -> Program | None:
        return self._program

    @property
    def demands(self):
        """Read-only view of the current traffic matrix."""
        return MappingProxyType(self._demands)

    @property
    def failed_links(self) -> frozenset:
        return self._failed

    @property
    def current(self) -> Snapshot | None:
        """The latest snapshot, or None before the first ``submit``."""
        return self._current

    @property
    def generation(self) -> int:
        """Generation of the latest snapshot (-1 before ``submit``)."""
        return self._generation

    def history(self) -> tuple:
        """Recent snapshots, oldest first (the newest
        ``options.history_limit`` of them; ``None`` retains all)."""
        return tuple(self._history)

    def effective_topology(self) -> Topology:
        """The base topology with currently failed links removed."""
        topology = self._topology
        for a, b in sorted(self._failed):
            topology = topology.without_link(a, b)
        return topology

    # -- ST events (placement re-decided) ----------------------------------

    def submit(self, program: Program | None = None) -> Snapshot:
        """Cold start: compile ``program`` from scratch (all phases, ST).

        Resets session event state (failed links, standing TE model).
        """
        with self._event_transaction():
            if program is not None:
                self._program = program
            if self._program is None:
                raise SnapError("no program: pass one to submit() or __init__")
            self._failed = frozenset()
            return self._compile_st("cold_start")

    def update_policy(self, program: Program | None = None) -> Snapshot:
        """Policy change: recompile (placement re-decided, ST).

        Failed links stay failed — the new placement is solved against
        the current effective topology.
        """
        self._require_current("update_policy")
        with self._event_transaction():
            if program is not None:
                self._program = program
            return self._compile_st("policy_change")

    # -- TE events (placement fixed, routing re-optimized) -----------------

    def update_topology(
        self, topology: Topology, demands: dict | None = None
    ) -> Snapshot:
        """Replace the base topology; re-route with a fresh TE model.

        The failure set and standing model are discarded — they describe
        the old graph.
        """
        self._require_current("update_topology")
        with self._event_transaction():
            self._topology = topology
            self._failed = frozenset()
            self._invalidate_te()
            if demands is not None:
                self._demands = dict(demands)
            return self._reoptimize("topology_change")

    def fail_link(self, a, b) -> Snapshot:
        """A link went down: patch the standing model, re-route."""
        self._require_current("fail_link")
        with self._event_transaction():
            self._failed = self._failed | {_norm_link(a, b)}
            return self._reoptimize("link_failure")

    def restore_link(self, a, b) -> Snapshot:
        """A failed link came back: patch the standing model, re-route."""
        self._require_current("restore_link")
        with self._event_transaction():
            self._failed = self._failed - {_norm_link(a, b)}
            return self._reoptimize("link_restore")

    def set_demands(self, demands: dict) -> Snapshot:
        """Traffic-matrix change: rewrite demand coefficients, re-route.

        The current failure set stays in force.
        """
        self._require_current("set_demands")
        with self._event_transaction():
            self._demands = dict(demands)
            return self._reoptimize("demand_change", demands_changed=True)

    def reroute(
        self,
        failed_links=None,
        demands: dict | None = None,
        event: str = "topology_change",
    ) -> Snapshot:
        """General TE event: replace the whole failure set and/or the
        traffic matrix in one re-optimization.

        ``failed_links=None`` keeps the current set; ``[]`` restores
        everything.  This is the bulk form of ``fail_link`` /
        ``restore_link`` / ``set_demands`` (and what the legacy
        ``Compiler.topology_change`` delegates to).  ``event`` labels the
        snapshot's provenance and must map to the topology/TM-change
        scenario.
        """
        self._require_current("reroute")
        if EVENT_SCENARIOS.get(event) != "topology_change":
            known = sorted(
                e for e, s in EVENT_SCENARIOS.items() if s == "topology_change"
            )
            raise SnapError(
                f"reroute event must be one of {known}, got {event!r}"
            )
        with self._event_transaction():
            demands_changed = False
            if demands is not None:
                self._demands = dict(demands)
                demands_changed = True
            if failed_links is not None:
                self._failed = frozenset(
                    _norm_link(link) for link in failed_links
                )
            return self._reoptimize(event, demands_changed=demands_changed)

    # -- the live data plane -----------------------------------------------

    def network(self) -> Network:
        """The session's live data plane for the current snapshot.

        Built on first call; after each subsequent event the controller
        hot-swaps it — the new snapshot's data plane is instantiated and
        the old one's state-store contents are carried over, so state
        like ``count``/``seen`` survives live reconfiguration.
        """
        self._require_current("network")
        if self._network is None:
            self._network = self._current.build_network()
            self._network.default_engine = self._session_engine()
            self._network.replicate_state = self._options.replicate_state
        return self._network

    def close(self) -> None:
        """Release session resources — the process-engine worker pool or
        the cluster engine's worker daemons (no orphan children survive).

        Safe to call repeatedly; a closed session can keep issuing events
        — the engine recreates its pool on the next replay.
        """
        runner = self._engine_runner
        if runner is not None and hasattr(runner, "close"):
            runner.close()

    def _session_engine(self):
        """``options.engine``, resolved once per session when stateful.

        Stateful engine names (``"process"``, ``"cluster"``, anything
        registered stateful) resolve to one session-owned instance —
        a *private* one, not :func:`get_engine`'s shared one, because the
        hot-swap restart on policy rebuilds must not tear down a pool
        other sessions or ad-hoc replays are using — so worker pools,
        daemons, and their rehydration caches survive across replays and
        TE hot swaps.  Stateless engine names pass through by name.
        """
        engine = self._options.engine
        if self._engine_runner is None:
            self._engine_runner = make_session_engine(engine)
        if self._engine_runner is not None:
            return self._engine_runner
        return engine

    # -- internals ---------------------------------------------------------

    def _require_current(self, what: str) -> None:
        if self._current is None:
            raise RuntimeError(f"run submit() before {what}()")

    @contextmanager
    def _event_transaction(self):
        """Roll session inputs back if an event fails mid-flight.

        Event methods set ``_program``/``_topology``/``_demands``/
        ``_failed`` before compiling; if the solve then raises (bad
        program, infeasible model), those inputs are restored so the
        session still describes ``current`` — the caller can catch the
        error and keep issuing events.  The standing TE model is
        invalidated on failure rather than unpatched: the next TE event
        rebuilds it from the (restored) session state.
        """
        saved = (self._program, self._topology, self._demands, self._failed)
        try:
            yield
        except Exception:
            self._program, self._topology, self._demands, self._failed = saved
            self._invalidate_te()
            raise

    def _invalidate_te(self) -> None:
        self._te_model = None
        self._model_failed = set()

    def _analysis(self, program: Program, topology: Topology, timer: PhaseTimer):
        """Phases P1-P3 against an explicit topology (never ``self``'s)."""
        with timer.phase("P1"):
            dependencies = analyze_dependencies(program.full_policy())
        with timer.phase("P2"):
            order = TestOrder(program.registry, dependencies.state_rank)
            # One hash-consing session and apply-cache per compilation:
            # the intern table cannot leak across runs, and cache hit
            # counters describe exactly this program.
            factory = DiagramFactory()
            composer = Composer(order, factory=factory)
            xfdd = to_xfdd(program.full_policy(), composer)
        with timer.phase("P3"):
            ports = sorted(topology.ports)
            mapping = packet_state_mapping(xfdd, ports, ports)
        xfdd_stats = {
            f"xfdd_{name}": value for name, value in composer.cache_stats().items()
        }
        return dependencies, xfdd, mapping, xfdd_stats, factory

    def _compile_st(self, event: str) -> Snapshot:
        """Full recompilation: P1-P3, ST solve, finish."""
        timer = PhaseTimer()
        topology = self.effective_topology()
        deps, xfdd, mapping, xfdd_stats, factory = self._analysis(
            self._program, topology, timer
        )
        solution, routing, stats = self._backend.solve_st(
            topology,
            self._demands,
            mapping,
            deps,
            self._options.stateful_switches,
            timer,
            time_limit=self._options.solver_time_limit,
            mip_rel_gap=self._options.mip_rel_gap,
        )
        # The placement may have moved: the standing TE model (fixed to
        # the old placement) is meaningless now.
        self._invalidate_te()
        return self._finish(
            topology, self._program, deps, xfdd, mapping, solution, routing,
            timer, event, {**stats, **xfdd_stats}, factory,
        )

    def _reoptimize(self, event: str, demands_changed: bool = False) -> Snapshot:
        """TE re-solve against the standing model (built on first need)."""
        previous = self._current
        timer = PhaseTimer()
        with timer.phase("P5"):
            model = self._te_model
            if model is None:
                # Fresh standing model: built on the *base* topology with
                # current demands; failures are applied as patches below,
                # keeping model state and self._failed in one scheme.
                model = self._backend.build_te_model(
                    self._topology,
                    self._demands,
                    previous.mapping,
                    previous.dependencies,
                    dict(previous.placement),
                    self._options.stateful_switches,
                )
                self._te_model = model
                self._model_failed = set()
            elif demands_changed:
                model.set_demands(self._demands)
            wanted = set(self._failed)
            for a, b in sorted(self._model_failed - wanted):
                model.restore_link(a, b)
            for a, b in sorted(wanted - self._model_failed):
                model.fail_link(a, b)
            self._model_failed = wanted
            solution = self._backend.solve_te(
                model, time_limit=self._options.solver_time_limit
            )
        return self._finish(
            self.effective_topology(),
            previous.program,
            previous.dependencies,
            previous.xfdd,
            previous.mapping,
            solution,
            None,
            timer,
            event,
            {},
            previous.diagram_factory,
        )

    def _finish(
        self, topology, program, dependencies, xfdd, mapping, solution,
        routing, timer, event, stats, diagram_factory,
    ) -> Snapshot:
        """P6 + snapshot construction + live-network hot swap.

        ``topology`` is the effective topology this solve ran against,
        threaded explicitly — the session's base topology is never
        temporarily mutated to smuggle it in.
        """
        with timer.phase("P6"):
            if routing is None:
                routing = extract_paths(solution, topology, mapping, dependencies)
            if self._options.validate:
                validate_solution(routing, topology, mapping, dependencies)
            rules = build_rule_tables(routing)
        # Every snapshot carries the static effect report (update-kind
        # classification + race findings) — the merge-safety oracle for
        # replication/sharding consumers; the AST walk is microseconds,
        # so re-deriving it on reoptimize paths (which pass stats={}) is
        # cheaper than threading it through every caller.
        stats = {**stats, "effects": analyze_effects(program.policy)}
        self._generation += 1
        snapshot = Snapshot(
            generation=self._generation,
            event=event,
            scenario=EVENT_SCENARIOS[event],
            program=program,
            topology=topology,
            demands=self._demands,
            xfdd=xfdd,
            dependencies=dependencies,
            mapping=mapping,
            placement=solution.placement,
            routing=routing,
            objective=solution.objective,
            timer=timer,
            rules=rules,
            model_stats=stats,
            diagram_factory=diagram_factory,
        )
        self._current = snapshot
        self._history.append(snapshot)
        if self._network is not None:
            self._network = self._swap_network(self._network, snapshot)
        return snapshot

    def _swap_network(self, live: Network, snapshot: Snapshot) -> Network:
        """The next live data plane after ``snapshot``.

        * cold start — genuinely cold: fresh stores, nothing carried;
        * TE events (same xFDD, same placement) — ``rewire``: the
          compiled switch programs and their state stores are shared,
          only routing-derived structure is rebuilt.  A process-engine
          worker pool *survives* this path: the program token is
          unchanged, so worker-side rehydration caches stay warm;
        * policy changes — full rebuild, then state-store contents
          adopted into the new placement.  The old compiled programs are
          gone, so a process-engine pool is restarted (fresh workers,
          fresh caches).
        """
        if (
            snapshot.event != "cold_start"
            and snapshot.xfdd is live.index.root
            and dict(snapshot.placement) == live.placement
            # The compiled switch set is only reusable if the new graph
            # has the same switches and the same port attachments (link
            # failures qualify; a replacement topology may not).
            and set(snapshot.topology.switches()) == set(live.topology.switches())
            and snapshot.topology.ports == live.topology.ports
        ):
            return live.rewire(
                snapshot.topology, snapshot.routing, dict(snapshot.demands),
                rules=snapshot.rules,
            )
        fresh = snapshot.build_network()
        fresh.default_engine = live.default_engine
        fresh.replicate_state = getattr(live, "replicate_state", True)
        if snapshot.event != "cold_start":
            fresh.adopt_state(live)
        if (
            fresh.default_engine is self._engine_runner
            and self._engine_runner is not None
        ):
            # Restart only the pool this session owns: a shared or
            # user-supplied engine instance may be serving other
            # sessions, whose runs must not be cancelled under them
            # (their worker caches key on exec tokens, so correctness
            # never depends on the restart — it is memory hygiene).
            self._engine_runner.restart()
        return fresh

    def __repr__(self):
        name = self._program.name if self._program is not None else None
        return (
            f"SnapController({name!r} on {self._topology.name!r}, "
            f"generation={self._generation}, solver={self._backend.name!r})"
        )
