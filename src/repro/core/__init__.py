"""The compiler core: programs, pipeline phases, and scenarios."""

from repro.core.pipeline import (
    SCENARIO_PHASES,
    CompilationResult,
    Compiler,
)
from repro.core.program import Program
from repro.core.report import compilation_report

__all__ = [
    "SCENARIO_PHASES",
    "CompilationResult",
    "Compiler",
    "Program",
    "compilation_report",
]
