"""The compiler core: programs, the controller session, and snapshots."""

from repro.core.controller import SnapController
from repro.core.options import CompilerOptions
from repro.core.pipeline import Compiler
from repro.core.program import Program
from repro.core.report import compilation_report
from repro.core.result import (
    EVENT_SCENARIOS,
    SCENARIO_PHASES,
    CompilationResult,
    Snapshot,
)

__all__ = [
    "EVENT_SCENARIOS",
    "SCENARIO_PHASES",
    "CompilationResult",
    "Compiler",
    "CompilerOptions",
    "Program",
    "Snapshot",
    "SnapController",
    "compilation_report",
]
