"""Per-subpolicy compilation artifacts (incremental provenance).

An ST compilation decomposes the program's policy into *units* — the
segments of its top-level sequential spine, with parallel compositions
flattened into their arms — and records one :class:`SubPolicyArtifact`
per unit on the snapshot: the unit's structural fingerprint, its own
sub-xFDD, its dependency slice, its static effect report, and whether
the incremental session spliced it from an earlier generation or
recompiled it this generation.

The decomposition is provenance only: compilation still translates the
whole policy (memoizing every composite subtree), so there is no
left-distributivity rewriting here — ``p ; (q + r)`` is never rewritten
to ``(p;q) + (p;r)``, which would be unsound with state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lang import ast


@dataclass(frozen=True)
class SubPolicyArtifact:
    """One unit's contribution to a compilation (see module docstring)."""

    #: Structural fingerprint (hex) — the cross-generation cache key.
    fingerprint: str
    #: Position label, e.g. ``"seq0.arm2"`` (stable across generations
    #: for unchanged spines).
    label: str
    policy: Any
    #: The unit's own xFDD (interned in the snapshot's factory).
    xfdd: Any
    #: st-dep edges contributed by this unit alone.
    dep_edges: frozenset
    #: State variables the unit reads or writes.
    state_vars: frozenset
    #: Static effect report for the unit (update-kind classification).
    effects: Any
    #: True when the incremental session reused a prior generation's
    #: diagram for this unit; False when it was (re)compiled.
    reused: bool


def split_units(policy: ast.Policy) -> list:
    """``[(label, subpolicy)]`` — the top-level decomposition of ``policy``.

    Peels the sequential spine left-to-right, then flattens each
    segment's parallel composition into its arms, preserving order.
    Labels are positional (``seq<i>`` / ``seq<i>.arm<j>``) so a
    single-arm edit keeps every other unit's label stable.
    """
    segments: list = []

    def peel_seq(p):
        if isinstance(p, ast.Seq):
            peel_seq(p.left)
            peel_seq(p.right)
        else:
            segments.append(p)

    peel_seq(policy)
    units: list = []
    for i, segment in enumerate(segments):
        arms: list = []

        def peel_par(p):
            if isinstance(p, ast.Parallel):
                peel_par(p.left)
                peel_par(p.right)
            else:
                arms.append(p)

        peel_par(segment)
        if len(arms) == 1:
            units.append((f"seq{i}", segment))
        else:
            units.extend(
                (f"seq{i}.arm{j}", arm) for j, arm in enumerate(arms)
            )
    return units
